//! # Morpheus
//!
//! A Rust reproduction of **"Context Adaptation of the Communication Stack"**
//! (Mocito, Rosa, Almeida, Miranda, Rodrigues, Lopes — DI/FCUL TR 05-5,
//! ICDCS 2005 workshops): a middleware framework for building communication
//! protocol stacks that adapt, at run time, to the *distributed* execution
//! context.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`appia`] — the modular protocol composition and execution kernel;
//! * [`groupcomm`] — the group communication suite (best-effort multicast,
//!   Mecho, gossip, FIFO/reliable/FEC, failure detection, view synchrony,
//!   causal and total order);
//! * [`cocaditem`] — context capture and dissemination;
//! * [`core`] — the control and reconfiguration subsystem, adaptation
//!   policies and the per-node façade ([`core::MorpheusNode`]);
//! * [`netsim`] — the deterministic network simulator substrate;
//! * [`testbed`] — scenario runner binding Morpheus nodes to the simulator;
//! * [`chat`] — the chat application and the paper's evaluation workload.
//!
//! ## Quick start
//!
//! ```
//! use morpheus::prelude::*;
//!
//! // The paper's Figure 3 scenario at a reduced message count: a hybrid
//! // cell with 1 fixed PC + 3 PDAs, the first PDA chatting at 10 msg/s.
//! let scenario = Scenario::figure3(4, true, 50);
//! let report = Runner::new().run(&scenario);
//!
//! let mobile = report.node(NodeId(1)).unwrap();
//! assert!(mobile.final_stack.starts_with("hybrid-mecho"));
//! println!("{}", report.to_table());
//! ```

#![forbid(unsafe_code)]

pub use morpheus_appia as appia;
pub use morpheus_chat as chat;
pub use morpheus_cocaditem as cocaditem;
pub use morpheus_core as core;
pub use morpheus_groupcomm as groupcomm;
pub use morpheus_netsim as netsim;
pub use morpheus_testbed as testbed;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use morpheus_appia::config::{ChannelConfig, LayerSpec, StackConfig};
    pub use morpheus_appia::platform::{
        AppDelivery, DeliveryKind, DeviceClass, NodeId, NodeProfile, Platform, TestPlatform,
    };
    pub use morpheus_appia::{Event, Kernel, Message};
    pub use morpheus_chat::{ChatApp, ChatHistoryBinding, ChatMessage, ChatWorkload, RoomHistory};
    pub use morpheus_cocaditem::{ContextKey, ContextSnapshot, ContextStore};
    pub use morpheus_core::{
        AdaptationPolicy, DefaultPolicy, GlobalContext, MorpheusNode, NodeOptions, StackCatalog,
        StackKind,
    };
    pub use morpheus_groupcomm::suite::StackBuilder;
    pub use morpheus_groupcomm::{register_suite, StateSection, View};
    pub use morpheus_testbed::{
        AppBinding, NodeReport, RejoinReport, RoundReport, RunReport, Runner, Scenario,
        TopologyChoice, Workload,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_usable_api_surface() {
        let members: Vec<NodeId> = (0..3).map(NodeId).collect();
        let catalog = StackCatalog::new("data", members);
        let config = catalog.config_for(&StackKind::BestEffort);
        assert!(config.has_layer("beb"));
    }
}
