//! A small, dependency-free micro-benchmark harness exposing the subset of
//! the `criterion` API this workspace's benches use.
//!
//! The workspace builds in fully offline environments, so the real criterion
//! crate is unavailable. This shim keeps the bench sources unchanged: it
//! warms up each benchmark, runs timed samples, and reports the median,
//! minimum and maximum per-iteration time on stderr. Statistical analysis,
//! plotting and HTML reports are intentionally out of scope.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` on top of the standard hint.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark inside a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// One timed sample: iterations executed and the wall time they took.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Number of routine iterations in the sample.
    pub iters: u64,
    /// Total wall time of the sample.
    pub elapsed: Duration,
}

/// The timing engine handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    samples: Vec<Sample>,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly: a warm-up phase to size the per-sample
    /// iteration count, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates how many iterations fit in one sample.
        let warmup_started = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_started.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = self.config.warm_up_time.as_secs_f64() / warmup_iters.max(1) as f64;
        let samples = self.config.sample_size.max(1) as u64;
        let time_per_sample = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((time_per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..samples {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(Sample {
                iters: iters_per_sample,
                elapsed: started.elapsed(),
            });
        }
    }
}

/// Benchmark configuration (subset of criterion's builder).
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// Estimate reported for one benchmark after its samples are collected.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time in nanoseconds.
    pub max_ns: f64,
}

fn estimate(samples: &[Sample]) -> Estimate {
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|sample| sample.elapsed.as_nanos() as f64 / sample.iters.max(1) as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = if per_iter.is_empty() {
        0.0
    } else {
        per_iter[per_iter.len() / 2]
    };
    Estimate {
        median_ns: median,
        min_ns: per_iter.first().copied().unwrap_or(0.0),
        max_ns: per_iter.last().copied().unwrap_or(0.0),
    }
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark manager: owns configuration and runs groups.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.config.sample_size = samples;
        self
    }

    /// Sets the total measurement time budget per benchmark.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.config.warm_up_time = time;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&self.config, &id.to_string(), &mut routine);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(config: &Config, label: &str, routine: &mut F) {
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    routine(&mut bencher);
    let est = estimate(&bencher.samples);
    eprintln!(
        "bench {label:<48} median {:>12}  (min {}, max {})",
        format_time(est.median_ns),
        format_time(est.min_ns),
        format_time(est.max_ns),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &self.criterion.config,
            &label,
            &mut |bencher: &mut Bencher<'_>| routine(bencher, input),
        );
        self
    }

    /// Benchmarks a routine with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &label, &mut routine);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let config = Config {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(10),
        };
        let mut bencher = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        let mut counter = 0u64;
        bencher.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(bencher.samples.len(), 3);
        assert!(bencher.samples.iter().all(|sample| sample.iters >= 1));
        let est = estimate(&bencher.samples);
        assert!(est.median_ns >= 0.0);
        assert!(est.min_ns <= est.max_ns);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("stack-depth", 12).to_string(),
            "stack-depth/12"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
