//! A vendored, dependency-free subset of the `bytes` crate.
//!
//! The workspace builds in fully offline environments, so instead of the
//! crates.io `bytes` crate this shim provides the same API surface the
//! kernel relies on, with the same semantics that matter for the hot path:
//!
//! * [`Bytes`] is a cheaply cloneable, reference-counted view into an
//!   immutable buffer (cloning bumps a refcount, never copies).
//! * [`BytesMut`] is an append-only writer over an exclusively owned region
//!   of a refcounted allocation. [`BytesMut::split`] freezes the written
//!   prefix into a `Bytes` without copying, and [`BytesMut::reserve`]
//!   *reclaims* the allocation once every frozen view has been dropped —
//!   the mechanism the kernel's packet-buffer pool uses to serialise an
//!   unbounded packet stream with zero steady-state allocations.
//!
//! The kernel is single-threaded, so the shim uses `Rc` rather than atomic
//! refcounts; none of the types are `Send`/`Sync`, which the workspace
//! never requires.

use std::borrow::Borrow;
use std::cell::Cell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::rc::Rc;

/// The backing allocation shared between a writer and its frozen views.
///
/// Raw parts of a `Vec<u8>`: keeping the allocation behind a raw pointer
/// (instead of `Rc<Vec<u8>>`) lets a `BytesMut` append into the unwritten
/// tail while `Bytes` views read the frozen prefix — the two regions are
/// always disjoint, so the aliasing is sound.
struct Shared {
    ptr: *mut u8,
    cap: usize,
    /// High-water mark of initialised bytes, so reclaimed buffers never
    /// expose uninitialised memory even through stale views.
    init: Cell<usize>,
}

impl Shared {
    fn with_capacity(cap: usize) -> Rc<Self> {
        let mut vec = Vec::<u8>::with_capacity(cap);
        let ptr = vec.as_mut_ptr();
        let cap = vec.capacity();
        std::mem::forget(vec);
        Rc::new(Shared {
            ptr,
            cap,
            init: Cell::new(0),
        })
    }

    /// # Safety
    /// The caller must guarantee `[start, start + len)` lies within the
    /// initialised prefix and that no mutable access to that region exists.
    unsafe fn slice(&self, start: usize, len: usize) -> &[u8] {
        debug_assert!(start + len <= self.init.get());
        std::slice::from_raw_parts(self.ptr.add(start), len)
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // Reconstruct the Vec so the allocation is freed with the layout it
        // was created with. Length 0: contents need no drop for u8.
        unsafe {
            drop(Vec::from_raw_parts(self.ptr, 0, self.cap));
        }
    }
}

enum Repr {
    Static(&'static [u8]),
    Shared {
        shared: Rc<Shared>,
        off: usize,
        len: usize,
    },
}

/// A cheaply cloneable, immutable, contiguous byte buffer.
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying or allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies a slice into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Static(slice) => slice.len(),
            Repr::Shared { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(slice) => slice,
            Repr::Shared { shared, off, len } => unsafe { shared.slice(*off, *len) },
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a view of a sub-range, sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        match &self.repr {
            Repr::Static(slice) => Bytes::from_static(&slice[start..end]),
            Repr::Shared { shared, off, .. } => Bytes {
                repr: Repr::Shared {
                    shared: shared.clone(),
                    off: off + start,
                    len: end - start,
                },
            },
        }
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Static(slice) => Bytes {
                repr: Repr::Static(slice),
            },
            Repr::Shared { shared, off, len } => Bytes {
                repr: Repr::Shared {
                    shared: shared.clone(),
                    off: *off,
                    len: *len,
                },
            },
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(mut vec: Vec<u8>) -> Self {
        let len = vec.len();
        let ptr = vec.as_mut_ptr();
        let cap = vec.capacity();
        std::mem::forget(vec);
        let shared = Rc::new(Shared {
            ptr,
            cap,
            init: Cell::new(len),
        });
        Bytes {
            repr: Repr::Shared {
                shared,
                off: 0,
                len,
            },
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Self {
        Bytes::from_static(slice)
    }
}

impl From<&'static str> for Bytes {
    fn from(text: &'static str) -> Self {
        Bytes::from_static(text.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(text: String) -> Self {
        Bytes::from(text.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(boxed: Box<[u8]>) -> Self {
        Bytes::from(boxed.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A unique, growable byte buffer that can cheaply freeze written data into
/// [`Bytes`] views and later reclaim the allocation once those views drop.
pub struct BytesMut {
    shared: Option<Rc<Shared>>,
    /// Start of this writer's exclusive region inside the allocation.
    off: usize,
    /// Bytes written (and not yet split off) in the exclusive region.
    len: usize,
}

const MIN_ALLOC: usize = 64;

/// Allocation size used when the previous allocation is abandoned while
/// still pinned by live frames. Large enough that packet-rate workloads
/// allocate rarely, small enough that a consumer retaining W bytes of
/// frames keeps at most ~W + PINNED_CHUNK bytes of generations alive.
const PINNED_CHUNK: usize = 64 * 1024;

impl BytesMut {
    /// Creates an empty buffer without allocating.
    pub const fn new() -> Self {
        BytesMut {
            shared: None,
            off: 0,
            len: 0,
        }
    }

    /// Creates a buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            return BytesMut::new();
        }
        BytesMut {
            shared: Some(Shared::with_capacity(capacity)),
            off: 0,
            len: 0,
        }
    }

    /// Number of bytes written and not yet split off.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bytes are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writable capacity of this writer's region (including written bytes).
    pub fn capacity(&self) -> usize {
        self.shared
            .as_ref()
            .map_or(0, |shared| shared.cap - self.off)
    }

    /// Discards written bytes without releasing the region.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.shared {
            None => &[],
            Some(shared) => unsafe { shared.slice(self.off, self.len) },
        }
    }

    /// Ensures space for `additional` more bytes.
    ///
    /// When the current allocation is exhausted this first tries to
    /// *reclaim* it: if every frozen view has been dropped (this writer
    /// holds the only reference) the region is rewound to the start of the
    /// allocation and reused without touching the allocator. Only when the
    /// allocation is still shared, or genuinely too small, is a new one
    /// made. This is what makes a pooled writer allocation-free in steady
    /// state.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        let mut abandoning_pinned = false;
        if let Some(shared) = &self.shared {
            let remaining = shared.cap - self.off;
            if needed <= remaining {
                return;
            }
            if Rc::strong_count(shared) == 1 {
                // No frames alive: reclaim the whole allocation in place.
                if needed <= shared.cap {
                    unsafe {
                        std::ptr::copy(shared.ptr.add(self.off), shared.ptr, self.len);
                    }
                    self.off = 0;
                    return;
                }
                // Unique but genuinely too small: amortised doubling below.
            } else {
                // Still pinned by live frames: the allocation will be freed
                // when those frames drop, so the replacement must NOT
                // inherit (let alone double) its capacity — consumers that
                // retain a window of recent frames would pin every
                // generation at exhaustion and capacity would escalate
                // without bound. A fixed chunk size keeps live memory
                // proportional to the bytes actually retained.
                abandoning_pinned = true;
            }
        }
        // Grow into a fresh allocation, carrying pending bytes over.
        let new_cap = if abandoning_pinned {
            needed.max(PINNED_CHUNK)
        } else {
            let old_cap = self.shared.as_ref().map_or(0, |shared| shared.cap);
            needed.max(old_cap * 2).max(MIN_ALLOC)
        };
        let fresh = Shared::with_capacity(new_cap);
        if self.len > 0 {
            let old = self.shared.as_ref().expect("len > 0 implies an allocation");
            unsafe {
                std::ptr::copy_nonoverlapping(old.ptr.add(self.off), fresh.ptr, self.len);
            }
        }
        fresh.init.set(self.len);
        self.shared = Some(fresh);
        self.off = 0;
    }

    /// Appends a slice, growing if needed.
    pub fn put_slice(&mut self, data: &[u8]) {
        self.reserve(data.len());
        let shared = self.shared.as_ref().expect("reserve allocates");
        unsafe {
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                shared.ptr.add(self.off + self.len),
                data.len(),
            );
        }
        self.len += data.len();
        let end = self.off + self.len;
        if end > shared.init.get() {
            shared.init.set(end);
        }
    }

    /// Splits off everything written so far as a new `BytesMut`, leaving
    /// this writer positioned over the unwritten tail of the allocation.
    pub fn split(&mut self) -> BytesMut {
        let front = BytesMut {
            shared: self.shared.clone(),
            off: self.off,
            len: self.len,
        };
        self.off += self.len;
        self.len = 0;
        front
    }

    /// Freezes the written bytes into an immutable, shareable `Bytes`.
    pub fn freeze(self) -> Bytes {
        match self.shared {
            None => Bytes::new(),
            Some(shared) => Bytes {
                repr: Repr::Shared {
                    shared,
                    off: self.off,
                    len: self.len,
                },
            },
        }
    }

    /// Appends the contents of a slice (alias of [`BytesMut::put_slice`]).
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.put_slice(data);
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

/// Big-endian append operations, mirroring the `bytes::BufMut` trait for the
/// subset of methods the workspace uses.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, value: i64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        BytesMut::put_slice(self, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_clone_share() {
        let bytes = Bytes::from(vec![1, 2, 3, 4]);
        let clone = bytes.clone();
        assert_eq!(bytes, clone);
        assert_eq!(bytes.as_ref(), &[1, 2, 3, 4]);
        assert_eq!(bytes.slice(1..3).as_ref(), &[2, 3]);
        assert_eq!(bytes.len(), 4);
        assert!(!bytes.is_empty());
    }

    #[test]
    fn static_bytes_do_not_allocate() {
        let bytes = Bytes::from_static(b"hello");
        assert_eq!(bytes.as_ref(), b"hello");
        assert_eq!(bytes.slice(1..).as_ref(), b"ello");
    }

    #[test]
    fn writer_split_freeze_preserves_content() {
        let mut writer = BytesMut::with_capacity(16);
        writer.put_u32(0xAABBCCDD);
        writer.put_slice(b"xy");
        let frozen = writer.split().freeze();
        assert_eq!(frozen.as_ref(), &[0xAA, 0xBB, 0xCC, 0xDD, b'x', b'y']);
        // Writer continues in the same allocation.
        writer.put_u8(9);
        let second = writer.split().freeze();
        assert_eq!(second.as_ref(), &[9]);
        assert_eq!(frozen.as_ref()[..4], [0xAA, 0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn reserve_reclaims_once_views_drop() {
        let mut writer = BytesMut::with_capacity(64);
        let cap = writer.capacity();
        let first_ptr = writer.shared.as_ref().unwrap().ptr;

        // Fill the allocation completely and drop the frozen view.
        writer.put_slice(&vec![1; cap]);
        drop(writer.split().freeze());
        // No views left: the exhausted allocation is reclaimed in place.
        writer.reserve(cap);
        assert_eq!(writer.shared.as_ref().unwrap().ptr, first_ptr);
        assert_eq!(writer.off, 0);

        // Fill it again but keep the view alive: reserve must reallocate.
        writer.put_slice(&vec![2; cap]);
        let frozen = writer.split().freeze();
        writer.reserve(cap);
        assert_ne!(writer.shared.as_ref().unwrap().ptr, first_ptr);
        assert_eq!(frozen.as_ref(), vec![2; cap].as_slice());
    }

    #[test]
    fn retained_frame_windows_do_not_escalate_capacity() {
        // A consumer keeping a rolling window of recent frames pins the
        // newest allocation at every exhaustion, so reclaim can never fire.
        // The replacement allocation must stay at the fixed chunk size —
        // capacity escalation here was a process-lifetime memory leak.
        let mut writer = BytesMut::with_capacity(256);
        let mut window: std::collections::VecDeque<Bytes> = std::collections::VecDeque::new();
        for _ in 0..10_000 {
            writer.reserve(64);
            writer.put_slice(&[7; 64]);
            window.push_back(writer.split().freeze());
            if window.len() > 16 {
                window.pop_front();
            }
        }
        let cap = writer.shared.as_ref().unwrap().cap;
        assert!(
            cap <= PINNED_CHUNK,
            "scratch capacity escalated to {cap} bytes"
        );
    }

    #[test]
    fn growth_carries_pending_bytes() {
        let mut writer = BytesMut::new();
        writer.put_slice(b"abc");
        writer.reserve(1024);
        writer.put_slice(b"def");
        assert_eq!(writer.as_slice(), b"abcdef");
        assert_eq!(writer.split().freeze().as_ref(), b"abcdef");
    }

    #[test]
    fn equality_against_plain_slices() {
        let bytes = Bytes::from(b"ping".to_vec());
        assert_eq!(bytes, b"ping"[..]);
        assert_eq!(bytes.to_vec(), b"ping".to_vec());
    }
}
