//! Offline facade for the parts of `serde` this workspace names.
//!
//! Data-model types across the workspace carry `#[derive(Serialize,
//! Deserialize)]` so they stay serde-shaped for downstream users, but no
//! code path serialises through serde at run time. In this offline build the
//! derives come from the vendored no-op `serde_derive` and these marker
//! traits exist purely so `use serde::{Serialize, Deserialize}` resolves.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::ser::Serialize`.
pub trait SerializeMarker {}

/// Marker stand-in for `serde::de::Deserialize`.
pub trait DeserializeMarker {}
