//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds offline, and nothing in it actually serialises
//! through serde at run time — the derives on data-model types exist so the
//! types remain serde-compatible for downstream users. These macros accept
//! the derive (including `#[serde(...)]` attributes) and expand to nothing,
//! which keeps every annotated type compiling without the real serde
//! dependency.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
