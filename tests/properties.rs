//! Property-based tests over the framework's core data structures: the wire
//! format, message header stacks, group views, the declarative configuration
//! language and the chat message format.

use morpheus::appia::wire::Wire;
use morpheus::appia::config::{ChannelConfig, LayerSpec};
use morpheus::groupcomm::headers::{CausalHeader, GossipHeader, McastHeader, McastMode, NackHeader, SeqHeader};
use morpheus::prelude::*;
use proptest::prelude::*;

fn node_ids() -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::vec(0u32..64, 0..16).prop_map(|ids| ids.into_iter().map(NodeId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn message_header_stack_is_lifo_for_any_contents(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        headers in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        let mut message = Message::with_payload(payload.clone());
        for header in &headers {
            message.push_header(header.clone());
        }
        prop_assert_eq!(message.header_count(), headers.len());

        // Wire roundtrip preserves everything.
        let decoded = Message::from_bytes(&message.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &message);

        // Popping returns the headers in reverse push order.
        let mut decoded = decoded;
        for header in headers.iter().rev() {
            let popped = decoded.pop_header().unwrap();
            prop_assert_eq!(popped.as_ref(), header.as_slice());
        }
        prop_assert!(decoded.pop_header().is_none());
        prop_assert_eq!(decoded.payload().as_ref(), payload.as_slice());
    }

    #[test]
    fn views_are_always_sorted_deduplicated_and_coordinated_by_the_minimum(
        id in 0u64..1000,
        members in node_ids(),
    ) {
        let view = View::new(id, members.clone());
        let mut sorted = members.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(view.members.clone(), sorted.clone());
        prop_assert_eq!(view.coordinator(), sorted.first().copied());
        for member in &sorted {
            prop_assert!(view.contains(*member));
            prop_assert_eq!(view.rank_of(*member).map(|rank| view.members[rank]), Some(*member));
        }
        // Wire roundtrip.
        let decoded = View::from_bytes(&view.to_bytes()).unwrap();
        prop_assert_eq!(decoded, view.clone());
        // Removing a member always yields a view that no longer contains it.
        if let Some(first) = sorted.first() {
            let without = view.without(*first);
            prop_assert!(!without.contains(*first));
            prop_assert_eq!(without.id, view.id + 1);
        }
    }

    #[test]
    fn protocol_headers_roundtrip_for_any_field_values(
        seq in any::<u64>(),
        origin in 0u32..1024,
        missing in proptest::collection::vec(any::<u64>(), 0..32),
        clock in proptest::collection::vec(any::<u64>(), 0..16),
        rank in any::<u32>(),
        ttl in any::<u32>(),
        relay in any::<bool>(),
    ) {
        let seq_header = SeqHeader { seq };
        prop_assert_eq!(SeqHeader::from_bytes(&seq_header.to_bytes()).unwrap(), seq_header);

        let mcast = McastHeader {
            mode: if relay { McastMode::RelayRequest } else { McastMode::Direct },
            origin: NodeId(origin),
        };
        prop_assert_eq!(McastHeader::from_bytes(&mcast.to_bytes()).unwrap(), mcast);

        let nack = NackHeader { origin: NodeId(origin), missing: missing.clone() };
        prop_assert_eq!(NackHeader::from_bytes(&nack.to_bytes()).unwrap(), nack);

        let causal = CausalHeader { sender_rank: rank, clock: clock.clone() };
        prop_assert_eq!(CausalHeader::from_bytes(&causal.to_bytes()).unwrap(), causal);

        let gossip = GossipHeader { origin: NodeId(origin), seq, ttl };
        prop_assert_eq!(GossipHeader::from_bytes(&gossip.to_bytes()).unwrap(), gossip);
    }

    #[test]
    fn channel_descriptions_roundtrip_for_any_parameter_strings(
        channel_name in "[a-z][a-z0-9-]{0,12}",
        layer_count in 1usize..6,
        key in "[a-z][a-z0-9_]{0,8}",
        value in "[ -~]{0,24}",   // printable ASCII, exercises escaping
        share in proptest::option::of("[a-z]{1,8}"),
    ) {
        let mut config = ChannelConfig::new(channel_name);
        for index in 0..layer_count {
            let mut spec = LayerSpec::new(format!("layer{index}")).with_param(&key, &value);
            if index == 0 {
                if let Some(share) = &share {
                    spec = spec.shared(share.clone());
                }
            }
            config = config.with_layer(spec);
        }
        let text = config.to_xml();
        let parsed = ChannelConfig::from_xml(&text).unwrap();
        prop_assert_eq!(parsed, config);
    }

    #[test]
    fn chat_messages_roundtrip_for_any_text(
        room in "[a-z]{1,12}",
        sender in "[a-zA-Z0-9 ]{1,16}",
        seq in any::<u64>(),
        text in "\\PC{0,200}",
    ) {
        let message = ChatMessage::new(room, sender, seq, text);
        let decoded = ChatMessage::from_payload(&message.to_payload()).unwrap();
        prop_assert_eq!(decoded, message);
    }

    #[test]
    fn context_snapshots_roundtrip_and_preserve_classification(
        node in 0u32..128,
        battery in 0.0f64..=1.0,
        error_rate in 0.0f64..=1.0,
        mobile in any::<bool>(),
    ) {
        let mut profile = if mobile {
            NodeProfile::mobile_pda(NodeId(node))
        } else {
            NodeProfile::fixed_pc(NodeId(node))
        };
        profile.battery_level = battery;
        profile.error_rate = error_rate;
        let snapshot = ContextSnapshot::from_profile(&profile, 123);
        let decoded = ContextSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        prop_assert_eq!(decoded.clone(), snapshot);
        prop_assert_eq!(decoded.is_mobile(), Some(mobile));
        prop_assert!((decoded.battery_level().unwrap() - battery).abs() < 1e-12);
    }
}

#[test]
fn fifo_delivery_order_matches_send_order_under_arbitrary_arrival_order() {
    use morpheus::appia::events::DataEvent;
    use morpheus::appia::layer::LayerParams;
    use morpheus::appia::testing::Harness;
    use morpheus::appia::event::Dest;
    use morpheus::appia::platform::TestPlatform;
    use morpheus::groupcomm::fifo::FifoLayer;

    // A deterministic shuffle of sequence numbers 1..=20 delivered to the
    // FIFO layer must come out in ascending order.
    let mut order: Vec<u64> = (1..=20).collect();
    // Simple deterministic permutation.
    for i in 0..order.len() {
        let j = (i * 7 + 3) % order.len();
        order.swap(i, j);
    }

    let mut platform = TestPlatform::new(NodeId(9));
    let mut params = LayerParams::new();
    params.insert("window".into(), "32".into());
    let mut harness = Harness::new(FifoLayer, &params, &mut platform);

    let mut delivered = Vec::new();
    for seq in order {
        let mut message = Message::with_payload(seq.to_be_bytes().to_vec());
        message.push(&SeqHeader { seq });
        let events = harness.run_up(
            morpheus::appia::event::Event::up(DataEvent::new(NodeId(1), Dest::Node(NodeId(9)), message)),
            &mut platform,
        );
        for event in events {
            let data = event.get::<DataEvent>().unwrap();
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(data.message.payload().as_ref());
            delivered.push(u64::from_be_bytes(bytes));
        }
    }
    let expected: Vec<u64> = (1..=20).collect();
    assert_eq!(delivered, expected);
}
