//! Property-based tests over the framework's core data structures: the wire
//! format, message header stacks, group views, the declarative configuration
//! language and the chat message format.
//!
//! The workspace builds offline, so instead of proptest these properties are
//! driven by a small deterministic case generator: every property is checked
//! against 128 pseudo-random inputs derived from a fixed seed, which keeps
//! failures exactly reproducible.

use morpheus::appia::config::{ChannelConfig, LayerSpec};
use morpheus::appia::wire::Wire;
use morpheus::groupcomm::headers::{
    CausalHeader, GossipHeader, McastHeader, McastMode, NackHeader, SeqHeader,
};
use morpheus::prelude::*;

const CASES: u64 = 128;

/// Deterministic input generator: string/collection helpers layered over
/// the simulator's seeded [`morpheus::netsim::SimRng`].
struct Gen {
    rng: morpheus::netsim::SimRng,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self {
            rng: morpheus::netsim::SimRng::new(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.random_u64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.rng.random_below(bound)
    }

    fn f64_unit(&mut self) -> f64 {
        self.rng.random_f64()
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn byte_vec(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len) as usize;
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    fn u64_vec(&mut self, max_len: u64) -> Vec<u64> {
        let len = self.below(max_len) as usize;
        (0..len).map(|_| self.next_u64()).collect()
    }

    /// A string of `1..=max_len` characters drawn from an alphabet.
    fn string_from(&mut self, alphabet: &[char], max_len: u64) -> String {
        let len = 1 + self.below(max_len) as usize;
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize])
            .collect()
    }

    fn lowercase(&mut self, max_len: u64) -> String {
        const ALPHA: &[char] = &[
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
        ];
        self.string_from(ALPHA, max_len)
    }

    /// Printable ASCII including XML-significant characters, to exercise
    /// escaping in the configuration language.
    fn printable_ascii(&mut self, max_len: u64) -> String {
        let len = self.below(max_len + 1) as usize;
        (0..len)
            .map(|_| char::from(b' ' + self.below(95) as u8))
            .collect()
    }

    /// Arbitrary non-control text, including multi-byte characters.
    fn text(&mut self, max_len: u64) -> String {
        const POOL: &[char] = &[
            'a', 'Z', '0', ' ', 'é', 'ß', '中', '🙂', '"', '<', '&', '\'', '>', 'λ', 'ø',
        ];
        let len = self.below(max_len + 1) as usize;
        (0..len)
            .map(|_| POOL[self.below(POOL.len() as u64) as usize])
            .collect()
    }

    fn node_ids(&mut self) -> Vec<NodeId> {
        let len = self.below(16) as usize;
        (0..len).map(|_| NodeId(self.below(64) as u32)).collect()
    }
}

#[test]
fn message_header_stack_is_lifo_for_any_contents() {
    let mut gen = Gen::new(0xA11CE);
    for _ in 0..CASES {
        let payload = gen.byte_vec(256);
        let headers: Vec<Vec<u8>> = (0..gen.below(8)).map(|_| gen.byte_vec(64)).collect();

        let mut message = Message::with_payload(payload.clone());
        for header in &headers {
            message.push_header(header.clone());
        }
        assert_eq!(message.header_count(), headers.len());

        // Wire roundtrip preserves everything.
        let decoded = Message::from_bytes(&message.to_bytes()).unwrap();
        assert_eq!(&decoded, &message);

        // Popping returns the headers in reverse push order.
        let mut decoded = decoded;
        for header in headers.iter().rev() {
            let popped = decoded.pop_header().unwrap();
            assert_eq!(popped.as_ref(), header.as_slice());
        }
        assert!(decoded.pop_header().is_none());
        assert_eq!(decoded.payload().as_ref(), payload.as_slice());
    }
}

#[test]
fn views_are_always_sorted_deduplicated_and_coordinated_by_the_minimum() {
    let mut gen = Gen::new(0xB0B);
    for _ in 0..CASES {
        let id = gen.below(1000);
        let members = gen.node_ids();

        let view = View::new(id, members.clone());
        let mut sorted = members.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(view.members, sorted);
        assert_eq!(view.coordinator(), sorted.first().copied());
        for member in &sorted {
            assert!(view.contains(*member));
            assert_eq!(
                view.rank_of(*member).map(|rank| view.members[rank]),
                Some(*member)
            );
        }
        // Wire roundtrip.
        let decoded = View::from_bytes(&view.to_bytes()).unwrap();
        assert_eq!(decoded, view);
        // Removing a member always yields a view that no longer contains it.
        if let Some(first) = sorted.first() {
            let without = view.without(*first);
            assert!(!without.contains(*first));
            assert_eq!(without.id, view.id + 1);
        }
    }
}

#[test]
fn protocol_headers_roundtrip_for_any_field_values() {
    let mut gen = Gen::new(0xCAFE);
    for _ in 0..CASES {
        let seq = gen.next_u64();
        let origin = gen.below(1024) as u32;
        let missing = gen.u64_vec(32);
        let clock = gen.u64_vec(16);
        let rank = gen.next_u64() as u32;
        let ttl = gen.next_u64() as u32;
        let relay = gen.bool();

        let seq_header = SeqHeader { seq };
        assert_eq!(
            SeqHeader::from_bytes(&seq_header.to_bytes()).unwrap(),
            seq_header
        );

        let mcast = McastHeader {
            mode: if relay {
                McastMode::RelayRequest
            } else {
                McastMode::Direct
            },
            origin: NodeId(origin),
        };
        assert_eq!(McastHeader::from_bytes(&mcast.to_bytes()).unwrap(), mcast);

        let nack = NackHeader {
            origin: NodeId(origin),
            missing: missing.clone(),
        };
        assert_eq!(NackHeader::from_bytes(&nack.to_bytes()).unwrap(), nack);

        let causal = CausalHeader {
            sender_rank: rank,
            clock: clock.clone(),
        };
        assert_eq!(
            CausalHeader::from_bytes(&causal.to_bytes()).unwrap(),
            causal
        );

        let gossip = GossipHeader {
            origin: NodeId(origin),
            inc: seq.wrapping_mul(31),
            seq,
            ttl,
        };
        assert_eq!(
            GossipHeader::from_bytes(&gossip.to_bytes()).unwrap(),
            gossip
        );
    }
}

#[test]
fn channel_descriptions_roundtrip_for_any_parameter_strings() {
    let mut gen = Gen::new(0xD00D);
    for _ in 0..CASES {
        let channel_name = gen.lowercase(12);
        let layer_count = 1 + gen.below(5) as usize;
        let key = gen.lowercase(8);
        let value = gen.printable_ascii(24); // exercises XML escaping
        let share = if gen.bool() {
            Some(gen.lowercase(8))
        } else {
            None
        };

        let mut config = ChannelConfig::new(channel_name);
        for index in 0..layer_count {
            let mut spec = LayerSpec::new(format!("layer{index}")).with_param(&key, &value);
            if index == 0 {
                if let Some(share) = &share {
                    spec = spec.shared(share.clone());
                }
            }
            config = config.with_layer(spec);
        }
        let text = config.to_xml();
        let parsed = ChannelConfig::from_xml(&text).unwrap();
        assert_eq!(parsed, config);
    }
}

#[test]
fn chat_messages_roundtrip_for_any_text() {
    let mut gen = Gen::new(0xFEED);
    for _ in 0..CASES {
        let room = gen.lowercase(12);
        let sender = gen.lowercase(16);
        let seq = gen.next_u64();
        let text = gen.text(200);

        let message = ChatMessage::new(room, sender, seq, text);
        let decoded = ChatMessage::from_payload(&message.to_payload()).unwrap();
        assert_eq!(decoded, message);
    }
}

#[test]
fn context_snapshots_roundtrip_and_preserve_classification() {
    let mut gen = Gen::new(0xBEEF);
    for _ in 0..CASES {
        let node = gen.below(128) as u32;
        let battery = gen.f64_unit();
        let error_rate = gen.f64_unit();
        let mobile = gen.bool();

        let mut profile = if mobile {
            NodeProfile::mobile_pda(NodeId(node))
        } else {
            NodeProfile::fixed_pc(NodeId(node))
        };
        profile.battery_level = battery;
        profile.error_rate = error_rate;
        let snapshot = ContextSnapshot::from_profile(&profile, 123);
        let decoded = ContextSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.is_mobile(), Some(mobile));
        assert!((decoded.battery_level().unwrap() - battery).abs() < 1e-12);
    }
}

#[test]
fn ballot_order_is_total_antisymmetric_and_favours_lower_ids() {
    use morpheus::groupcomm::Ballot;

    let mut gen = Gen::new(0xBA1107);
    for _ in 0..CASES {
        // Small bounds so epoch and holder collisions actually happen.
        let mut ballot = || Ballot::new(gen.below(4), NodeId(gen.below(4) as u32));
        let (a, b, c) = (ballot(), ballot(), ballot());

        // `beats` and `Ord` agree, and the order is total: for any pair
        // exactly one of beats/is-beaten/equal holds.
        for (x, y) in [(a, b), (b, c), (a, c)] {
            assert_eq!(x.beats(y), x > y);
            let relations = [x.beats(y), y.beats(x), x == y]
                .iter()
                .filter(|r| **r)
                .count();
            assert_eq!(relations, 1, "exactly one relation for {x:?} vs {y:?}");
        }
        // Antisymmetry is implied above; transitivity:
        if a.beats(b) && b.beats(c) {
            assert!(a.beats(c), "transitivity: {a:?} > {b:?} > {c:?}");
        }
        // Higher epoch always wins; on an epoch tie the *lower* node id is
        // the stronger proposer (the deterministic contest tie-break).
        if a.epoch != b.epoch {
            assert_eq!(a.beats(b), a.epoch > b.epoch);
        } else if a.holder != b.holder {
            assert_eq!(a.beats(b), a.holder.0 < b.holder.0);
        }
    }
}

#[test]
fn round_engine_epochs_never_regress_under_arbitrary_operation_sequences() {
    use morpheus::groupcomm::{Ballot, RoundEngine};

    let mut gen = Gen::new(0x0E9612E);
    for _ in 0..CASES {
        let mut engine: RoundEngine<NodeId> = RoundEngine::new();
        let mut now_ms = 0u64;
        for _ in 0..32 {
            let epoch_before = engine.epoch();
            let promised_before = engine.promised();
            now_ms += gen.below(1000);
            match gen.below(8) {
                0 => {
                    // A fresh proposer round always climbs above the promise.
                    let participants = gen.node_ids();
                    let ballot = engine.open(NodeId(gen.below(8) as u32), participants, now_ms);
                    assert!(ballot.epoch > epoch_before);
                }
                1 => {
                    engine.open_at(
                        Ballot::new(gen.below(6), NodeId(gen.below(8) as u32)),
                        gen.node_ids(),
                        now_ms,
                    );
                }
                2 => {
                    engine.adopt(Ballot::new(gen.below(6), NodeId(gen.below(8) as u32)));
                }
                3 => {
                    engine.try_promise(Ballot::new(gen.below(6), NodeId(gen.below(8) as u32)));
                }
                4 => engine.fast_forward(gen.below(6)),
                5 => {
                    let in_flight = engine.in_flight();
                    let aborted = engine.abort();
                    assert_eq!(aborted.is_some(), in_flight);
                }
                6 => {
                    engine.complete();
                }
                _ => {
                    engine.record_ack(gen.below(6), NodeId(gen.below(8) as u32));
                    engine.tick(now_ms, 500);
                }
            }
            // The two monotonicity invariants everything else builds on:
            // the epoch counter and the promised ballot never move backwards
            // (only `reset`, deliberately excluded here, may regress them).
            assert!(
                engine.epoch() >= epoch_before,
                "epoch regressed {} -> {}",
                epoch_before,
                engine.epoch()
            );
            assert!(
                !promised_before.beats(engine.promised()),
                "promise regressed {:?} -> {:?}",
                promised_before,
                engine.promised()
            );
        }
    }
}

#[test]
fn fifo_delivery_order_matches_send_order_under_arbitrary_arrival_order() {
    use morpheus::appia::event::Dest;
    use morpheus::appia::events::DataEvent;
    use morpheus::appia::layer::LayerParams;
    use morpheus::appia::platform::TestPlatform;
    use morpheus::appia::testing::Harness;
    use morpheus::groupcomm::fifo::FifoLayer;

    // A deterministic shuffle of sequence numbers 1..=20 delivered to the
    // FIFO layer must come out in ascending order.
    let mut order: Vec<u64> = (1..=20).collect();
    // Simple deterministic permutation.
    for i in 0..order.len() {
        let j = (i * 7 + 3) % order.len();
        order.swap(i, j);
    }

    let mut platform = TestPlatform::new(NodeId(9));
    let mut params = LayerParams::new();
    params.insert("window".into(), "32".into());
    let mut harness = Harness::new(FifoLayer, &params, &mut platform);

    let mut delivered = Vec::new();
    for seq in order {
        let mut message = Message::with_payload(seq.to_be_bytes().to_vec());
        message.push(&SeqHeader { seq });
        let events = harness.run_up(
            morpheus::appia::event::Event::up(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(9)),
                message,
            )),
            &mut platform,
        );
        for event in events {
            let data = event.get::<DataEvent>().unwrap();
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(data.message.payload().as_ref());
            delivered.push(u64::from_be_bytes(bytes));
        }
    }
    let expected: Vec<u64> = (1..=20).collect();
    assert_eq!(delivered, expected);
}
