//! Experiment E2 — the protocol stack configurations of the paper's Figure 2:
//! the homogeneous configuration (plain best-effort multicast on every node)
//! and the hybrid configuration (Mecho in wired mode on the fixed device,
//! wireless mode on the mobile devices), built from declarative descriptions
//! and instantiated on real kernels.

use morpheus::appia::platform::TestPlatform;
use morpheus::prelude::*;

fn members(count: u32) -> Vec<NodeId> {
    (0..count).map(NodeId).collect()
}

#[test]
fn homogeneous_configuration_matches_figure_2a() {
    let catalog = StackCatalog::new("data", members(3));
    let config = catalog.config_for(&StackKind::BestEffort);

    // Figure 2(a): application over the group communication suite over the
    // network interface, no Mecho.
    assert_eq!(config.layers.first().unwrap().layer, "network");
    assert_eq!(config.layers.last().unwrap().layer, "app");
    assert!(config.has_layer("beb"));
    assert!(config.has_layer("vsync"));
    assert!(!config.has_layer("mecho"));
}

#[test]
fn hybrid_configuration_matches_figure_2b() {
    let catalog = StackCatalog::new("data", members(3));
    let config = catalog.config_for(&StackKind::HybridMecho { relay: NodeId(0) });

    // Figure 2(b): the stack is extended with Mecho below the group
    // communication layers; the same description serves fixed (wired mode)
    // and mobile (wireless mode) devices because the mode is resolved from
    // the local device class at run time.
    assert!(config.has_layer("mecho"));
    let mecho = config
        .layers
        .iter()
        .find(|layer| layer.layer == "mecho")
        .unwrap();
    assert_eq!(mecho.params.get("mode").map(String::as_str), Some("auto"));
    assert_eq!(mecho.params.get("relay").map(String::as_str), Some("0"));
    let positions: Vec<&str> = config.layer_names();
    let mecho_pos = positions.iter().position(|name| *name == "mecho").unwrap();
    let vsync_pos = positions.iter().position(|name| *name == "vsync").unwrap();
    assert!(
        mecho_pos < vsync_pos,
        "Mecho sits below the group communication layers"
    );
}

#[test]
fn both_configurations_roundtrip_through_the_description_language() {
    let catalog = StackCatalog::new("data", members(4));
    for kind in [
        StackKind::BestEffort,
        StackKind::HybridMecho { relay: NodeId(0) },
    ] {
        let config = catalog.config_for(&kind);
        let text = config.to_xml();
        let parsed = ChannelConfig::from_xml(&text).expect("generated descriptions parse");
        assert_eq!(parsed, config, "description roundtrip for {}", kind.name());
    }
}

#[test]
fn both_configurations_instantiate_on_a_kernel() {
    let catalog = StackCatalog::new("data", members(4));
    for kind in [
        StackKind::BestEffort,
        StackKind::HybridMecho { relay: NodeId(0) },
    ] {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(1));
        let config = catalog.config_for(&kind);
        let id = kernel
            .create_channel(&config, &mut platform)
            .unwrap_or_else(|err| panic!("{} failed to instantiate: {err}", kind.name()));
        assert_eq!(
            kernel.channel(id).unwrap().layer_names(),
            config.layer_names()
        );
    }
}

#[test]
fn a_node_can_be_reconfigured_from_one_figure_2_stack_to_the_other() {
    let mut platform = TestPlatform::new(NodeId(1));
    let mut node = MorpheusNode::new(NodeOptions::new(members(3)), &mut platform).unwrap();
    assert!(node.data_stack_layers().contains(&"beb".to_string()));

    let hybrid = node
        .catalog()
        .config_for(&StackKind::HybridMecho { relay: NodeId(0) });
    node.apply_reconfiguration(
        morpheus::appia::platform::ReconfigRequest {
            channel: "data".into(),
            stack_name: "hybrid-mecho-relay0".into(),
            description: hybrid.to_xml(),
            epoch: 1,
            coordinator: NodeId(0),
        },
        &mut platform,
    )
    .unwrap();
    assert!(node.data_stack_layers().contains(&"mecho".to_string()));
    assert!(!node.data_stack_layers().contains(&"beb".to_string()));
}
