//! Round-engine conformance suite.
//!
//! `groupcomm::round` is the one distributed-round engine behind all three
//! multi-party protocols: the Core control plane's reconfiguration rounds,
//! view-synchrony's view rounds and the recovery layer's transfer epochs.
//! This suite states the engine's contract *once*, generically, and proves
//! it against each protocol's real wire traffic — every adapter below
//! drives genuine layer sessions through `Harness` instances and ferries
//! the actual messages between them:
//!
//! 1. **Agreement** — a round completes at most once per epoch, and every
//!    observer of an epoch sees the same decision;
//! 2. **Single-loss resilience** — dropping any single message of any wire
//!    class the protocol exchanges (command/ack, prepare/flush/commit,
//!    request/chunk) delays the round but never prevents completion: the
//!    per-participant retransmission machinery repairs it;
//! 3. **Stale-message immunity** — a captured ack/flush/chunk from an older
//!    epoch, replayed against a newer in-flight round, never completes it
//!    (and never corrupts its state);
//! 4. **Abort liveness** — a starved round is aborted by the timeout and
//!    re-proposed under a strictly fresher ballot; once the network heals
//!    the new round completes. Abort never wedges a protocol.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use morpheus::appia::layer::LayerParams;
use morpheus::appia::platform::{DeliveryKind, NodeId, NodeProfile, ReconfigRequest, TestPlatform};
use morpheus::appia::testing::Harness;
use morpheus::appia::{Dest, Event, Message};
use morpheus::cocaditem::dissemination::ContextUpdated;
use morpheus::cocaditem::ContextSnapshot;
use morpheus::core::control::CoreLayer;
use morpheus::core::{ReconfigAck, ReconfigCommand};
use morpheus::groupcomm::events::{FlushAck, Suspect, ViewCommit, ViewInstall, ViewPrepare};
use morpheus::groupcomm::recovery::{StateChunk, StateChunkHeader, StateRequest};
use morpheus::groupcomm::vsync::VsyncLayer;
use morpheus::groupcomm::{RecoveryLayer, StateSection, View};

/// One observed round completion: who saw it, which epoch, what was decided.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Completion {
    observer: &'static str,
    epoch: u64,
    decision: String,
}

/// One protocol bound to the shared round engine, driven through its real
/// layer sessions and wire messages.
trait RoundAdapter {
    fn name(&self) -> &'static str;
    /// The wire-message classes the protocol exchanges during a round.
    fn classes(&self) -> &'static [&'static str];
    /// Whether `run_round` may be called repeatedly on one instance (the
    /// protocol naturally runs successive rounds).
    fn repeatable(&self) -> bool;
    /// Drives one full round, dropping the *first* wire message of
    /// `drop_class` if given; retransmission must repair the loss. Returns
    /// every completion observed.
    fn run_round(&mut self, drop_class: Option<&'static str>) -> Vec<Completion>;
    /// Completes (or opens) a newer round, then replays a captured message
    /// from an older epoch against it. Returns `(completions caused by the
    /// replay, completions of the genuine newer round)`.
    fn stale_replay(&mut self) -> (Vec<Completion>, Vec<Completion>);
    /// Starves the first round until the protocol aborts it, then heals the
    /// network. Returns `(starved_epoch, completed_epoch)`.
    fn abort_and_repropose(&mut self) -> (u64, u64);
}

/// Asserts the agreement property over a batch of observations: every
/// observer of an epoch saw the same decision, and no observer saw two
/// completions of one epoch.
fn assert_consistent(protocol: &str, completions: &[Completion]) {
    let mut decisions: BTreeMap<u64, &str> = BTreeMap::new();
    let mut seen: Vec<(&'static str, u64)> = Vec::new();
    for completion in completions {
        assert!(
            !seen.contains(&(completion.observer, completion.epoch)),
            "{protocol}: {} observed epoch {} complete twice",
            completion.observer,
            completion.epoch
        );
        seen.push((completion.observer, completion.epoch));
        match decisions.get(&completion.epoch) {
            None => {
                decisions.insert(completion.epoch, &completion.decision);
            }
            Some(existing) => assert_eq!(
                *existing, completion.decision,
                "{protocol}: conflicting completions for epoch {}",
                completion.epoch
            ),
        }
    }
}

/// The generic conformance driver: every property, against one adapter
/// factory.
fn check_conformance<A: RoundAdapter, F: Fn() -> A>(make: F) {
    // Agreement on a clean run — and, where the protocol runs successive
    // rounds, epochs strictly advance between them.
    let mut world = make();
    let protocol = world.name();
    let first = world.run_round(None);
    assert!(!first.is_empty(), "{protocol}: clean round never completed");
    assert_consistent(protocol, &first);
    if world.repeatable() {
        let second = world.run_round(None);
        assert!(
            !second.is_empty(),
            "{protocol}: second round never completed"
        );
        let mut all = first.clone();
        all.extend(second.iter().cloned());
        assert_consistent(protocol, &all);
        let max_first = first.iter().map(|c| c.epoch).max().unwrap();
        let min_second = second.iter().map(|c| c.epoch).min().unwrap();
        assert!(
            min_second > max_first,
            "{protocol}: epoch regressed across rounds ({min_second} <= {max_first})"
        );
    }

    // Single-loss resilience, one fresh world per message class.
    for class in make().classes() {
        let mut world = make();
        let completions = world.run_round(Some(class));
        assert!(
            !completions.is_empty(),
            "{protocol}: dropping one `{class}` prevented completion"
        );
        assert_consistent(protocol, &completions);
    }

    // Stale-message immunity.
    let mut world = make();
    let (replayed, genuine) = world.stale_replay();
    assert!(
        replayed.is_empty(),
        "{protocol}: a replayed stale message completed a newer round: {replayed:?}"
    );
    assert!(
        !genuine.is_empty(),
        "{protocol}: the newer round never completed at all"
    );
    assert_consistent(protocol, &genuine);

    // Abort liveness: fresh ballot, then completion.
    let mut world = make();
    let (starved, completed) = world.abort_and_repropose();
    assert!(
        completed > starved,
        "{protocol}: re-proposal after abort must carry a fresher epoch \
         (starved {starved}, completed {completed})"
    );
}

/// Fires every armed, uncancelled timer once (the standard layer-test
/// idiom: take the snapshot so re-armed ticks wait for the next call).
fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
    let timers: Vec<_> = std::mem::take(&mut platform.timers);
    let cancelled: Vec<_> = std::mem::take(&mut platform.cancelled);
    for (_, key) in timers {
        if !cancelled.contains(&key) {
            harness.fire_timer(key, platform);
        }
    }
}

// ---------------------------------------------------------------------------
// Control-plane adapter: Core reconfiguration rounds (coordinator node 0,
// member node 1). Wire classes: ReconfigCommand down, ReconfigAck up.
// ---------------------------------------------------------------------------

struct ControlAdapter {
    coord: Harness,
    coord_platform: TestPlatform,
    member: Harness,
    member_platform: TestPlatform,
    rounds_triggered: u64,
    context_version: u64,
}

fn control_params() -> LayerParams {
    let mut params = LayerParams::new();
    params.insert("members".into(), "0,1".into());
    params.insert("adaptive".into(), "true".into());
    params.insert("data_channel".into(), "data".into());
    params.insert("retransmit_interval_ms".into(), "500".into());
    params.insert("round_timeout_ms".into(), "4000".into());
    params
}

fn ack_message(epoch: u64, stack: &str) -> Message {
    let mut message = Message::new();
    message.push(&epoch);
    message.push(&stack.to_string());
    message
}

fn command_messages(events: &[Event]) -> Vec<Message> {
    events
        .iter()
        .filter_map(|event| event.get::<ReconfigCommand>().map(|c| c.message.clone()))
        .collect()
}

fn ack_messages(events: &[Event]) -> Vec<Message> {
    events
        .iter()
        .filter_map(|event| event.get::<ReconfigAck>().map(|a| a.message.clone()))
        .collect()
}

impl ControlAdapter {
    fn new() -> Self {
        let mut coord_platform = TestPlatform::new(NodeId(0));
        let coord = Harness::new(CoreLayer, &control_params(), &mut coord_platform);
        let mut member_platform = TestPlatform::new(NodeId(1));
        let member = Harness::new(CoreLayer, &control_params(), &mut member_platform);
        coord_platform.take_deliveries();
        member_platform.take_deliveries();
        Self {
            coord,
            coord_platform,
            member,
            member_platform,
            rounds_triggered: 0,
            context_version: 0,
        }
    }

    /// Feeds fresh context to the coordinator so the policy opens a round;
    /// the member's device class alternates per call so successive rounds
    /// prescribe *different* stacks.
    fn trigger(&mut self) -> ReconfigRequest {
        self.context_version += 1;
        let coord_snapshot =
            ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(0)), self.context_version);
        self.coord.run_up(
            Event::up(ContextUpdated {
                snapshot: coord_snapshot,
            }),
            &mut self.coord_platform,
        );
        let member_profile = if self.rounds_triggered.is_multiple_of(2) {
            NodeProfile::mobile_pda(NodeId(1))
        } else {
            NodeProfile::fixed_pc(NodeId(1))
        };
        self.rounds_triggered += 1;
        self.context_version += 1;
        self.coord.run_up(
            Event::up(ContextUpdated {
                snapshot: ContextSnapshot::from_profile(&member_profile, self.context_version),
            }),
            &mut self.coord_platform,
        );
        std::mem::take(&mut self.coord_platform.reconfig_requests)
            .pop()
            .expect("the context change opens a round")
    }

    /// The coordinator's own local module finishes deploying and acks.
    /// Returns every command the round has multicast so far (the broadcast
    /// rides the round-opening dispatch, before the self-ack).
    fn coordinator_self_deploys(&mut self, request: &ReconfigRequest) -> Vec<Message> {
        let mut events = self.coord.drain_down();
        events.extend(self.coord.run_down(
            Event::down(ReconfigAck::new(
                NodeId(0),
                Dest::Node(NodeId(0)),
                ack_message(request.epoch, &request.stack_name),
            )),
            &mut self.coord_platform,
        ));
        command_messages(&events)
    }

    /// Delivers one command message to the member, deploys it there and
    /// returns the ack message the member emits.
    fn member_deploys(&mut self, command: Message) -> Message {
        self.member.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                command,
            )),
            &mut self.member_platform,
        );
        let request = std::mem::take(&mut self.member_platform.reconfig_requests)
            .pop()
            .expect("the command deploys on the member");
        let down = self.member.run_down(
            Event::down(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(request.epoch, &request.stack_name),
            )),
            &mut self.member_platform,
        );
        ack_messages(&down)
            .pop()
            .expect("the deployed member acks towards the coordinator")
    }

    fn deliver_ack(&mut self, ack: Message) {
        self.coord.run_up(
            Event::up(ReconfigAck::new(NodeId(1), Dest::Node(NodeId(0)), ack)),
            &mut self.coord_platform,
        );
    }

    /// Completions observed since the last call: the coordinator reports
    /// the completed round, the member its deployment of the same epoch.
    fn completions(&mut self) -> Vec<Completion> {
        self.coord_platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::ReconfigurationComplete { stack, epoch, .. } => Some(Completion {
                    observer: "coordinator",
                    epoch,
                    decision: stack,
                }),
                _ => None,
            })
            .collect()
    }
}

impl RoundAdapter for ControlAdapter {
    fn name(&self) -> &'static str {
        "control"
    }

    fn classes(&self) -> &'static [&'static str] {
        &["command", "ack"]
    }

    fn repeatable(&self) -> bool {
        true
    }

    fn run_round(&mut self, drop_class: Option<&'static str>) -> Vec<Completion> {
        let request = self.trigger();
        let mut commands = self.coordinator_self_deploys(&request);
        assert!(!commands.is_empty(), "the round opens with a command");
        if drop_class == Some("command") {
            commands.clear();
            // The retransmit tick re-sends the command to the silent member.
            self.coord_platform.advance(500);
            fire_pending_timers(&mut self.coord, &mut self.coord_platform);
            commands = command_messages(&self.coord.drain_down());
            assert!(!commands.is_empty(), "the command is retransmitted");
        }
        let mut ack = self.member_deploys(commands.remove(0));
        if drop_class == Some("ack") {
            // The ack is lost; the coordinator re-commands the member still
            // missing from the quorum, and the member re-acks the duplicate.
            self.coord_platform.advance(500);
            fire_pending_timers(&mut self.coord, &mut self.coord_platform);
            let resent = command_messages(&self.coord.drain_down());
            assert!(!resent.is_empty(), "the command is re-sent to the laggard");
            self.member.run_up(
                Event::up(ReconfigCommand::new(
                    NodeId(0),
                    Dest::Node(NodeId(1)),
                    resent.into_iter().next().expect("checked non-empty"),
                )),
                &mut self.member_platform,
            );
            ack = ack_messages(&self.member.drain_down())
                .pop()
                .expect("the duplicate command is re-acked");
        }
        let member_completion = Completion {
            observer: "member",
            epoch: request.epoch,
            decision: request.stack_name.clone(),
        };
        self.deliver_ack(ack);
        let mut completions = self.completions();
        completions.push(member_completion);
        completions
    }

    fn stale_replay(&mut self) -> (Vec<Completion>, Vec<Completion>) {
        // Round 1 completes; its ack is the stale artefact.
        let request = self.trigger();
        let command = self.coordinator_self_deploys(&request).remove(0);
        let stale_ack = self.member_deploys(command);
        self.deliver_ack(stale_ack.clone());
        assert!(!self.completions().is_empty(), "round 1 completes");

        // Round 2 opens under a fresh epoch; the replayed round-1 ack must
        // not count towards its quorum.
        let request = self.trigger();
        let command = self.coordinator_self_deploys(&request).remove(0);
        self.deliver_ack(stale_ack);
        let replayed = self.completions();

        let ack = self.member_deploys(command);
        self.deliver_ack(ack);
        (replayed, self.completions())
    }

    fn abort_and_repropose(&mut self) -> (u64, u64) {
        // The command never arrives anywhere: the round times out, aborts
        // and the policy immediately re-proposes under the next epoch.
        let starved = self.trigger();
        self.coord.drain_down();
        self.coord_platform.advance(4_100);
        fire_pending_timers(&mut self.coord, &mut self.coord_platform);
        let request = std::mem::take(&mut self.coord_platform.reconfig_requests)
            .pop()
            .expect("the aborted round is re-proposed");
        assert!(request.epoch > starved.epoch, "fresh ballot after abort");
        // The network heals: the re-proposed round completes normally.
        let command = self.coordinator_self_deploys(&request).remove(0);
        let ack = self.member_deploys(command);
        self.deliver_ack(ack);
        let completions = self.completions();
        assert!(!completions.is_empty(), "the healed round completes");
        (starved.epoch, completions[0].epoch)
    }
}

// ---------------------------------------------------------------------------
// View-synchrony adapter: view rounds between proposer node 1 and
// participant node 2 (member 3 is the one being expelled). Wire classes:
// ViewPrepare, FlushAck, ViewCommit.
// ---------------------------------------------------------------------------

struct VsyncAdapter {
    proposer: Harness,
    proposer_platform: TestPlatform,
    participant: Harness,
    participant_platform: TestPlatform,
    /// Ascending ids still in the group; each round expels the highest.
    members: Vec<u32>,
}

fn vsync_params() -> LayerParams {
    let mut params = LayerParams::new();
    params.insert("members".into(), "1,2,3".into());
    params.insert("retransmit_interval_ms".into(), "500".into());
    params.insert("round_timeout_ms".into(), "4000".into());
    params
}

fn view_changes(platform: &mut TestPlatform, observer: &'static str) -> Vec<Completion> {
    platform
        .take_deliveries()
        .into_iter()
        .filter_map(|delivery| match delivery.kind {
            DeliveryKind::ViewChange { view_id, members } => Some(Completion {
                observer,
                epoch: view_id,
                decision: format!("{members:?}"),
            }),
            _ => None,
        })
        .collect()
}

fn prepare_messages(events: &[Event]) -> Vec<Message> {
    events
        .iter()
        .filter_map(|event| event.get::<ViewPrepare>().map(|p| p.message.clone()))
        .collect()
}

fn flush_messages(events: &[Event]) -> Vec<Message> {
    events
        .iter()
        .filter_map(|event| event.get::<FlushAck>().map(|f| f.message.clone()))
        .collect()
}

fn commit_messages(events: &[Event]) -> Vec<Message> {
    events
        .iter()
        .filter_map(|event| event.get::<ViewCommit>().map(|c| c.message.clone()))
        .collect()
}

impl VsyncAdapter {
    fn new() -> Self {
        let mut proposer_platform = TestPlatform::new(NodeId(1));
        let proposer = Harness::new(VsyncLayer, &vsync_params(), &mut proposer_platform);
        let mut participant_platform = TestPlatform::new(NodeId(2));
        let participant = Harness::new(VsyncLayer, &vsync_params(), &mut participant_platform);
        proposer_platform.take_deliveries();
        participant_platform.take_deliveries();
        Self {
            proposer,
            proposer_platform,
            participant,
            participant_platform,
            members: vec![1, 2, 3],
        }
    }

    /// Suspects the highest remaining member at the proposer, opening a
    /// view round, and returns the prepare it multicasts.
    fn suspect_highest(&mut self) -> Vec<Message> {
        let victim = *self.members.last().expect("group never empties");
        self.members.pop();
        self.proposer.run_up(
            Event::up(Suspect {
                node: NodeId(victim),
            }),
            &mut self.proposer_platform,
        );
        prepare_messages(&self.proposer.drain_down())
    }

    fn deliver_prepare(&mut self, prepare: Message) -> Vec<Message> {
        self.participant.run_up(
            Event::up(ViewPrepare::new(NodeId(1), Dest::Node(NodeId(2)), prepare)),
            &mut self.participant_platform,
        );
        flush_messages(&self.participant.drain_down())
    }

    fn deliver_flush(&mut self, flush: Message) -> Vec<Message> {
        self.proposer.run_up(
            Event::up(FlushAck::new(NodeId(2), Dest::Node(NodeId(1)), flush)),
            &mut self.proposer_platform,
        );
        commit_messages(&self.proposer.drain_down())
    }

    fn deliver_commit(&mut self, commit: Message) {
        self.participant.run_up(
            Event::up(ViewCommit::new(NodeId(1), Dest::Node(NodeId(2)), commit)),
            &mut self.participant_platform,
        );
    }

    fn completions(&mut self) -> Vec<Completion> {
        let mut completions = view_changes(&mut self.proposer_platform, "proposer");
        completions.extend(view_changes(&mut self.participant_platform, "participant"));
        completions
    }
}

impl RoundAdapter for VsyncAdapter {
    fn name(&self) -> &'static str {
        "vsync"
    }

    fn classes(&self) -> &'static [&'static str] {
        &["prepare", "flush", "commit"]
    }

    fn repeatable(&self) -> bool {
        true
    }

    fn run_round(&mut self, drop_class: Option<&'static str>) -> Vec<Completion> {
        let mut prepares = self.suspect_highest();
        if self.members.len() < 2 {
            // Degenerate second round: the proposer is alone in the proposed
            // view and completes without remote participants.
            return self.completions();
        }
        assert!(!prepares.is_empty(), "the round opens with a prepare");
        if drop_class == Some("prepare") {
            prepares.clear();
            self.proposer_platform.advance(500);
            fire_pending_timers(&mut self.proposer, &mut self.proposer_platform);
            prepares = prepare_messages(&self.proposer.drain_down());
            assert!(!prepares.is_empty(), "the prepare is retransmitted");
        }
        let mut flushes = self.deliver_prepare(prepares.remove(0));
        assert!(!flushes.is_empty(), "the participant flushes");
        if drop_class == Some("flush") {
            // The participant re-sends its flush on its own tick.
            flushes.clear();
            self.participant_platform.advance(500);
            fire_pending_timers(&mut self.participant, &mut self.participant_platform);
            flushes = flush_messages(&self.participant.drain_down());
            assert!(!flushes.is_empty(), "the flush is retransmitted");
        }
        let mut commits = self.deliver_flush(flushes.remove(0));
        assert!(!commits.is_empty(), "the completed round commits");
        if drop_class == Some("commit") {
            // The commit is lost; the straggler keeps flushing and the
            // proposer answers the duplicate flush with a fresh commit.
            commits.clear();
            self.participant_platform.advance(500);
            fire_pending_timers(&mut self.participant, &mut self.participant_platform);
            let repeated = flush_messages(&self.participant.drain_down())
                .into_iter()
                .next()
                .expect("the straggler keeps flushing");
            commits = self.deliver_flush(repeated);
            assert!(!commits.is_empty(), "the commit is replayed");
        }
        self.deliver_commit(commits.remove(0));
        self.completions()
    }

    fn stale_replay(&mut self) -> (Vec<Completion>, Vec<Completion>) {
        // Round 1 completes on both nodes; its flush is the stale artefact.
        let prepares = self.suspect_highest();
        let flushes = self.deliver_prepare(prepares.into_iter().next().expect("prepare"));
        let stale_flush = flushes.into_iter().next().expect("flush");
        let commits = self.deliver_flush(stale_flush.clone());
        self.deliver_commit(commits.into_iter().next().expect("commit"));
        assert!(!self.completions().is_empty(), "round 1 completes");

        // Round 2 (expelling node 2) completes at the proposer alone.
        self.suspect_highest();
        let genuine = self.completions();

        // The replayed round-1 flush must not commit or install anything.
        self.deliver_flush(stale_flush);
        (self.completions(), genuine)
    }

    fn abort_and_repropose(&mut self) -> (u64, u64) {
        // The participant never flushes: the proposer times the round out,
        // aborts it and immediately re-proposes under a fresh epoch.
        let prepares = self.suspect_highest();
        let starved_epoch = epoch_of(prepares.into_iter().next().expect("prepare"));
        self.proposer_platform.advance(4_100);
        fire_pending_timers(&mut self.proposer, &mut self.proposer_platform);
        let reproposed = prepare_messages(&self.proposer.drain_down())
            .into_iter()
            .next()
            .expect("the aborted round is re-proposed");
        let fresh_epoch = epoch_of(reproposed.clone());
        // The network heals: the re-proposed round completes on both nodes.
        let flushes = self.deliver_prepare(reproposed);
        let commits = self.deliver_flush(flushes.into_iter().next().expect("flush"));
        self.deliver_commit(commits.into_iter().next().expect("commit"));
        assert!(!self.completions().is_empty(), "the healed round completes");
        (starved_epoch, fresh_epoch)
    }
}

/// Pops the round epoch a vsync prepare message carries (epoch on top,
/// proposed view beneath).
fn epoch_of(mut prepare: Message) -> u64 {
    prepare.pop::<u64>().expect("prepare carries its epoch")
}

// ---------------------------------------------------------------------------
// Recovery adapter: transfer epochs between joiner node 2 and donors 0 and
// 1. Wire classes: StateRequest up, StateChunk down. The two donors hold
// *different* state so any stale-chunk leak across a failover would corrupt
// the installed snapshot visibly.
// ---------------------------------------------------------------------------

const DONOR0_STATE: &[u8] = b"donor zero's snapshot: forty-eight bytes of it!!";
const DONOR1_STATE: &[u8] = b"donor one's snapshot: different bytes entirely!!";

struct SharedSection {
    name: &'static str,
    state: Rc<RefCell<Vec<u8>>>,
}

impl StateSection for SharedSection {
    fn name(&self) -> &str {
        self.name
    }
    fn export(&self) -> Vec<u8> {
        self.state.borrow().clone()
    }
    fn install(&self, bytes: &[u8]) -> bool {
        *self.state.borrow_mut() = bytes.to_vec();
        true
    }
}

fn section(contents: &[u8]) -> (Rc<dyn StateSection>, Rc<RefCell<Vec<u8>>>) {
    let state = Rc::new(RefCell::new(contents.to_vec()));
    (
        Rc::new(SharedSection {
            name: "s",
            state: state.clone(),
        }),
        state,
    )
}

fn recovery_params(joining: bool) -> LayerParams {
    let mut params = LayerParams::new();
    params.insert("members".into(), "0,1,2".into());
    params.insert("joining".into(), joining.to_string());
    params.insert("chunk_bytes".into(), "16".into());
    params.insert("retry_ms".into(), "500".into());
    params.insert("transfer_timeout_ms".into(), "4000".into());
    params
}

/// `(donor, request message)` pairs drained from the joiner.
fn request_messages(events: &[Event]) -> Vec<(NodeId, Message)> {
    events
        .iter()
        .filter_map(|event| {
            event.get::<StateRequest>().map(|request| {
                let Dest::Node(donor) = request.header.dest else {
                    panic!("state requests are unicast");
                };
                (donor, request.message.clone())
            })
        })
        .collect()
}

fn chunk_messages(events: &[Event]) -> Vec<Message> {
    events
        .iter()
        .filter_map(|event| event.get::<StateChunk>().map(|chunk| chunk.message.clone()))
        .collect()
}

struct RecoveryAdapter {
    joiner: Harness,
    joiner_platform: TestPlatform,
    donors: Vec<(NodeId, Harness, TestPlatform)>,
    joiner_state: Rc<RefCell<Vec<u8>>>,
}

impl RecoveryAdapter {
    fn new() -> Self {
        let mut donors = Vec::new();
        for (id, state) in [(0u32, DONOR0_STATE), (1u32, DONOR1_STATE)] {
            let (donor_section, _) = section(state);
            let mut platform = TestPlatform::new(NodeId(id));
            let harness = Harness::new(
                RecoveryLayer::with_sections(vec![donor_section]),
                &recovery_params(false),
                &mut platform,
            );
            donors.push((NodeId(id), harness, platform));
        }
        let (joiner_section, joiner_state) = section(b"");
        let mut joiner_platform = TestPlatform::new(NodeId(2));
        let joiner = Harness::new(
            RecoveryLayer::with_sections(vec![joiner_section]),
            &recovery_params(true),
            &mut joiner_platform,
        );
        Self {
            joiner,
            joiner_platform,
            donors,
            joiner_state,
        }
    }

    /// Admits the joiner (a view containing it installs) and returns the
    /// initial state requests.
    fn admit(&mut self) -> Vec<(NodeId, Message)> {
        let down = self.joiner.run_down(
            Event::down(ViewInstall {
                view: View::new(1, vec![NodeId(0), NodeId(1), NodeId(2)]),
            }),
            &mut self.joiner_platform,
        );
        request_messages(&down)
    }

    /// Feeds one request to the addressed donor and returns the chunks it
    /// streams back.
    fn serve(&mut self, donor: NodeId, request: Message) -> Vec<Message> {
        let (_, harness, platform) = self
            .donors
            .iter_mut()
            .find(|(id, _, _)| *id == donor)
            .expect("requests target a known donor");
        harness.run_up(
            Event::up(StateRequest::new(NodeId(2), Dest::Node(donor), request)),
            platform,
        );
        chunk_messages(&harness.drain_down())
    }

    fn deliver_chunk(&mut self, donor: NodeId, chunk: Message) {
        self.joiner.run_up(
            Event::up(StateChunk::new(donor, Dest::Node(NodeId(2)), chunk)),
            &mut self.joiner_platform,
        );
    }

    fn completions(&mut self) -> Vec<Completion> {
        let state = String::from_utf8_lossy(&self.joiner_state.borrow()).into_owned();
        self.joiner_platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::Rejoined {
                    donor,
                    transfer_epochs,
                    ..
                } => Some(Completion {
                    observer: "joiner",
                    epoch: transfer_epochs,
                    decision: format!("donor={donor:?} state={state}"),
                }),
                _ => None,
            })
            .collect()
    }

    /// Ferries request/chunk traffic until the transfer completes, dropping
    /// the first message of `drop_class` (once).
    fn pump(&mut self, mut outgoing: Vec<(NodeId, Message)>, drop_class: Option<&str>) {
        let mut dropped = false;
        for _ in 0..64 {
            if drop_class == Some("request") && !dropped && !outgoing.is_empty() {
                outgoing.remove(0);
                dropped = true;
            }
            if outgoing.is_empty() {
                // Nothing in flight: the joiner's retry tick re-requests.
                self.joiner_platform.advance(500);
                fire_pending_timers(&mut self.joiner, &mut self.joiner_platform);
                outgoing = request_messages(&self.joiner.drain_down());
                if outgoing.is_empty() {
                    return;
                }
                continue;
            }
            for (donor, request) in outgoing.drain(..) {
                let mut chunks = self.serve(donor, request);
                if drop_class == Some("chunk") && !dropped && !chunks.is_empty() {
                    chunks.remove(0);
                    dropped = true;
                }
                for chunk in chunks {
                    self.deliver_chunk(donor, chunk);
                }
            }
            outgoing = request_messages(&self.joiner.drain_down());
        }
        panic!("transfer never quiesced");
    }
}

impl RoundAdapter for RecoveryAdapter {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn classes(&self) -> &'static [&'static str] {
        &["request", "chunk"]
    }

    fn repeatable(&self) -> bool {
        // A joiner rejoins once; epoch advance across aborts is covered by
        // `abort_and_repropose`.
        false
    }

    fn run_round(&mut self, drop_class: Option<&'static str>) -> Vec<Completion> {
        let outgoing = self.admit();
        assert!(!outgoing.is_empty(), "admission opens the transfer");
        self.pump(outgoing, drop_class);
        let completions = self.completions();
        assert_eq!(
            &*self.joiner_state.borrow(),
            DONOR0_STATE,
            "the joiner installed the first donor's snapshot"
        );
        completions
    }

    fn stale_replay(&mut self) -> (Vec<Completion>, Vec<Completion>) {
        // Donor 0 streams its first window, then goes silent: capture its
        // epoch-1 chunks as the stale artefacts.
        let mut outgoing = self.admit();
        let (donor, request) = outgoing.remove(0);
        let stale_chunks = self.serve(donor, request);
        assert!(!stale_chunks.is_empty(), "donor 0 answered epoch 1");

        // The stalled transfer fails over to donor 1 under epoch 2.
        self.joiner_platform.advance(4_100);
        fire_pending_timers(&mut self.joiner, &mut self.joiner_platform);
        let outgoing = request_messages(&self.joiner.drain_down());
        assert!(
            outgoing.iter().all(|(donor, _)| *donor == NodeId(1)),
            "after failover every request targets donor 1"
        );

        // Replaying donor 0's epoch-1 chunks against the epoch-2 transfer
        // must neither complete it nor leak bytes into its chunk map.
        for chunk in stale_chunks {
            let header = chunk.clone().pop::<StateChunkHeader>().expect("header");
            assert_eq!(header.transfer_epoch, 1, "captured chunks are epoch 1");
            self.deliver_chunk(NodeId(0), chunk);
        }
        let replayed = self.completions();

        // Donor 1 completes the genuine epoch-2 transfer.
        self.pump(outgoing, None);
        let genuine = self.completions();
        assert_eq!(
            &*self.joiner_state.borrow(),
            DONOR1_STATE,
            "the installed snapshot is donor 1's, untouched by stale chunks"
        );
        (replayed, genuine)
    }

    fn abort_and_repropose(&mut self) -> (u64, u64) {
        // Donor 0 never answers: the stall timeout aborts transfer epoch 1
        // and re-opens epoch 2 at the next donor.
        let outgoing = self.admit();
        assert!(!outgoing.is_empty(), "admission opens the transfer");
        self.joiner_platform.advance(4_100);
        fire_pending_timers(&mut self.joiner, &mut self.joiner_platform);
        let outgoing = request_messages(&self.joiner.drain_down());
        assert!(
            outgoing.iter().all(|(donor, _)| *donor == NodeId(1)),
            "the failover targets donor 1"
        );
        self.pump(outgoing, None);
        let completions = self.completions();
        assert!(!completions.is_empty(), "the failover transfer completes");
        assert_eq!(
            &*self.joiner_state.borrow(),
            DONOR1_STATE,
            "the second donor's snapshot installed"
        );
        // `transfer_epochs` counts the epochs used: 2 means the round was
        // aborted once and completed under the fresh epoch.
        (1, completions[0].epoch)
    }
}

// ---------------------------------------------------------------------------
// The suite: one conformance run per protocol adapter.
// ---------------------------------------------------------------------------

#[test]
fn control_rounds_conform_to_the_round_engine_contract() {
    check_conformance(ControlAdapter::new);
}

#[test]
fn vsync_rounds_conform_to_the_round_engine_contract() {
    check_conformance(VsyncAdapter::new);
}

#[test]
fn recovery_transfers_conform_to_the_round_engine_contract() {
    check_conformance(RecoveryAdapter::new);
}
