//! End-to-end reproduction of the shape of the paper's Figure 3 at a reduced
//! message count: the non-adapted mobile node's transmissions grow linearly
//! with the group size, the adapted (Mecho) mobile node's stay approximately
//! flat, and both coincide for two devices.

use morpheus::prelude::*;

const MESSAGES: u64 = 120;

fn run(devices: usize, optimized: bool) -> RunReport {
    Runner::new().run(&Scenario::figure3(devices, optimized, MESSAGES).with_seed(devices as u64))
}

#[test]
fn two_devices_send_the_same_with_and_without_adaptation() {
    let baseline = run(2, false);
    let optimized = run(2, true);
    // With two participants every interaction is point-to-point, so the data
    // traffic is identical; the adaptive run only adds bounded control and
    // context traffic.
    assert_eq!(
        baseline.node(NodeId(1)).unwrap().sent_data,
        optimized.node(NodeId(1)).unwrap().sent_data
    );
    assert_eq!(baseline.node(NodeId(1)).unwrap().sent_data, MESSAGES);
}

#[test]
fn non_adapted_mobile_load_grows_linearly_with_the_group() {
    let sent: Vec<u64> = [3usize, 6, 9]
        .iter()
        .map(|devices| run(*devices, false).node(NodeId(1)).unwrap().sent_data)
        .collect();
    assert_eq!(sent, vec![MESSAGES * 2, MESSAGES * 5, MESSAGES * 8]);
}

#[test]
fn adapted_mobile_load_stays_flat_as_the_group_grows() {
    let three = run(3, true);
    let nine = run(9, true);
    for report in [&three, &nine] {
        let mobile = report.node(NodeId(1)).unwrap();
        assert!(
            mobile.final_stack.starts_with("hybrid-mecho"),
            "expected the adaptive run to end on Mecho, got {}",
            mobile.final_stack
        );
    }
    let sent_three = three.node(NodeId(1)).unwrap().sent_data;
    let sent_nine = nine.node(NodeId(1)).unwrap().sent_data;
    // A handful of messages may be sent before the reconfiguration settles,
    // so allow a small slack above the ideal `MESSAGES` count — but the count
    // must not scale with the group size.
    assert!(
        sent_three <= MESSAGES + MESSAGES / 2,
        "3 devices: sent {sent_three}"
    );
    assert!(
        sent_nine <= MESSAGES + MESSAGES / 2,
        "9 devices: sent {sent_nine}"
    );
    let growth = sent_nine as f64 / sent_three as f64;
    assert!(
        growth < 1.5,
        "adapted load grew by {growth}x between 3 and 9 devices"
    );
}

#[test]
fn the_adaptation_shifts_the_fanout_to_the_fixed_relay() {
    let report = run(6, true);
    let mobile = report.node(NodeId(1)).unwrap();
    let relay = report.node(NodeId(0)).unwrap();
    assert!(
        relay.sent_data > mobile.sent_data * 2,
        "relay sent {} vs mobile {}",
        relay.sent_data,
        mobile.sent_data
    );
}

#[test]
fn the_crossover_factor_matches_the_papers_order_of_magnitude() {
    // At 9 devices the paper reports roughly an 8x difference between the
    // two series (320k vs ~40k messages for the 40,000-message workload).
    let baseline = run(9, false).node(NodeId(1)).unwrap().sent_total();
    let optimized = run(9, true).node(NodeId(1)).unwrap().sent_total();
    let ratio = baseline as f64 / optimized as f64;
    assert!(
        ratio > 3.0,
        "expected a large reduction, measured {ratio:.2}x"
    );
}

#[test]
fn every_adaptive_run_reports_the_reconfiguration_to_the_coordinator() {
    let report = run(5, true);
    assert!(
        report.total_reconfigurations() >= 5,
        "every node redeploys its data stack"
    );
    let notices = report.reconfiguration_notices();
    assert!(
        notices
            .iter()
            .any(|text| text.contains("completed across 5 nodes")),
        "coordinator reports completion: {notices:?}"
    );
    assert_eq!(report.total_errors(), 0);
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let first = run(4, true);
    let second = run(4, true);
    assert_eq!(
        first.node(NodeId(1)).unwrap().sent_total(),
        second.node(NodeId(1)).unwrap().sent_total()
    );
    assert_eq!(first.total_app_deliveries(), second.total_app_deliveries());
}
