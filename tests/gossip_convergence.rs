//! Convergence of the gossip control plane at membership scale.
//!
//! The control plane is epidemic end to end: failure detection pushes
//! liveness digests to `fanout` random peers per interval, and context
//! dissemination gossips `(node, version)` digests and pulls only
//! missing/stale snapshots. These tests pin down, with deterministic seeds,
//! that both mechanisms converge within bounded time at n = 50 under
//! 0/10/30% control-plane loss — without the legacy periodic full republish
//! — and that a 100-node group completes its large-group reconfiguration
//! without losing a single chat message.

use morpheus::prelude::*;

fn large_group_run(n: usize, loss: f64) -> RunReport {
    Runner::new().run(&Scenario::large_group(n).with_control_loss(loss))
}

#[test]
fn context_dissemination_converges_at_fifty_nodes_under_loss() {
    // (loss, convergence bound in simulated ms). The bounds are generous
    // multiples of the observed values so seed-insensitive slack remains,
    // but tight enough that a regression to flood-repair-only behaviour
    // (convergence via luck or never) trips them.
    for (loss, bound_ms) in [(0.0, 6_000), (0.1, 12_000), (0.3, 22_000)] {
        let report = large_group_run(50, loss);
        let converged = report
            .context_convergence_ms()
            .unwrap_or_else(|| panic!("context never converged at loss {loss}"));
        assert!(
            converged <= bound_ms,
            "context convergence took {converged} ms at loss {loss} (bound {bound_ms} ms)"
        );
        assert_eq!(report.messages_lost, 0, "chat is unaffected at loss {loss}");
        assert_eq!(report.total_errors(), 0);
        if loss > 0.0 {
            assert!(
                report.control_lost > 0,
                "the control plane really was degraded at {loss}"
            );
        }
    }
}

#[test]
fn liveness_digests_raise_no_false_suspicions_under_loss() {
    // A falsely suspected member would be expelled into a *smaller* view on
    // the data channel; with digest-age suspicion and a timeout covering
    // the O(log n) propagation delay, every view any node ever sees must
    // still hold the full membership even at 30% control loss. (The view
    // may be re-announced across the stack replacement — that is not a
    // suspicion.)
    let report = large_group_run(50, 0.3);
    for node in &report.nodes {
        assert_eq!(
            node.min_view_members,
            Some(50),
            "node {} saw a shrunken view under loss (false suspicion)",
            node.node
        );
    }
}

#[test]
fn a_hundred_node_group_reconfigures_without_losing_chat() {
    let report = large_group_run(100, 0.0);

    // The large-group rule fired: every node redeployed onto the epidemic
    // data stack via a completed coordinator round.
    let rounds = report.completed_rounds();
    assert!(!rounds.is_empty(), "the adaptation round completed");
    assert_eq!(rounds[0].nodes, 100, "the quorum covered the whole group");
    assert_eq!(report.total_reconfigurations(), 100);
    for node in &report.nodes {
        assert!(
            node.final_stack.starts_with("gossip"),
            "node {} ended on {} instead of the epidemic stack",
            node.node,
            node.final_stack
        );
    }

    // Zero chat messages lost across the reconfiguration.
    assert_eq!(report.messages_lost, 0);
    assert_eq!(report.total_errors(), 0);
    assert!(
        report.total_app_deliveries() > 0,
        "chat flowed through the reconfigured stack"
    );
}

#[test]
fn the_gossip_plane_stays_cheaper_than_all_to_all_at_scale() {
    // Per heartbeat interval the all-to-all baseline pays n·(n−1) control
    // messages; the gossip plane pays n·fanout per mechanism. At n = 50 the
    // gap is already an order of magnitude.
    let gossip = large_group_run(50, 0.0);
    let baseline = Runner::new().run(&Scenario::large_group(50).with_control_fanout(0));
    let control_sent =
        |report: &RunReport| -> u64 { report.nodes.iter().map(|node| node.sent_control).sum() };
    let gossip_control = control_sent(&gossip);
    let baseline_control = control_sent(&baseline);
    assert!(
        gossip_control * 5 < baseline_control,
        "gossip control traffic ({gossip_control}) must stay well under the \
         all-to-all baseline ({baseline_control})"
    );
}

#[test]
fn sustained_overload_sheds_data_gracefully_without_wedging() {
    // Every member sends at twice the configured service rate for 10 s
    // against a deliberately small event-queue cap. The acceptance shape is
    // graceful degradation: data-plane transmissions are shed at the cap
    // (and repaired later where the repair plane can still reach them), the
    // queue depth stays bounded, the control plane loses nothing, and the
    // run neither wedges nor crashes a node.
    let mut scenario = Scenario::sustained_overload(50, 50, 10_000);
    scenario.wedge_queue_cap = 4_000;
    let report = Runner::new().run(&scenario);

    assert!(
        report.wedge.is_none(),
        "overload must degrade, not wedge: {:?}",
        report.wedge
    );
    assert!(
        report.shed_packets > 0,
        "the cap was sized to actually engage the shed path"
    );
    assert!(
        report.max_queue_depth <= scenario.wedge_queue_cap * 2,
        "queue depth {} exceeded the bounded-degradation envelope ({})",
        report.max_queue_depth,
        scenario.wedge_queue_cap * 2
    );
    assert_eq!(
        report.control_lost, 0,
        "control-plane traffic is never shed under data overload"
    );
    assert_eq!(report.messages_lost, 0, "live links lose nothing");
    assert_eq!(report.total_errors(), 0);
    for node in &report.nodes {
        assert_eq!(
            node.restarts, 0,
            "overload must not crash node {}",
            node.node
        );
    }
    assert!(
        report.total_app_deliveries() > 0,
        "chat still flows under overload"
    );
}

#[test]
fn a_member_partitioned_past_the_log_ttl_heals_via_catchup_not_rejoin() {
    // Node 49 (a non-sender) is isolated for 30 s — three times the 10 s
    // repair-log TTL — while the chat keeps flowing. By the time the
    // partition lifts, every live peer has evicted the early missed span
    // from its repair log, so NACK repair alone cannot close the gap: the
    // member must escalate to the targeted repair→snapshot section pull.
    // No restart, no rejoin, no view change.
    let scenario = Scenario::long_partition(50, 30_000);
    let isolated = NodeId(49);
    let mut binding = ChatHistoryBinding::new("icdcs");
    let report = Runner::new().run_with_binding(&scenario, &mut binding);

    assert!(report.wedge.is_none(), "no wedge: {:?}", report.wedge);
    let node = report.node(isolated).unwrap();
    assert_eq!(node.restarts, 0, "healing must not restart the node");
    assert!(
        node.rejoin.is_none(),
        "healing must not use the rejoin path"
    );
    assert!(
        node.catchups >= 1,
        "the repair→snapshot catch-up must have closed the evicted span"
    );
    // The raised suspicion timeout kept the member in the view throughout:
    // no node ever installed a shrunken membership.
    for peer in &report.nodes {
        assert_eq!(
            peer.min_view_members,
            Some(50),
            "node {} expelled the partitioned member",
            peer.node
        );
    }
    // Full reconvergence: every message every sender emitted is in the
    // isolated member's room history — via live delivery, NACK repair or
    // the snapshot catch-up.
    let history = binding
        .history(isolated)
        .expect("the chat binding tracks every node");
    let all = scenario
        .workload
        .seqs_sent_between(0, scenario.end_time_ms());
    assert!(!all.is_empty());
    for sender in &scenario.workload.senders {
        let sender = ChatHistoryBinding::sender_name(*sender);
        let missing = all
            .clone()
            .filter(|seq| !history.contains("icdcs", &sender, *seq))
            .count();
        assert_eq!(
            missing,
            0,
            "the partitioned member's history misses {missing} of {} messages \
             from {sender}",
            all.clone().count()
        );
    }
    assert_eq!(report.messages_lost, 0, "live links lose nothing");
}
