//! Failure handling across the whole middleware: when a participant crashes
//! mid-run, the heartbeat failure detector suspects it, the view-synchrony
//! coordinator installs a smaller view, and the remaining participants keep
//! exchanging chat traffic.

use morpheus::prelude::*;

fn failure_scenario(devices: usize, crashed: NodeId, crash_at_ms: u64) -> Scenario {
    let mut scenario = Scenario::figure3(devices, false, 300)
        .with_seed(5)
        .with_failure(crash_at_ms, crashed);
    // Fast failure detection so the view change happens within the run.
    scenario.hb_interval_ms = 300;
    scenario.suspect_timeout_ms = 1200;
    scenario.publish_interval_ms = 1000;
    scenario.workload.warmup_ms = 500;
    scenario.cooldown_ms = 5000;
    scenario
}

#[test]
fn a_crashed_member_is_removed_from_the_view() {
    // Node 3 (a mobile receiver) crashes 5 seconds into the run.
    let report = Runner::new().run(&failure_scenario(4, NodeId(3), 5_000));

    // Survivors observed at least two views: the initial one and the one that
    // excludes the crashed node.
    for survivor in [NodeId(0), NodeId(1), NodeId(2)] {
        let node = report.node(survivor).unwrap();
        assert!(
            node.view_changes >= 2,
            "node {survivor} saw {} view changes, expected the post-crash view",
            node.view_changes
        );
    }
    // The crashed node stops transmitting after the crash but the sender keeps
    // going: the run still delivers the bulk of the traffic to the survivors.
    let crashed = report.node(NodeId(3)).unwrap();
    let survivor = report.node(NodeId(2)).unwrap();
    assert!(crashed.app_deliveries < survivor.app_deliveries);
    assert!(
        survivor.app_deliveries >= 250,
        "survivors keep receiving chat traffic"
    );
}

#[test]
fn the_sender_narrows_its_fanout_after_the_view_change() {
    // Without a failure the sender transmits 300 * 3 point-to-point messages.
    let baseline = Runner::new().run(&failure_scenario(4, NodeId(3), u64::MAX / 2));
    let with_crash = Runner::new().run(&failure_scenario(4, NodeId(3), 5_000));
    let baseline_sent = baseline.node(NodeId(1)).unwrap().sent_data;
    let with_crash_sent = with_crash.node(NodeId(1)).unwrap().sent_data;
    assert_eq!(baseline_sent, 900);
    assert!(
        with_crash_sent < baseline_sent,
        "after the crashed member leaves the view the sender stops addressing it \
         ({with_crash_sent} vs {baseline_sent})"
    );
}

#[test]
fn a_crashed_coordinator_is_replaced() {
    // Node 0 is both the fixed node and the initial coordinator; after it
    // crashes, the next-lowest node takes over the view change.
    let report = Runner::new().run(&failure_scenario(4, NodeId(0), 5_000));
    let survivor = report.node(NodeId(2)).unwrap();
    assert!(
        survivor.view_changes >= 2,
        "survivors install a view without the old coordinator"
    );
    assert!(survivor.app_deliveries > 0);
}
