//! End-to-end recovery: a genuinely restarted node rejoins the group through
//! the view-synchronous state-transfer protocol — join view change, chunked
//! snapshot from the deterministic donor, buffered join-view replay, control
//! plane repair — while the survivors keep chatting without losing a single
//! message. All runs are seeded and deterministic.

use morpheus::chat::ChatHistoryBinding;
use morpheus::prelude::*;
use morpheus::testbed::{RunReport, Runner};

/// Runs a recovery scenario with a real chat application bound to every
/// node and returns the report plus the binding (which holds the final
/// per-node room histories).
fn run_chat(scenario: &Scenario) -> (RunReport, ChatHistoryBinding) {
    let mut binding = ChatHistoryBinding::new("icdcs");
    let report = Runner::new().run_with_binding(scenario, &mut binding);
    (report, binding)
}

#[test]
fn a_restarted_node_at_n50_rejoins_with_store_and_history_intact() {
    // The acceptance scenario: 50 nodes on the epidemic data stack, 10%
    // control loss, node 49 crashes at 12 s, is expelled, restarts empty at
    // 20 s and rejoins while chat keeps flowing.
    let scenario = Scenario::member_restart(50, 0.1);
    let restarting = scenario.restarting_members()[0];
    let (report, binding) = run_chat(&scenario);

    // Zero data loss for surviving members: the only unreceived packets are
    // the ones addressed to the node while it was crashed.
    assert_eq!(report.messages_lost, 0, "no live-link data loss");
    assert!(report.messages_lost_to_crashed > 0, "the crash was real");

    // The node rejoined, within a bounded latency, via the deterministic
    // donor (the lowest live id in the join view).
    let node = report.node(restarting).unwrap();
    assert_eq!(node.restarts, 1);
    let rejoin = node.rejoin.as_ref().expect("the restarted node rejoined");
    assert_eq!(rejoin.donor, NodeId(0));
    assert!(
        rejoin.elapsed_ms < 5_000,
        "rejoin latency {} ms exceeds the bound",
        rejoin.elapsed_ms
    );
    assert!(rejoin.bytes > 0 && rejoin.chunks > 1, "chunked snapshot");

    // Control-plane repair converged the rejoiner onto the committed stack
    // (the large-group rule moved the group to epidemic multicast long
    // before the crash).
    assert!(
        node.final_stack.starts_with("gossip"),
        "rejoiner repaired onto the committed stack (got {})",
        node.final_stack
    );

    // Store intact: the snapshot seeded the context store, so the rejoiner
    // reports full-membership context coverage again after the restart.
    assert!(
        node.context_converged_ms.is_some(),
        "post-restart context convergence"
    );

    // Chat history intact: messages sent while the node was down can only
    // be known through the donor's snapshot. The donor (node 0, itself a
    // sender) records its own sends, so its part of the downtime traffic
    // must be in the rejoiner's history completely; the other senders'
    // messages reached the donor over the epidemic stack, whose coverage is
    // probabilistic — assert a high floor over the aggregate instead.
    let history = binding.history(restarting).expect("history bound");
    let downtime = scenario.workload.seqs_sent_between(13_000, 19_000);
    assert!(!downtime.is_empty());
    let donor_sender = ChatHistoryBinding::sender_name(NodeId(0));
    for seq in downtime.clone() {
        assert!(
            history.contains("icdcs", &donor_sender, seq),
            "history misses the donor's own {donor_sender}:{seq}, \
             sent while the node was down"
        );
    }
    let covered = (0..3u32)
        .flat_map(|sender| {
            let sender = ChatHistoryBinding::sender_name(NodeId(sender));
            downtime
                .clone()
                .filter(move |seq| history.contains("icdcs", &sender, *seq))
        })
        .count();
    let total = downtime.clone().count() * 3;
    // Pre-repair baseline: the epidemic push phase left the donor's history
    // only ~90-95% complete at n = 50, so this bound used to be >= 90%.
    // With the NACK/anti-entropy repair pass the donor's deliveries — and
    // therefore the snapshot — are complete, so the bound is >= 99.9%.
    assert!(
        covered * 1000 >= total * 999,
        "rejoiner recovered only {covered}/{total} downtime messages"
    );
    assert_eq!(binding.decode_failures(), 0);

    // The survivors kept near-complete epidemic coverage throughout.
    for survivor in report.nodes.iter().filter(|n| n.node != restarting) {
        assert!(
            survivor.app_deliveries >= 180,
            "survivor {} delivered only {} messages",
            survivor.node,
            survivor.app_deliveries
        );
    }
}

#[test]
fn a_donor_crash_mid_transfer_fails_over_to_the_next_donor() {
    let scenario = Scenario::donor_crash_mid_transfer();
    let restarting = scenario.restarting_members()[0];
    let (report, binding) = run_chat(&scenario);

    assert_eq!(report.messages_lost, 0, "no live-link data loss");

    let node = report.node(restarting).unwrap();
    let rejoin = node
        .rejoin
        .as_ref()
        .expect("rejoin completed despite the donor crash");
    assert!(
        rejoin.transfer_epochs >= 2,
        "the donor crash must be visible as a transfer-epoch failover"
    );
    assert_eq!(
        rejoin.donor,
        NodeId(1),
        "the next-lowest live id takes over as donor"
    );
    assert!(
        rejoin.elapsed_ms < 8_000,
        "failover rejoin latency {} ms exceeds the bound",
        rejoin.elapsed_ms
    );

    // The failed-over snapshot still makes the history whole: messages sent
    // while the node was down came through donor 1.
    let history = binding.history(restarting).expect("history bound");
    let downtime = scenario.workload.seqs_sent_between(5_500, 9_500);
    assert!(!downtime.is_empty());
    for sender in 1..=3u32 {
        let sender = ChatHistoryBinding::sender_name(NodeId(sender));
        for seq in downtime.clone() {
            assert!(
                history.contains("icdcs", &sender, seq),
                "history misses {sender}:{seq} after donor failover"
            );
        }
    }
}

#[test]
fn small_group_restart_keeps_survivor_delivery_complete() {
    // On the best-effort stack (n = 8, below the large-group threshold)
    // coverage is deterministic: every survivor must deliver every message
    // from every other live sender — the crash/restart cycle is invisible
    // to them.
    let scenario = Scenario::member_restart(8, 0.0);
    let restarting = scenario.restarting_members()[0];
    let (report, binding) = run_chat(&scenario);

    assert_eq!(report.messages_lost, 0);
    let messages = scenario.workload.messages_per_sender;
    for survivor in report.nodes.iter().filter(|n| n.node != restarting) {
        let own_sends = if survivor.node.0 < 3 { 1 } else { 0 };
        let expected = (3 - own_sends) * messages;
        assert_eq!(
            survivor.app_deliveries, expected,
            "survivor {} must deliver every message from the other senders",
            survivor.node
        );
    }

    let node = report.node(restarting).unwrap();
    let rejoin = node.rejoin.as_ref().expect("rejoined");
    assert_eq!(rejoin.transfer_epochs, 1, "first donor succeeds");
    assert!(rejoin.elapsed_ms < 3_000);
    // The join-view buffer plus snapshot leave no gap: the rejoiner's
    // history covers the entire run up to the rejoin point and keeps
    // growing afterwards.
    let history = binding.history(restarting).expect("history bound");
    let after_rejoin = scenario.workload.seqs_sent_between(24_000, 30_000);
    for seq in after_rejoin {
        for sender in 0..3u32 {
            let sender = ChatHistoryBinding::sender_name(NodeId(sender));
            assert!(
                history.contains("icdcs", &sender, seq),
                "post-rejoin live delivery misses {sender}:{seq}"
            );
        }
    }
}

#[test]
fn an_expelled_but_alive_member_detects_it_and_rejoins() {
    // Node 7 never crashes: it is partitioned for 8 seconds, long enough
    // for the group to expel it by (false) suspicion — and for its own
    // failure detector to suspect everyone else, which is the self-heal
    // trigger. Once the partition lifts it must re-enter through the
    // joining path like a restarted node, *without* ever restarting.
    let scenario = Scenario::expelled_member(8, 10_000, 18_000);
    let expelled = NodeId(7);
    let (report, binding) = run_chat(&scenario);

    assert_eq!(report.messages_lost, 0, "no live-link data loss");
    assert!(report.partition_dropped > 0, "the partition was real");

    // The group really expelled the member: some survivor saw a 7-member
    // view before the rejoin restored the full membership.
    assert!(
        report
            .nodes
            .iter()
            .filter(|node| node.node != expelled)
            .any(|node| node.min_view_members == Some(7)),
        "the survivors must have installed a view without the partitioned node"
    );

    // The member detected the expulsion and healed through the join path —
    // never having restarted.
    let node = report.node(expelled).unwrap();
    assert_eq!(node.restarts, 0, "the member never crashed or restarted");
    assert!(
        node.notifications
            .iter()
            .any(|text| text.contains("assuming false-suspicion expulsion")),
        "the self-heal detection must be visible: {:?}",
        node.notifications
    );
    let rejoin = node
        .rejoin
        .as_ref()
        .expect("the expelled member completed a rejoin state transfer");
    assert_eq!(rejoin.donor, NodeId(0), "lowest live id donates");

    // After healing it is a full member again: live deliveries resume, so
    // the tail of the chat (sent well after the partition lifted) is in its
    // history via the normal data path, and the partition window itself was
    // made whole by the snapshot.
    let history = binding.history(expelled).expect("history bound");
    let partition_window = scenario.workload.seqs_sent_between(11_000, 17_000);
    let tail = scenario.workload.seqs_sent_between(22_000, 28_000);
    assert!(!partition_window.is_empty() && !tail.is_empty());
    for sender in 0..3u32 {
        let sender = ChatHistoryBinding::sender_name(NodeId(sender));
        for seq in partition_window.clone() {
            assert!(
                history.contains("icdcs", &sender, seq),
                "snapshot misses {sender}:{seq} from the partition window"
            );
        }
        for seq in tail.clone() {
            assert!(
                history.contains("icdcs", &sender, seq),
                "live delivery misses {sender}:{seq} after the rejoin"
            );
        }
    }

    // The survivors were unaffected throughout.
    let messages = scenario.workload.messages_per_sender;
    for survivor in report.nodes.iter().filter(|n| n.node != expelled) {
        let own_sends = if survivor.node.0 < 3 { 1 } else { 0 };
        assert_eq!(
            survivor.app_deliveries,
            (3 - own_sends) * messages,
            "survivor {} must deliver every message from the other senders",
            survivor.node
        );
    }
}

#[test]
fn recovery_runs_are_deterministic_under_a_fixed_seed() {
    let scenario = Scenario::member_restart(8, 0.1);
    let (first, _) = run_chat(&scenario);
    let (second, _) = run_chat(&scenario);
    assert_eq!(first, second, "same seed, same run, same report");
    let rejoin_a = first.rejoins();
    assert_eq!(rejoin_a.len(), 1);
}
