//! Experiment E3 — safety of the reconfiguration procedure: every chat
//! message sent before, during and after the adaptation is delivered to every
//! other participant, because the view-synchrony layer buffers application
//! sends while the data channel is quiescent and the shared session carries
//! that buffer into the new stack.
//!
//! Since the epoch-stamped protocol this holds on *lossy* control channels
//! and across member/coordinator crashes too, not just in the friendly case:
//! lost commands are retransmitted, lost acks are re-acked on duplicate
//! commands, crashed members are excluded from the ack quorum and a crashed
//! coordinator is deterministically replaced by the next-lowest live id.

use morpheus::prelude::*;

fn adaptive_scenario(devices: usize, messages: u64) -> Scenario {
    let mut scenario = Scenario::figure3(devices, true, messages).with_seed(99);
    // Publish context slowly enough that several chat messages are in flight
    // when the reconfiguration happens.
    scenario.publish_interval_ms = 1500;
    scenario.workload.warmup_ms = 500;
    scenario.cooldown_ms = 4000;
    scenario
}

#[test]
fn no_chat_message_is_lost_across_the_adaptation() {
    let devices = 5;
    let messages = 200;
    let report = Runner::new().run(&adaptive_scenario(devices, messages));

    assert!(
        report.total_reconfigurations() >= devices as u64,
        "all nodes redeployed"
    );
    assert_eq!(report.messages_lost, 0, "loss-free links lose nothing");
    // Every message reaches every other participant exactly once.
    let expected = messages * (devices as u64 - 1);
    assert_eq!(report.total_app_deliveries(), expected);
    assert_eq!(report.total_errors(), 0);
    // The coordinator reported the completed round with its epoch.
    let rounds = report.completed_rounds();
    assert!(!rounds.is_empty());
    assert_eq!(rounds[0].nodes, devices);
    assert_eq!(
        rounds[0].retransmits, 0,
        "no retransmits on loss-free links"
    );
}

#[test]
fn the_baseline_without_adaptation_delivers_the_same_volume() {
    let devices = 5;
    let messages = 200;
    let mut scenario = adaptive_scenario(devices, messages);
    scenario.adaptive = false;
    let report = Runner::new().run(&scenario);
    assert_eq!(report.total_reconfigurations(), 0);
    assert_eq!(
        report.total_app_deliveries(),
        messages * (devices as u64 - 1)
    );
}

#[test]
fn reconfiguration_also_works_when_traffic_is_already_flowing() {
    // A short warm-up means chat traffic starts on the best-effort stack and
    // the switch to Mecho happens mid-conversation.
    let mut scenario = adaptive_scenario(4, 300);
    scenario.workload.warmup_ms = 0;
    let report = Runner::new().run(&scenario);
    assert!(report.total_reconfigurations() >= 4);
    assert_eq!(report.total_app_deliveries(), 300 * 3);
    let mobile = report.node(NodeId(1)).unwrap();
    assert!(mobile.final_stack.starts_with("hybrid-mecho"));
}

#[test]
fn view_changes_are_announced_to_every_application() {
    let report = Runner::new().run(&adaptive_scenario(4, 50));
    for node in &report.nodes {
        assert!(
            node.view_changes >= 1,
            "node {} saw no view change announcement",
            node.node
        );
    }
}

#[test]
fn reconfiguration_converges_under_a_lossy_control_channel() {
    // 10% and 30% of all control-plane packets (commands, acks, heartbeats,
    // context publications) are dropped; the retransmit machinery still
    // converges every node onto the prescribed stack with zero chat loss.
    let mut retransmits_seen = 0;
    for loss in [0.1, 0.3] {
        let devices = 5;
        let messages = 200;
        let scenario = Scenario::lossy_control(devices, messages, loss);
        let report = Runner::new().run(&scenario);

        assert!(
            report.control_lost > 0,
            "the control plane really was degraded at {loss}"
        );
        assert_eq!(
            report.messages_lost, 0,
            "control loss {loss} must not lose chat messages"
        );
        assert_eq!(
            report.total_app_deliveries(),
            messages * (devices as u64 - 1),
            "every chat message reaches every other participant at {loss}"
        );
        for node in &report.nodes {
            assert!(
                node.final_stack.starts_with("hybrid-mecho"),
                "node {} ended on {} instead of the prescribed stack (loss {loss})",
                node.node,
                node.final_stack
            );
        }
        assert!(
            !report.completed_rounds().is_empty(),
            "the coordinator observed completion at {loss}"
        );
        retransmits_seen += report.total_retransmits();
    }
    // At least one of the lossy runs must have needed the retransmit
    // machinery (a lucky seed can slip a whole round through 10% loss, but
    // not both rates).
    assert!(
        retransmits_seen > 0,
        "rounds under loss never exercised the retransmit path"
    );
}

#[test]
fn a_coordinator_crash_mid_round_fails_over_and_still_converges() {
    // See `Scenario::coordinator_crash_mid_round`: the coordinator (also the
    // preferred relay) dies 7 ms in with the first round in flight (asserted
    // below via node 0's local deployment count). The control-channel
    // failure detector suspects it, node 1 takes over as coordinator,
    // re-evaluates the policy over the survivors and drives a fresh epoch to
    // completion: every surviving node converges on a relay that is still
    // alive, and no chat message is lost. (Chat starts after the failover
    // settles; the safety claim is about the protocol converging, not about
    // racing data into a dying relay.)
    let report = Runner::new().run(&Scenario::coordinator_crash_mid_round(200));

    assert_eq!(report.messages_lost, 0, "no chat message is lost");
    assert!(report.control_lost > 0, "the control plane was lossy");
    assert!(
        report.node(NodeId(0)).unwrap().reconfigurations >= 1,
        "the crash really happened mid-round: node 0 had already initiated \
         and deployed locally before dying"
    );
    // Every survivor converged on the failover coordinator's stack, whose
    // relay (node 1) is alive — not the dead node 0.
    for id in [1u32, 2, 3, 4] {
        let node = report.node(NodeId(id)).unwrap();
        assert_eq!(
            node.final_stack, "hybrid-mecho-relay1",
            "survivor {id} must converge on the live relay"
        );
    }
    // The failover coordinator completed a round over the 4 survivors.
    let failover_rounds: Vec<_> = report
        .completed_rounds()
        .into_iter()
        .filter(|round| round.coordinator == NodeId(1))
        .cloned()
        .collect();
    assert!(
        !failover_rounds.is_empty(),
        "node 1 completed a round after taking over"
    );
    let last = failover_rounds.last().unwrap();
    assert_eq!(last.stack, "hybrid-mecho-relay1");
    assert_eq!(last.nodes, 4, "the quorum excludes the crashed coordinator");
    // All 200 messages reached the three surviving receivers.
    assert_eq!(report.total_app_deliveries(), 200 * 3);
}

#[test]
fn a_crashed_member_does_not_wedge_an_in_flight_round() {
    // A mobile *member* (not the coordinator) crashes while the round is in
    // flight: the failure detector removes it from the ack quorum and the
    // round completes over the survivors.
    let mut scenario = Scenario::new("member-crash-mid-round", 1, 4)
        .with_control_loss(0.2)
        .with_seed(11)
        .with_failure(4, NodeId(4));
    scenario.publish_interval_ms = 500;
    scenario.hb_interval_ms = 300;
    scenario.suspect_timeout_ms = 1200;
    scenario.retransmit_interval_ms = 300;
    scenario.round_timeout_ms = 2500;
    scenario.workload = Workload::paper_chat(vec![NodeId(1)], 150);
    scenario.workload.warmup_ms = 8000;
    scenario.cooldown_ms = 4000;

    let report = Runner::new().run(&scenario);

    assert_eq!(report.messages_lost, 0);
    let rounds = report.completed_rounds();
    assert!(!rounds.is_empty(), "the round completed despite the crash");
    assert_eq!(
        rounds.last().unwrap().nodes,
        4,
        "the quorum shrank to the survivors"
    );
    for id in [0u32, 1, 2, 3] {
        let node = report.node(NodeId(id)).unwrap();
        assert!(
            node.final_stack.starts_with("hybrid-mecho"),
            "survivor {id} converged (got {})",
            node.final_stack
        );
    }
    assert_eq!(report.total_app_deliveries(), 150 * 3);
}
