//! Experiment E3 — safety of the reconfiguration procedure: on loss-free
//! links, every chat message sent before, during and after the adaptation is
//! delivered to every other participant, because the view-synchrony layer
//! buffers application sends while the data channel is quiescent and the
//! shared session carries that buffer into the new stack.

use morpheus::prelude::*;

fn adaptive_scenario(devices: usize, messages: u64) -> Scenario {
    let mut scenario = Scenario::figure3(devices, true, messages).with_seed(99);
    // Publish context slowly enough that several chat messages are in flight
    // when the reconfiguration happens.
    scenario.publish_interval_ms = 1500;
    scenario.workload.warmup_ms = 500;
    scenario.cooldown_ms = 4000;
    scenario
}

#[test]
fn no_chat_message_is_lost_across_the_adaptation() {
    let devices = 5;
    let messages = 200;
    let report = Runner::new().run(&adaptive_scenario(devices, messages));

    assert!(
        report.total_reconfigurations() >= devices as u64,
        "all nodes redeployed"
    );
    assert_eq!(report.messages_lost, 0, "loss-free links lose nothing");
    // Every message reaches every other participant exactly once.
    let expected = messages * (devices as u64 - 1);
    assert_eq!(report.total_app_deliveries(), expected);
    assert_eq!(report.total_errors(), 0);
}

#[test]
fn the_baseline_without_adaptation_delivers_the_same_volume() {
    let devices = 5;
    let messages = 200;
    let mut scenario = adaptive_scenario(devices, messages);
    scenario.adaptive = false;
    let report = Runner::new().run(&scenario);
    assert_eq!(report.total_reconfigurations(), 0);
    assert_eq!(
        report.total_app_deliveries(),
        messages * (devices as u64 - 1)
    );
}

#[test]
fn reconfiguration_also_works_when_traffic_is_already_flowing() {
    // A short warm-up means chat traffic starts on the best-effort stack and
    // the switch to Mecho happens mid-conversation.
    let mut scenario = adaptive_scenario(4, 300);
    scenario.workload.warmup_ms = 0;
    let report = Runner::new().run(&scenario);
    assert!(report.total_reconfigurations() >= 4);
    assert_eq!(report.total_app_deliveries(), 300 * 3);
    let mobile = report.node(NodeId(1)).unwrap();
    assert!(mobile.final_stack.starts_with("hybrid-mecho"));
}

#[test]
fn view_changes_are_announced_to_every_application() {
    let report = Runner::new().run(&adaptive_scenario(4, 50));
    for node in &report.nodes {
        assert!(
            node.view_changes >= 1,
            "node {} saw no view change announcement",
            node.node
        );
    }
}
