//! Large-scale dissemination (experiment E6): the paper's motivation notes
//! that for participants "in large numbers and distributed geographically
//! over a large-scale network, it can be preferable to rely on epidemic
//! protocols to implement the multicast".
//!
//! The example compares the per-sender transmission count and the delivery
//! coverage of plain best-effort multicast against gossip, on WAN topologies
//! of increasing size.
//!
//! Run with `cargo run --release --example gossip_scale`.

use morpheus::prelude::*;

fn run(devices: usize, stack: StackKind, messages: u64) -> RunReport {
    let mut scenario = Scenario::new(format!("{}n-{}", devices, stack.name()), devices, 0)
        .with_topology(TopologyChoice::Wan)
        .with_initial_stack(stack)
        .with_seed(devices as u64)
        .non_adaptive();
    scenario.workload = Workload::paper_chat(vec![NodeId(0)], messages);
    scenario.workload.warmup_ms = 1000;
    scenario.workload.interval_ms = 200;
    scenario.cooldown_ms = 5000;
    scenario.hb_interval_ms = 5000;
    scenario.suspect_timeout_ms = 60_000;
    Runner::new().run(&scenario)
}

fn main() {
    let messages = 100;
    println!("Epidemic multicast at scale (WAN, {messages} messages from node 0)");
    println!(
        "{:>8}  {:>26}  {:>26}",
        "nodes", "best-effort (pt2pt)", "gossip (fanout 3, ttl 4)"
    );
    println!(
        "{:>8}  {:>13} {:>12}  {:>13} {:>12}",
        "", "sender-msgs", "coverage", "sender-msgs", "coverage"
    );

    for devices in [8, 16, 32, 64] {
        let beb = run(devices, StackKind::BestEffort, messages);
        let gossip = run(devices, StackKind::Gossip { fanout: 3, ttl: 4 }, messages);
        let expected = messages * (devices as u64 - 1);

        let coverage = |report: &RunReport| {
            format!(
                "{:>11.1}%",
                100.0 * report.total_app_deliveries() as f64 / expected as f64
            )
        };
        println!(
            "{devices:>8}  {:>13} {}  {:>13} {}",
            beb.node(NodeId(0)).unwrap().sent_data,
            coverage(&beb),
            gossip.node(NodeId(0)).unwrap().sent_data,
            coverage(&gossip),
        );
    }

    println!();
    println!("Expected shape: the point-to-point sender's transmissions grow linearly with the");
    println!("group size, while the gossip sender's stay constant at the fan-out; gossip trades");
    println!("that for redundant forwarding spread across the whole group and probabilistic");
    println!("(high but not perfect) coverage.");
}
