//! A hybrid chat session with run-time adaptation, reported in detail:
//! which stacks each node traverses, how the load is distributed between the
//! mobile devices and the fixed relay, and how long the distributed
//! reconfiguration took (paper Section 3.3 / our experiment E3).
//!
//! Run with `cargo run --release --example adaptive_chat`.

use morpheus::prelude::*;

fn run(devices: usize, adaptive: bool, messages: u64) -> RunReport {
    let workload = ChatWorkload {
        seed: 7,
        ..ChatWorkload::paper(devices, adaptive)
    };
    Runner::new().run(&workload.scaled(messages).to_scenario())
}

fn main() {
    let devices = 6;
    let messages = 1_000;

    println!(
        "== adaptive run ({devices} devices: 1 fixed PC + {} PDAs) ==",
        devices - 1
    );
    let adaptive = run(devices, true, messages);
    println!("{}", adaptive.to_table());
    for notice in adaptive.reconfiguration_notices() {
        println!("coordinator: {notice}");
    }

    println!("\n== non-adaptive baseline ==");
    let baseline = run(devices, false, messages);
    println!("{}", baseline.to_table());

    let adaptive_mobile = adaptive.node(NodeId(1)).unwrap();
    let baseline_mobile = baseline.node(NodeId(1)).unwrap();
    let adaptive_fixed = adaptive.node(NodeId(0)).unwrap();

    println!("\nsummary");
    println!(
        "  mobile node n1 transmissions: {} (adaptive) vs {} (baseline)  — {:.1}x reduction",
        adaptive_mobile.sent_total(),
        baseline_mobile.sent_total(),
        baseline_mobile.sent_total() as f64 / adaptive_mobile.sent_total().max(1) as f64
    );
    println!(
        "  fixed relay n0 transmissions: {} (adaptive) — it absorbs the fan-out (paper footnote 1)",
        adaptive_fixed.sent_total()
    );
    println!(
        "  chat messages delivered: {} (adaptive) vs {} (baseline); reconfigurations applied: {}",
        adaptive.total_app_deliveries(),
        baseline.total_app_deliveries(),
        adaptive.total_reconfigurations()
    );
}
