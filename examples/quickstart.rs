//! Quickstart: compose a protocol stack, exchange a message between two
//! in-process nodes, then run a tiny adaptive scenario on the simulated
//! testbed.
//!
//! Run with `cargo run --release --example quickstart`.

use morpheus::appia::events::DataEvent;
use morpheus::appia::platform::{InPacket, TestPlatform};
use morpheus::prelude::*;

fn main() {
    // ---------------------------------------------------------------------
    // 1. Compose a stack declaratively and exchange one message between two
    //    kernels connected "by hand" (no simulator involved).
    // ---------------------------------------------------------------------
    let members: Vec<NodeId> = vec![NodeId(1), NodeId(2)];
    let config = StackBuilder::new("data", members).beb(false).fifo().build();
    println!("stack description:\n{}", config.to_xml());

    let mut alice_kernel = Kernel::new();
    let mut bob_kernel = Kernel::new();
    register_suite(&mut alice_kernel);
    register_suite(&mut bob_kernel);

    let mut alice_platform = TestPlatform::new(NodeId(1));
    let mut bob_platform = TestPlatform::new(NodeId(2));
    let alice_channel = alice_kernel
        .create_channel(&config, &mut alice_platform)
        .unwrap();
    bob_kernel
        .create_channel(&config, &mut bob_platform)
        .unwrap();

    // Alice sends one chat message to the group.
    let mut alice = ChatApp::new(NodeId(1), "alice", "icdcs");
    let payload = alice.compose("hello from the fixed network!");
    alice_kernel.dispatch_and_process(
        alice_channel,
        Event::down(DataEvent::to_group(
            NodeId(1),
            Message::with_payload(payload),
        )),
        &mut alice_platform,
    );

    // Deliver the resulting packets to Bob's kernel.
    let mut bob = ChatApp::new(NodeId(2), "bob", "icdcs");
    for packet in alice_platform.take_sent() {
        bob_kernel
            .deliver_packet(
                InPacket {
                    from: NodeId(1),
                    to: NodeId(2),
                    class: packet.class,
                    channel: packet.channel.clone(),
                    payload: packet.payload.clone(),
                },
                &mut bob_platform,
            )
            .unwrap();
    }
    for delivery in bob_platform.take_deliveries() {
        if let Some(message) = bob.on_delivery(&delivery) {
            println!("bob received from {}: {:?}", message.sender, message.text);
        }
    }

    // ---------------------------------------------------------------------
    // 2. Run a small adaptive scenario end to end on the simulated testbed:
    //    one fixed PC, three PDAs, the first PDA chatting at 10 msg/s.
    // ---------------------------------------------------------------------
    let scenario = Scenario::figure3(4, true, 200);
    let report = Runner::new().run(&scenario);
    println!("\n{}", report.to_table());
    for notice in report.reconfiguration_notices() {
        println!("coordinator: {notice}");
    }
    let mobile = report.node(NodeId(1)).unwrap();
    println!(
        "\nmobile node n1 transmitted {} messages total ({} data) and ended on stack `{}`",
        mobile.sent_total(),
        mobile.sent_data,
        mobile.final_stack
    );
}
