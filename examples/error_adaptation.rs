//! Error-rate adaptation (experiment E5): "for small error rates it is
//! preferable to detect and recover (using retransmissions) while for larger
//! error rates it is preferable to mask the errors (using forward error
//! recovery techniques)" — paper, Section 2.
//!
//! The example runs an all-mobile ad-hoc cell under increasing wireless loss
//! with three fixed stacks (best-effort, NACK-based reliable, XOR FEC) and
//! reports delivery ratio and sender overhead for each, showing where the
//! strategies cross over.
//!
//! Run with `cargo run --release --example error_adaptation`.

use morpheus::prelude::*;

fn run(stack: StackKind, loss: f64, messages: u64) -> RunReport {
    let mut scenario = Scenario::new(format!("loss{loss}-{}", stack.name()), 0, 4)
        .with_topology(TopologyChoice::AdHoc)
        .with_wireless_loss(loss)
        .with_initial_stack(stack)
        .with_seed((loss * 1000.0) as u64 + 13)
        .non_adaptive();
    scenario.workload = Workload::paper_chat(vec![NodeId(0)], messages);
    scenario.workload.warmup_ms = 1000;
    scenario.cooldown_ms = 3000;
    Runner::new().run(&scenario)
}

fn main() {
    let messages = 500;
    let expected = messages * 3; // three receivers in a four-node group
    println!("Error-rate adaptation: delivery ratio and sender transmissions per strategy");
    println!(
        "{:>8}  {:>24}  {:>24}  {:>24}",
        "loss", "best-effort", "reliable (NACK)", "fec (k=4)"
    );
    println!(
        "{:>8}  {:>11} {:>12}  {:>11} {:>12}  {:>11} {:>12}",
        "", "delivered", "sender-msgs", "delivered", "sender-msgs", "delivered", "sender-msgs"
    );

    for loss in [0.001, 0.01, 0.05, 0.10, 0.20] {
        let best_effort = run(StackKind::BestEffort, loss, messages);
        let reliable = run(StackKind::Reliable, loss, messages);
        let fec = run(StackKind::ErrorMasking { k: 4 }, loss, messages);

        let ratio = |report: &RunReport| {
            format!(
                "{:>10.1}%",
                100.0 * report.total_app_deliveries() as f64 / expected as f64
            )
        };
        let sender = |report: &RunReport| report.node(NodeId(0)).unwrap().sent_total();

        println!(
            "{:>7.1}%  {} {:>12}  {} {:>12}  {} {:>12}",
            loss * 100.0,
            ratio(&best_effort),
            sender(&best_effort),
            ratio(&reliable),
            sender(&reliable),
            ratio(&fec),
            sender(&fec),
        );
    }

    println!();
    println!("Expected shape: best-effort delivery degrades linearly with the loss rate;");
    println!("retransmission keeps delivery high with overhead that grows with loss (extra");
    println!("NACKs and retransmissions); FEC pays a constant proactive overhead (~1/k extra");
    println!("messages) that becomes the better trade-off at high error rates — the trade-off");
    println!("the paper uses to motivate run-time adaptation.");
}
