//! Reproduces the paper's **Figure 3**: number of messages sent by the mobile
//! node as a function of the number of devices, with ("optimized") and
//! without ("not optimized") the Mecho adaptation.
//!
//! The paper runs 40,000 messages per configuration; pass a smaller count as
//! the first argument for a quick run, e.g.
//! `cargo run --release --example figure3 -- 2000`.

use morpheus::prelude::*;

fn main() {
    let messages: u64 = std::env::args()
        .nth(1)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(4_000);

    println!("Figure 3 — messages sent by the mobile node (workload: {messages} chat messages)");
    println!(
        "{:>8}  {:>16}  {:>16}  {:>8}",
        "devices", "not optimized", "optimized", "ratio"
    );

    for devices in 2..=9usize {
        let baseline = Runner::new()
            .run(&Scenario::figure3(devices, false, messages).with_seed(devices as u64));
        let optimized = Runner::new()
            .run(&Scenario::figure3(devices, true, messages).with_seed(devices as u64));

        let baseline_sent = baseline.measured_mobile_sent();
        let optimized_sent = optimized.measured_mobile_sent();
        let ratio = baseline_sent as f64 / optimized_sent.max(1) as f64;
        println!("{devices:>8}  {baseline_sent:>16}  {optimized_sent:>16}  {ratio:>8.2}");
    }

    println!();
    println!("Expected shape (paper): with 2 devices both series are approximately equal;");
    println!("as the group grows the non-optimized mobile node's transmissions grow linearly");
    println!("with the group size while the optimized (Mecho) series stays approximately flat,");
    println!("paying only a small control overhead. The fixed relay absorbs the fan-out instead.");
}
