//! Fixture: truncating cast on a decoded length field. Expect exactly
//! `decode:cast`.

fn decode_length(wire_len: u64) -> u16 {
    wire_len as u16
}
