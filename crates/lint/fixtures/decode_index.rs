//! Fixture: direct slice indexing on a decode path. Expect exactly
//! `decode:index`.

fn decode_tag(buf: &[u8]) -> u8 {
    buf[0]
}
