//! Fixture: a waiver naming a rule the pass does not know. Expect exactly
//! `waiver:unknown-rule`.

fn quiet() -> u64 {
    // lint:allow(bogus:rule) -- fixture: no such rule family
    7
}
