//! Fixture: wall-clock use in protocol code. Expect exactly `det:time`.

fn stamp() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_millis() as u64
}
