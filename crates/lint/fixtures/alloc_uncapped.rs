//! Fixture: pre-allocation from a decoded count with no cap guard against
//! the bytes actually present. Expect exactly `alloc:cap`.

fn decode_list(reader: &mut WireReader<'_>) -> Result<Vec<u64>, WireError> {
    let count = reader.get_u32()? as usize;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        items.push(reader.get_u64()?);
    }
    Ok(items)
}
