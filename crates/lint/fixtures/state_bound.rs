//! Fixture: a `Session` type whose collection fields carry `// bound:`
//! annotations. Expect no findings.

struct BoundedFixtureSession {
    // bound: capped at `retention`; oldest entry evicted on overflow.
    backlog: Vec<Event>,
    /// Peers of the current view.
    ///
    /// bound: replaced wholesale on every view install.
    peers: Vec<u32>,
    delivered: u64,
}

impl Session for BoundedFixtureSession {
    fn layer_name(&self) -> &str {
        "fixture"
    }
}
