//! Fixture: panicking unwrap on a decode path. Expect exactly
//! `decode:panic`.

fn decode_header(buf: &[u8]) -> (u8, u8) {
    let first = buf.first().copied().unwrap();
    (first, first)
}
