//! Fixture: round-engine-style participant bookkeeping kept in a `HashSet`
//! — iterating it to pick retransmission targets makes the send order (and
//! the per-tick retransmit budget's *victims*) depend on hash order, so two
//! nodes replaying one schedule diverge. Expect exactly `det:map-iter`.

struct RoundFixture {
    participants: HashSet<u32>,
    acked: HashSet<u32>,
    resent: Vec<u32>,
}

impl RoundFixture {
    fn retransmit_missing(&mut self) {
        for participant in &self.participants {
            if !self.acked.contains(participant) {
                self.resent.push(*participant);
            }
        }
    }
}
