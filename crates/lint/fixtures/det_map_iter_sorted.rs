//! Fixture: hash iteration whose collected result is immediately sorted —
//! order restored, so the pass must stay quiet. Expect no findings.

struct SortedTableFixture {
    peers: HashMap<u32, u64>,
}

impl SortedTableFixture {
    fn snapshot(&self) -> Vec<(u32, u64)> {
        let mut entries: Vec<(u32, u64)> = self.peers.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        entries
    }
}
