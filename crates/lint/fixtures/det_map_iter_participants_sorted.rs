//! Fixture: the idiom `groupcomm::round` actually uses — participant and
//! ack sets in `BTreeSet`, so the missing-participant sweep walks ids in
//! ascending order on every node. Expect no findings.

struct SortedRoundFixture {
    participants: BTreeSet<u32>,
    acked: BTreeSet<u32>,
    resent: Vec<u32>,
}

impl SortedRoundFixture {
    fn retransmit_missing(&mut self) {
        for participant in &self.participants {
            if !self.acked.contains(participant) {
                self.resent.push(*participant);
            }
        }
    }
}
