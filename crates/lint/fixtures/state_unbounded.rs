//! Fixture: a `Session` type with an unannotated collection field. Expect
//! exactly `state:bound`.

struct UnboundedFixtureSession {
    backlog: Vec<Event>,
    delivered: u64,
}

impl Session for UnboundedFixtureSession {
    fn layer_name(&self) -> &str {
        "fixture"
    }
}
