//! Fixture: pre-allocation from a decoded count, capped against the bytes
//! actually remaining — the workspace's hardening pattern. Expect no
//! findings.

fn decode_list(reader: &mut WireReader<'_>) -> Result<Vec<u64>, WireError> {
    let count = reader.get_u32()? as usize;
    let mut items = Vec::with_capacity(count.min(reader.remaining() / 8));
    for _ in 0..count {
        items.push(reader.get_u64()?);
    }
    Ok(items)
}
