//! Fixture: overlay-style fan-out target selection driven by hash-map
//! iteration — the send order (and with a bounded fan-out, the *chosen
//! targets*) depend on hash order. Expect exactly `det:map-iter`.

struct FanoutFixture {
    links: HashMap<u32, bool>,
    sent: Vec<u32>,
}

impl FanoutFixture {
    fn push_to_eager(&mut self, budget: usize) {
        for (peer, eager) in &self.links {
            if *eager && self.sent.len() < budget {
                self.sent.push(*peer);
            }
        }
    }
}
