//! Fixture: subprocess use in protocol code. Expect exactly `det:process`.

fn shell_out() {
    let _child = std::process::Command::new("true").spawn();
}
