//! Fixture: overlay-style relay selection over ordered link sets — eager
//! and lazy links in `BTreeSet`s, a digest pool collected and sorted before
//! the rng picks an index. Order is deterministic end to end. Expect no
//! findings.

struct LinkSetsFixture {
    eager: BTreeSet<u32>,
    lazy: BTreeSet<u32>,
}

impl LinkSetsFixture {
    fn relay_targets(&self, skip: u32) -> Vec<u32> {
        self.eager
            .iter()
            .chain(self.lazy.iter())
            .copied()
            .filter(|peer| *peer != skip)
            .collect()
    }

    fn digest_pool(&self, extras: &HashMap<u32, u64>) -> Vec<u32> {
        let mut pool: Vec<u32> = extras.keys().copied().collect();
        pool.sort_unstable();
        pool.extend(self.relay_targets(0));
        pool
    }
}
