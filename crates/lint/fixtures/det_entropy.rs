//! Fixture: OS entropy in protocol code. Expect exactly `det:entropy`.

fn roll() -> u32 {
    rand::random()
}
