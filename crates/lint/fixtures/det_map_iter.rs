//! Fixture: hash-order iteration with observable effects. Expect exactly
//! `det:map-iter`.

struct PeerTableFixture {
    peers: HashMap<u32, u64>,
    emitted: u64,
}

impl PeerTableFixture {
    fn emit_all(&mut self) {
        for (peer, seq) in &self.peers {
            self.emitted += peer + seq;
        }
    }
}
