//! Fixture: a waiver without the mandatory `-- justification` tail. Expect
//! exactly `waiver:syntax`.

fn quiet() -> u64 {
    // lint:allow(det:time)
    7
}
