//! Fixture: OS thread spawn in protocol code. Expect exactly `det:thread`.

fn run_detached() {
    std::thread::spawn(|| loop {});
}
