//! Fixture: a well-formed waiver that suppresses nothing. Expect exactly
//! `waiver:unused`.

fn quiet() -> u64 {
    // lint:allow(det:time) -- fixture: nothing on the next line trips this
    7
}
