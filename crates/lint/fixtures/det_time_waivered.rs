//! Fixture: a wall-clock use carrying a justified waiver. Expect no
//! findings (the waiver is consumed, so it is not stale either).

fn stamp() -> u64 {
    // lint:allow(det:time) -- fixture: exercising the waiver path
    let started = std::time::Instant::now();
    started.elapsed().as_millis() as u64
}
