//! `morpheus-lint` CLI.
//!
//! ```text
//! morpheus-lint --workspace [--root DIR] [--json]
//! morpheus-lint [--crate NAME] [--json] FILE...
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use morpheus_lint::{run, to_json, workspace_files, SourceFile};

fn main() -> ExitCode {
    let mut json = false;
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut crate_override: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--crate" => match args.next() {
                Some(name) => crate_override = Some(name),
                None => return usage("--crate needs a crate name"),
            },
            "--help" | "-h" => {
                eprintln!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let sources: Vec<SourceFile> = if workspace {
        if !files.is_empty() {
            return usage("--workspace and explicit files are mutually exclusive");
        }
        match workspace_files(&root) {
            Ok(sources) => sources,
            Err(err) => {
                eprintln!("morpheus-lint: cannot walk {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        return usage("nothing to lint: pass --workspace or file paths");
    } else {
        files
            .into_iter()
            .map(|path| SourceFile::with_inferred_crate(path, crate_override.as_deref()))
            .collect()
    };

    let diagnostics = match run(&sources) {
        Ok(diagnostics) => diagnostics,
        Err(err) => {
            eprintln!("morpheus-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", to_json(&diagnostics));
    } else {
        for diagnostic in &diagnostics {
            println!("{diagnostic}");
        }
    }
    if diagnostics.is_empty() {
        eprintln!("morpheus-lint: clean ({} files)", sources.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "morpheus-lint: {} finding(s) in {} file(s)",
            diagnostics.len(),
            sources.len()
        );
        ExitCode::from(1)
    }
}

const USAGE: &str = "usage:
  morpheus-lint --workspace [--root DIR] [--json]
  morpheus-lint [--crate NAME] [--json] FILE...";

fn usage(message: &str) -> ExitCode {
    eprintln!("morpheus-lint: {message}\n{USAGE}");
    ExitCode::from(2)
}
