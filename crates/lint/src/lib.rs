//! `morpheus-lint` — the workspace's machine-checked invariants.
//!
//! The whole seed-deterministic test/replay story rests on conventions that
//! used to live in reviewers' heads: protocol code reads no wall clock and
//! no OS entropy, decode paths never panic, pre-allocation from decoded
//! counts is capped, and every long-lived session collection has a bound.
//! This crate turns those conventions into a dependency-free static
//! analysis (no `syn` — CI and dev containers are offline): a hand-rolled,
//! comment- and string-aware token scanner over the workspace sources.
//!
//! Rule families (ids usable in waiver comments):
//!
//! | family   | rules                                              |
//! |----------|----------------------------------------------------|
//! | `det`    | `det:time`, `det:thread`, `det:process`, `det:entropy`, `det:map-iter` |
//! | `decode` | `decode:panic`, `decode:index`, `decode:cast`      |
//! | `alloc`  | `alloc:cap`                                        |
//! | `state`  | `state:bound`                                      |
//!
//! Suppression is only possible through an explicit in-source waiver
//! comment carrying a justification (see [`diag::Waiver`]); stale or
//! malformed waivers are themselves diagnostics, so every exception stays
//! visible and greppable.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::Diagnostic;

/// One source file queued for scanning, with the (directory-style) crate
/// name that decides rule scope.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: PathBuf,
    pub crate_name: String,
}

impl SourceFile {
    /// Derives the crate name from a workspace-relative path
    /// (`crates/<name>/src/...` → `<name>`, root `src/` → `morpheus`),
    /// falling back to `override_name` when given.
    pub fn with_inferred_crate(path: PathBuf, override_name: Option<&str>) -> Self {
        let crate_name = override_name.map(str::to_string).unwrap_or_else(|| {
            let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
            let mut previous_was_crates = false;
            for component in components.by_ref() {
                if previous_was_crates {
                    return component.into_owned();
                }
                previous_was_crates = component == "crates";
            }
            "morpheus".to_string()
        });
        Self { path, crate_name }
    }
}

/// Collects every workspace source file the pass covers: `src/` plus each
/// `crates/*/src`, in sorted order so output and exit codes are stable.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let src = crate_dir.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files
        .into_iter()
        .map(|path| {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let mut file = SourceFile::with_inferred_crate(rel, None);
            file.path = path;
            file
        })
        .collect())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over the given files and returns the surviving
/// diagnostics, sorted by file, line and rule.
pub fn run(files: &[SourceFile]) -> io::Result<Vec<Diagnostic>> {
    // Lex everything first: the bounded-session-state rule needs the set of
    // `Session`-implementing types per crate before any file is checked.
    let mut lexed_files = Vec::with_capacity(files.len());
    let mut session_types: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        let source = std::fs::read_to_string(&file.path)?;
        let lexed = lexer::lex(&source);
        session_types
            .entry(file.crate_name.as_str())
            .or_default()
            .extend(rules::session_impl_types(&lexed));
        lexed_files.push((file, lexed));
    }

    let empty = BTreeSet::new();
    let mut all = Vec::new();
    for (file, lexed) in &lexed_files {
        let ctx = rules::FileCtx::new(&file.path, &file.crate_name, lexed);
        let mut diagnostics = Vec::new();
        rules::check_determinism(&ctx, &mut diagnostics);
        rules::check_decode(&ctx, &mut diagnostics);
        rules::check_prealloc(&ctx, &mut diagnostics);
        let types = session_types
            .get(file.crate_name.as_str())
            .unwrap_or(&empty);
        rules::check_session_bounds(&ctx, types, &mut diagnostics);

        let mut waiver_diags = Vec::new();
        let mut waivers = diag::parse_waivers(&lexed.comments, &file.path, &mut waiver_diags);
        let mut kept = diag::apply_waivers(&mut waivers, diagnostics, &file.path);
        kept.append(&mut waiver_diags);
        all.append(&mut kept);
    }
    all.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(all)
}

/// Renders diagnostics as a JSON array (hand-rolled — no serde here).
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&d.file.display().to_string()),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
