//! A hand-rolled Rust token scanner.
//!
//! The lint runs in offline CI containers, so it cannot depend on `syn` or
//! any other parser crate. Instead this module lexes Rust source into a flat
//! token stream that is *comment- and string-literal aware*: banned names
//! inside string literals or comments never produce tokens, line comments
//! are captured separately (they carry waivers and `bound:` annotations),
//! and a post-pass marks every token that lives under a `#[cfg(test)]` /
//! `#[test]` item so rules can skip test-only code.
//!
//! The scanner does not build an AST. Every rule works on token patterns
//! plus brace/paren depth, which is enough for the invariants checked here
//! and keeps the scanner a few hundred lines of `std`-only code.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token payload. Literals keep no text: rules never need to look inside a
/// string or number beyond knowing "a literal sat here".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    /// A lifetime such as `'a` (kept distinct so it cannot be mistaken for
    /// an identifier in pattern matches).
    Lifetime(String),
    Punct(char),
    /// Integer or float literal.
    Num,
    /// String, byte-string, raw-string or char literal.
    Lit,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A `//` line comment (includes `///` and `//!` doc comments).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text after the leading slashes, untrimmed.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Parallel to `tokens`: `true` when the token sits inside an item
    /// gated by `#[cfg(test)]` (without `not(..)`) or `#[test]`.
    pub in_test: Vec<bool>,
}

/// Lexes `source` into tokens plus captured line comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                let mut text = &source[start..end];
                // `///` and `//!` doc comments: drop the extra marker so
                // waiver/annotation matching sees the same text either way.
                text = text
                    .strip_prefix('/')
                    .or_else(|| text.strip_prefix('!'))
                    .unwrap_or(text);
                comments.push(Comment {
                    line,
                    text: text.to_string(),
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let consumed = skip_cooked_string(&bytes[i..], &mut line);
                tokens.push(Token {
                    kind: TokenKind::Lit,
                    line,
                });
                i += consumed;
            }
            '\'' => {
                // Lifetime vs char literal: `'a` followed by anything but a
                // closing quote is a lifetime; `'a'`, `'\n'`, `'\u{1F}'`
                // are char literals.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                    && after != Some(b'\'');
                if is_lifetime {
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime(source[start..end].to_string()),
                        line,
                    });
                    i = end;
                } else {
                    // Char literal: skip to the closing quote, honouring a
                    // single backslash escape.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'\\') {
                        j += 2; // step over the escaped character
                    }
                    // Scan to the closing quote: covers plain chars,
                    // multi-byte UTF-8 and `\u{...}` escapes alike.
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lit,
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                }
            }
            c if c.is_ascii_digit() => {
                let mut end = i + 1;
                while end < bytes.len() {
                    let b = bytes[end];
                    if is_ident_continue(b) {
                        end += 1;
                    } else if b == b'.'
                        && bytes.get(end + 1) != Some(&b'.')
                        && bytes
                            .get(end + 1)
                            .is_some_and(|n| (*n as char).is_ascii_digit())
                    {
                        // Float like `3.5`, but not the range `0..n`.
                        end += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Num,
                    line,
                });
                i = end;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i + 1;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                let word = &source[start..end];
                // String-literal prefixes: r"", b"", br#""#, c"" etc.
                let is_str_prefix = matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr")
                    && matches!(bytes.get(end), Some(b'"') | Some(b'#'));
                if is_str_prefix && word.contains('r') {
                    if let Some(consumed) = skip_raw_string(&bytes[end..], &mut line) {
                        tokens.push(Token {
                            kind: TokenKind::Lit,
                            line,
                        });
                        i = end + consumed;
                        continue;
                    }
                }
                if is_str_prefix && bytes.get(end) == Some(&b'"') {
                    let consumed = skip_cooked_string(&bytes[end..], &mut line);
                    tokens.push(Token {
                        kind: TokenKind::Lit,
                        line,
                    });
                    i = end + consumed;
                    continue;
                }
                // Raw identifier `r#ident`.
                if word == "r" && bytes.get(end) == Some(&b'#') {
                    let rstart = end + 1;
                    let mut rend = rstart;
                    while rend < bytes.len() && is_ident_continue(bytes[rend]) {
                        rend += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(source[rstart..rend].to_string()),
                        line,
                    });
                    i = rend;
                    continue;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(word.to_string()),
                    line,
                });
                i = end;
            }
            other => {
                tokens.push(Token {
                    kind: TokenKind::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }

    let in_test = mark_test_spans(&tokens);
    Lexed {
        tokens,
        comments,
        in_test,
    }
}

fn is_ident_continue(b: u8) -> bool {
    (b as char).is_alphanumeric() || b == b'_'
}

/// Skips a `"..."` string starting at `bytes[0] == '"'`; returns consumed
/// byte count and advances the line counter across embedded newlines.
fn skip_cooked_string(bytes: &[u8], line: &mut u32) -> usize {
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Skips a raw string starting at `#`* `"` ... `"` `#`*; `bytes[0]` is the
/// first `#` or the opening quote. Returns `None` when this is not actually
/// a raw string opener.
fn skip_raw_string(bytes: &[u8], line: &mut u32) -> Option<usize> {
    let mut hashes = 0;
    while bytes.get(hashes) == Some(&b'#') {
        hashes += 1;
    }
    if bytes.get(hashes) != Some(&b'"') {
        return None;
    }
    let mut i = hashes + 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).all(|b| *b == b'#') {
            return Some(i + 1 + hashes);
        } else {
            i += 1;
        }
    }
    Some(bytes.len())
}

/// Marks every token under a `#[cfg(test)]` / `#[test]` item as test-only.
///
/// The pass looks for attribute groups containing the ident `test` (and not
/// `not`, so `#[cfg(not(test))]` keeps its item live), then skips any
/// further attributes and marks the following item — up to its matching
/// closing brace, or the terminating semicolon for brace-less items.
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens.
        let mut j = i + 2;
        let mut depth = 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            } else if tokens[j].is_ident("test") {
                has_test = true;
            } else if tokens[j].is_ident("not") {
                has_not = true;
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j;
        while k < tokens.len() && tokens[k].is_punct('#') {
            if tokens.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 1;
                k += 2;
                while k < tokens.len() && depth > 0 {
                    if tokens[k].is_punct('[') {
                        depth += 1;
                    } else if tokens[k].is_punct(']') {
                        depth -= 1;
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        // Mark until the item ends: matching `}` of its first brace, or the
        // first `;` at depth zero (e.g. `use` items).
        let mut depth = 0i32;
        let mut end = k;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                end += 1;
                break;
            }
            end += 1;
        }
        for flag in in_test.iter_mut().take(end).skip(i) {
            *flag = true;
        }
        i = end;
    }
    in_test
}
