//! Diagnostics and in-source waivers.

use std::fmt;
use std::path::PathBuf;

use crate::lexer::Comment;

/// Every rule the pass knows, as stable ids used in diagnostics and waiver
/// comments. Waivers may name a full id (`det:map-iter`) or a family
/// prefix (`det`, `decode`) to cover every rule in the family.
pub const RULE_IDS: &[&str] = &[
    "det:time",
    "det:thread",
    "det:process",
    "det:entropy",
    "det:map-iter",
    "decode:panic",
    "decode:index",
    "decode:cast",
    "alloc:cap",
    "state:bound",
    "waiver:syntax",
    "waiver:unknown-rule",
    "waiver:unused",
];

/// One finding, rendered as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A parsed waiver comment.
///
/// Syntax (the comment text must *start* with the marker, so prose that
/// merely mentions the syntax does not waive anything):
///
/// ```text
/// // lint:allow(rule[, rule...]) -- justification
/// ```
///
/// A waiver suppresses matching diagnostics on its own line and on the line
/// directly below it (so it can sit above the flagged statement).
#[derive(Debug)]
pub struct Waiver {
    pub line: u32,
    pub rules: Vec<String>,
    pub used: bool,
}

const MARKER: &str = "lint:allow(";

/// Extracts well-formed waivers from a file's comments; malformed or
/// unknown-rule waivers produce diagnostics instead of suppressions.
pub fn parse_waivers(
    comments: &[Comment],
    file: &std::path::Path,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for comment in comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix(MARKER) else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            diagnostics.push(Diagnostic {
                file: file.to_path_buf(),
                line: comment.line,
                rule: "waiver:syntax",
                message: "unterminated lint:allow(...) waiver".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim_start();
        let justified = tail
            .strip_prefix("--")
            .is_some_and(|j| !j.trim().is_empty());
        if rules.is_empty() || !justified {
            diagnostics.push(Diagnostic {
                file: file.to_path_buf(),
                line: comment.line,
                rule: "waiver:syntax",
                message: "waiver must name its rule and justify itself: lint:allow(rule) -- reason"
                    .to_string(),
            });
            continue;
        }
        let mut ok = true;
        for rule in &rules {
            let known = RULE_IDS
                .iter()
                .any(|id| *id == rule || id.split(':').next() == Some(rule.as_str()));
            if !known {
                diagnostics.push(Diagnostic {
                    file: file.to_path_buf(),
                    line: comment.line,
                    rule: "waiver:unknown-rule",
                    message: format!("waiver names unknown rule `{rule}`"),
                });
                ok = false;
            }
        }
        if ok {
            waivers.push(Waiver {
                line: comment.line,
                rules,
                used: false,
            });
        }
    }
    waivers
}

/// Applies waivers to a file's diagnostics: matching findings are dropped,
/// waivers that suppressed nothing are reported as stale.
pub fn apply_waivers(
    waivers: &mut [Waiver],
    diagnostics: Vec<Diagnostic>,
    file: &std::path::Path,
) -> Vec<Diagnostic> {
    let mut kept = Vec::new();
    for diagnostic in diagnostics {
        let mut suppressed = false;
        for waiver in waivers.iter_mut() {
            let line_matches = diagnostic.line == waiver.line || diagnostic.line == waiver.line + 1;
            let rule_matches = waiver.rules.iter().any(|rule| {
                rule == diagnostic.rule || diagnostic.rule.split(':').next() == Some(rule.as_str())
            });
            if line_matches && rule_matches && !diagnostic.rule.starts_with("waiver:") {
                waiver.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(diagnostic);
        }
    }
    for waiver in waivers.iter().filter(|w| !w.used) {
        kept.push(Diagnostic {
            file: file.to_path_buf(),
            line: waiver.line,
            rule: "waiver:unused",
            message: format!(
                "waiver for {} suppresses nothing — remove it",
                waiver.rules.join(", ")
            ),
        });
    }
    kept
}
