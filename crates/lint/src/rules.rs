//! The four rule families.
//!
//! Every rule works on the lexed token stream of one file (plus, for the
//! bounded-session-state rule, the set of `Session`-implementing type names
//! collected across the whole crate). Rules are heuristic by design — a
//! token scanner cannot do type inference — but they are tuned so that the
//! protocol code in this workspace is checkable without noise, and every
//! deliberate exception must carry a visible `lint:allow` waiver.

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::Diagnostic;
use crate::lexer::{Lexed, Token, TokenKind};

/// Crates (by directory name) holding protocol/simulation code that must
/// replay deterministically from a seed. The determinism family only runs
/// here; the decode/alloc families run everywhere.
pub const PROTOCOL_CRATES: &[&str] = &[
    "appia",
    "groupcomm",
    "cocaditem",
    "core",
    "netsim",
    "testbed",
    "chat",
    "overlay",
];

/// File stems treated as wire/codec modules: the panic-freedom rules cover
/// the *entire* module, not just `decode` function bodies.
const CODEC_STEMS: &[&str] = &["wire", "message", "headers"];

/// Order-insensitive (or order-restoring) continuations that exempt a hash
/// iteration: sorting the collected result, collecting into an ordered
/// container, or reducing commutatively.
const ORDER_EXEMPT: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "product",
    "count",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
];

/// Iteration methods with hash-order-dependent results.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Collection types that count as unbounded session state unless annotated.
const COLLECTIONS: &[&str] = &[
    "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Everything the scanner derives once per file and shares across rules.
pub struct FileCtx<'a> {
    pub file: &'a Path,
    pub crate_name: &'a str,
    pub stem: &'a str,
    pub lexed: &'a Lexed,
    /// Combined `(`/`[`/`{` nesting depth *before* each token.
    depth: Vec<u32>,
    /// Token ranges of function bodies on decode paths (named `decode*` /
    /// `from_bytes*`, touching `WireReader`, or inside a `WireReader` impl).
    decode_bodies: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    pub fn new(file: &'a Path, crate_name: &'a str, lexed: &'a Lexed) -> Self {
        let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let tokens = &lexed.tokens;
        let mut depth = Vec::with_capacity(tokens.len());
        let mut d = 0u32;
        for token in tokens {
            depth.push(d);
            match token.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => d += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    d = d.saturating_sub(1);
                }
                _ => {}
            }
        }
        let decode_bodies = find_decode_bodies(tokens);
        Self {
            file,
            crate_name,
            stem,
            lexed,
            depth,
            decode_bodies,
        }
    }

    fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    fn in_test(&self, idx: usize) -> bool {
        self.lexed.in_test.get(idx).copied().unwrap_or(false)
    }

    fn is_codec_file(&self) -> bool {
        CODEC_STEMS.contains(&self.stem)
    }

    fn in_decode_scope(&self, idx: usize) -> bool {
        self.decode_bodies
            .iter()
            .any(|(start, end)| idx >= *start && idx < *end)
    }

    /// Panic-freedom scope: the whole file for codec modules, otherwise
    /// only decode-path function bodies.
    fn in_panic_scope(&self, idx: usize) -> bool {
        self.is_codec_file() || self.in_decode_scope(idx)
    }

    fn diag(&self, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.file.to_path_buf(),
            line,
            rule,
            message,
        }
    }
}

/// Locates every function body the decode rules must cover.
fn find_decode_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();

    // `impl ... WireReader ... { ... }` blocks: every fn inside parses
    // untrusted bytes (the reader primitives themselves).
    let mut reader_impls: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            let mut j = i + 1;
            let mut mentions_reader = false;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("WireReader") {
                    mentions_reader = true;
                }
                j += 1;
            }
            if mentions_reader && j < tokens.len() && tokens[j].is_punct('{') {
                let end = matching_brace(tokens, j);
                reader_impls.push((j, end));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }

    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1; // `fn(...)` pointer type
            continue;
        };
        // Signature runs to the body brace or a trait declaration's `;`.
        let mut j = i + 2;
        let mut paren_depth = 0i32;
        let mut sig_has_reader = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') {
                paren_depth += 1;
            } else if t.is_punct(')') {
                paren_depth -= 1;
            } else if t.is_ident("WireReader") {
                sig_has_reader = true;
            } else if paren_depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            i = j;
            continue;
        }
        let body_start = j;
        let body_end = matching_brace(tokens, body_start);
        let named_decoder = name.starts_with("decode")
            || name.starts_with("from_bytes")
            || name.ends_with("_from_bytes");
        let body_has_reader = tokens[body_start..body_end]
            .iter()
            .any(|t| t.is_ident("WireReader"));
        let in_reader_impl = reader_impls
            .iter()
            .any(|(start, end)| body_start > *start && body_end <= *end);
        if named_decoder || sig_has_reader || body_has_reader || in_reader_impl {
            bodies.push((body_start, body_end));
        }
        i = body_start + 1;
    }
    bodies
}

/// Index one past the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (offset, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct('{') {
            depth += 1;
        } else if token.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return offset + 1;
            }
        }
    }
    tokens.len()
}

// ---------------------------------------------------------------------------
// Rule family 1: determinism
// ---------------------------------------------------------------------------

/// Wall clocks, OS threads/processes, OS entropy, and hash-order iteration
/// in protocol/simulation crates: all of them make a `(seed, schedule)`
/// replay lie.
pub fn check_determinism(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !PROTOCOL_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let tokens = ctx.tokens();
    for (i, token) in tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let Some(name) = token.ident() else { continue };
        match name {
            "Instant" | "SystemTime" => out.push(ctx.diag(
                token.line,
                "det:time",
                format!("`{name}` is a wall clock — protocol code must use the driver-supplied sim time (`now_ms`)"),
            )),
            "thread" if path_follows(tokens, i, "spawn") || std_path_precedes(tokens, i) => out
                .push(ctx.diag(
                    token.line,
                    "det:thread",
                    "OS threads break single-threaded deterministic replay".to_string(),
                )),
            "process" if std_path_precedes(tokens, i) => out.push(ctx.diag(
                token.line,
                "det:process",
                "`std::process` is off-limits in protocol code".to_string(),
            )),
            "getrandom" | "OsRng" | "thread_rng" => out.push(ctx.diag(
                token.line,
                "det:entropy",
                format!("`{name}` draws OS entropy — use the seeded `SimRng` instead"),
            )),
            "rand" if tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) => out.push(ctx.diag(
                token.line,
                "det:entropy",
                "the `rand` crate draws OS entropy — use the seeded `SimRng` instead".to_string(),
            )),
            _ => {}
        }
    }
    check_hash_iteration(ctx, out);
}

/// `name ::` lookahead: true when token `i` is followed by `:: tail`.
fn path_follows(tokens: &[Token], i: usize, tail: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(tail))
}

/// True when token `i` is preceded by `std ::`.
fn std_path_precedes(tokens: &[Token], i: usize) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident("std")
}

/// Finds identifiers declared with a `HashMap`/`HashSet` type (fields, let
/// bindings, params, struct-literal inits) and flags hash-order iteration
/// over them unless the result is immediately sorted or reduced
/// order-insensitively.
fn check_hash_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();

    // Pass A: names bound to hash collections anywhere in the file.
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    for (i, token) in tokens.iter().enumerate() {
        if !(token.is_ident("HashMap") || token.is_ident("HashSet")) {
            continue;
        }
        // Walk back over path/reference noise to the declared name:
        // `name: [&][std::collections::]HashMap<...>` or
        // `let [mut] name = HashMap::new()`.
        let mut j = i;
        while j > 0 {
            j -= 1;
            match &tokens[j].kind {
                TokenKind::Punct(':') | TokenKind::Punct('&') | TokenKind::Lifetime(_) => {}
                TokenKind::Ident(word)
                    if word == "std" || word == "collections" || word == "mut" => {}
                TokenKind::Punct('=') => {
                    // `let [mut] name = HashMap::...`
                    let mut k = j;
                    while k > 0 {
                        k -= 1;
                        match &tokens[k].kind {
                            TokenKind::Ident(word) if word == "mut" => {}
                            TokenKind::Ident(word) => {
                                if tokens
                                    .get(k.wrapping_sub(1))
                                    .is_some_and(|t| t.is_ident("let"))
                                {
                                    hash_names.insert(word);
                                }
                                break;
                            }
                            _ => break,
                        }
                    }
                    break;
                }
                TokenKind::Ident(name) => {
                    hash_names.insert(name);
                    break;
                }
                _ => break,
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }

    // Pass B: iteration sites over those names.
    for (i, token) in tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        // `for x in &map` loops have no collected result that a sort could
        // restore, so they are never exempt; method chains may be.
        let mut exemptible = false;
        let flagged_name = if token
            .ident()
            .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && i >= 2
            && tokens[i - 1].is_punct('.')
        {
            // `name.iter()` / `self.name.keys()` ...
            exemptible = true;
            tokens[i - 2]
                .ident()
                .filter(|name| hash_names.contains(name))
        } else if token.is_ident("in") {
            // `for x in &name` / `for x in &mut self.name`
            let mut j = i + 1;
            while tokens
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("self"))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('.'))
            {
                j += 2;
            }
            tokens
                .get(j)
                .and_then(Token::ident)
                .filter(|name| hash_names.contains(name))
                .filter(|_| !tokens.get(j + 1).is_some_and(|t| t.is_punct('.')))
        } else {
            None
        };
        let Some(name) = flagged_name else { continue };
        if exemptible && hash_iteration_is_ordered(ctx, i) {
            continue;
        }
        out.push(ctx.diag(
            token.line,
            "det:map-iter",
            format!(
                "iteration over hash collection `{name}` has nondeterministic order — \
                 sort the result, use a BTree collection, or waive with justification"
            ),
        ));
    }
}

/// Looks ahead from a flagged iteration for an ordering/order-insensitive
/// continuation within the next two statements (nested closures' `;` do not
/// end the window).
fn hash_iteration_is_ordered(ctx: &FileCtx<'_>, start: usize) -> bool {
    let tokens = ctx.tokens();
    let base_depth = ctx.depth[start];
    let mut statement_ends = 0;
    for (i, token) in tokens.iter().enumerate().skip(start) {
        // The window ends when the enclosing block closes or two statements
        // at the iteration's own nesting level have gone by ("immediately"
        // sorted, not eventually sorted).
        if ctx.depth[i] < base_depth {
            return false;
        }
        if token.is_punct(';') && ctx.depth[i] <= base_depth {
            statement_ends += 1;
            if statement_ends >= 2 {
                return false;
            }
        }
        if token.ident().is_some_and(|w| ORDER_EXEMPT.contains(&w)) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule family 2: panic-free decode paths
// ---------------------------------------------------------------------------

/// Panics, panicking indexing and truncating casts on decode paths: every
/// byte off the wire is adversarial (PR 6's bit-flip fuzz is the ground
/// truth), so decoders must return errors, never abort.
pub fn check_decode(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    for (i, token) in tokens.iter().enumerate() {
        if ctx.in_test(i) || !ctx.in_panic_scope(i) {
            continue;
        }
        match &token.kind {
            TokenKind::Ident(name)
                if (name == "unwrap" || name == "expect")
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                out.push(ctx.diag(
                    token.line,
                    "decode:panic",
                    format!(
                        "`.{name}()` can panic on malformed input — return a decode error instead"
                    ),
                ));
            }
            TokenKind::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                out.push(ctx.diag(
                    token.line,
                    "decode:panic",
                    format!("`{name}!` aborts on malformed input — return a decode error instead"),
                ));
            }
            TokenKind::Punct('[') if i >= 1 => {
                let postfix = matches!(
                    &tokens[i - 1].kind,
                    TokenKind::Ident(_)
                        | TokenKind::Punct(')')
                        | TokenKind::Punct(']')
                        | TokenKind::Punct('?')
                );
                if postfix {
                    out.push(ctx.diag(
                        token.line,
                        "decode:index",
                        "direct slice indexing panics out of bounds — use `.get(..)` / `try_into` with an error path".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }

    // Truncating casts on length-ish values, decode bodies only (encode
    // paths legitimately write `len() as u32` prefixes).
    for (i, token) in tokens.iter().enumerate() {
        if ctx.in_test(i) || !ctx.in_decode_scope(i) || !token.is_ident("as") {
            continue;
        }
        let Some(source) = (i >= 1).then(|| tokens[i - 1].ident()).flatten() else {
            continue;
        };
        let lower = source.to_ascii_lowercase();
        let lengthish = ["len", "count", "size"].iter().any(|p| lower.contains(p));
        let narrow = tokens
            .get(i + 1)
            .and_then(Token::ident)
            .is_some_and(|t| matches!(t, "u8" | "u16" | "u32" | "i8" | "i16" | "i32"));
        if lengthish && narrow {
            out.push(ctx.diag(
                token.line,
                "decode:cast",
                format!("`{source} as <narrow int>` silently truncates a length field — validate the range and use `try_from`"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule family 3: bounded pre-allocation
// ---------------------------------------------------------------------------

/// `with_capacity`/`reserve` fed by a decoded count must sit in a function
/// that also checks the count against the bytes actually `remaining` — the
/// hardening pattern every decoder in this workspace uses.
pub fn check_prealloc(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    for &(start, end) in &ctx.decode_bodies {
        let body = &tokens[start..end];
        let guarded = body
            .iter()
            .any(|t| t.is_ident("remaining") || t.is_ident("min"));
        for (offset, token) in body.iter().enumerate() {
            let i = start + offset;
            if ctx.in_test(i) {
                continue;
            }
            let is_alloc = token.is_ident("with_capacity") || token.is_ident("reserve");
            if !is_alloc || !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            // A literal capacity is bounded by construction.
            if matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokenKind::Num)) {
                continue;
            }
            if !guarded {
                out.push(ctx.diag(
                    token.line,
                    "alloc:cap",
                    "pre-allocation from a decoded count without a cap guard — check the count against `remaining()` bytes first".to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule family 4: bounded session state
// ---------------------------------------------------------------------------

/// Collects (non-test) type names with an `impl Session for X` in this file.
pub fn session_impl_types(lexed: &Lexed) -> Vec<String> {
    let tokens = &lexed.tokens;
    let mut types = Vec::new();
    for i in 0..tokens.len() {
        if lexed.in_test[i] {
            continue;
        }
        if tokens[i].is_ident("Session") && tokens.get(i + 1).is_some_and(|t| t.is_ident("for")) {
            if let Some(name) = tokens.get(i + 2).and_then(Token::ident) {
                types.push(name.to_string());
            }
        }
    }
    types
}

/// Every collection field of a `Session`-implementing type must carry a
/// `// bound:` comment naming its eviction/cap mechanism: long-lived
/// session state with no bound is how slow memory leaks enter a
/// protocol stack.
pub fn check_session_bounds(
    ctx: &FileCtx<'_>,
    session_types: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    if !PROTOCOL_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let tokens = ctx.tokens();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("struct") || ctx.in_test(i) {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        if !session_types.contains(name) {
            i += 1;
            continue;
        }
        // Find the struct body (skip generics; tuple/unit structs have no
        // named fields to annotate).
        let mut j = i + 2;
        while j < tokens.len()
            && !tokens[j].is_punct('{')
            && !tokens[j].is_punct(';')
            && !tokens[j].is_punct('(')
        {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('{') {
            i = j;
            continue;
        }
        let body_end = matching_brace(tokens, j);
        check_struct_fields(ctx, name, j + 1, body_end - 1, out);
        i = body_end;
    }
}

/// Walks the named fields of one struct body, flagging unannotated
/// collection-typed fields.
fn check_struct_fields(
    ctx: &FileCtx<'_>,
    struct_name: &str,
    start: usize,
    end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = ctx.tokens();
    let mut i = start;
    while i < end {
        // Skip attributes and visibility.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 1;
            i += 2;
            while i < end && depth > 0 {
                if tokens[i].is_punct('[') {
                    depth += 1;
                } else if tokens[i].is_punct(']') {
                    depth -= 1;
                }
                i += 1;
            }
            continue;
        }
        if tokens[i].is_ident("pub") {
            i += 1;
            if i < end && tokens[i].is_punct('(') {
                while i < end && !tokens[i].is_punct(')') {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        let Some(field) = tokens[i].ident() else {
            i += 1;
            continue;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            i += 1;
            continue;
        }
        let field_line = tokens[i].line;
        // Type tokens run to the `,` at this nesting level (or `end`).
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut has_collection = false;
        while j < end {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !tokens[j - 1].is_punct('-') {
                angle -= 1;
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct(',') && angle <= 0 && paren <= 0 {
                break;
            } else if t.ident().is_some_and(|w| COLLECTIONS.contains(&w)) {
                has_collection = true;
            }
            j += 1;
        }
        if has_collection && !has_bound_annotation(ctx, field_line) {
            out.push(ctx.diag(
                field_line,
                "state:bound",
                format!(
                    "collection field `{field}` of session type `{struct_name}` has no \
                     `// bound:` annotation naming its eviction/cap mechanism"
                ),
            ));
        }
        i = j + 1;
    }
}

/// True when the field's own line or the contiguous comment block directly
/// above it contains a `bound:` marker.
fn has_bound_annotation(ctx: &FileCtx<'_>, field_line: u32) -> bool {
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    let mut bound_lines: BTreeSet<u32> = BTreeSet::new();
    for comment in &ctx.lexed.comments {
        comment_lines.insert(comment.line);
        if comment.text.contains("bound:") {
            bound_lines.insert(comment.line);
        }
    }
    if bound_lines.contains(&field_line) {
        return true;
    }
    let mut line = field_line.saturating_sub(1);
    while comment_lines.contains(&line) {
        if bound_lines.contains(&line) {
            return true;
        }
        line = line.saturating_sub(1);
    }
    false
}
