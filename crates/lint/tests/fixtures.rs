//! Fixture-driven rule tests: every bad fixture trips exactly its rule,
//! every clean fixture stays silent, and the determinism family respects
//! its protocol-crate scope.

use std::path::PathBuf;

use morpheus_lint::{run, SourceFile};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Runs the pass over one fixture as if it lived in `crate_name`, returning
/// the sorted list of tripped rule ids.
fn rules_for(name: &str, crate_name: &str) -> Vec<&'static str> {
    let source = SourceFile {
        path: fixture(name),
        crate_name: crate_name.to_string(),
    };
    let diagnostics = run(std::slice::from_ref(&source)).expect("fixture readable");
    diagnostics.iter().map(|d| d.rule).collect()
}

#[track_caller]
fn assert_trips(name: &str, expected: &[&str]) {
    assert_eq!(
        rules_for(name, "appia"),
        expected,
        "fixture {name} must trip exactly {expected:?}"
    );
}

#[test]
fn determinism_fixtures() {
    assert_trips("det_time.rs", &["det:time"]);
    assert_trips("det_thread.rs", &["det:thread"]);
    assert_trips("det_process.rs", &["det:process"]);
    assert_trips("det_entropy.rs", &["det:entropy"]);
    assert_trips("det_map_iter.rs", &["det:map-iter"]);
}

#[test]
fn sorted_hash_iteration_is_exempt() {
    assert_trips("det_map_iter_sorted.rs", &[]);
}

#[test]
fn round_participant_iteration_patterns() {
    // Retransmission target selection over a hash-ordered participant set
    // must trip in the protocol crate that hosts the round engine...
    assert_eq!(
        rules_for("det_map_iter_participants.rs", "groupcomm"),
        vec!["det:map-iter"],
        "hash-ordered participant sweeps must trip"
    );
    // ...while the BTreeSet bookkeeping `groupcomm::round` actually uses
    // stays silent.
    assert_eq!(
        rules_for("det_map_iter_participants_sorted.rs", "groupcomm"),
        Vec::<&str>::new(),
        "ordered participant sweeps must stay clean"
    );
}

#[test]
fn overlay_fanout_patterns() {
    // Hash-ordered fan-out target selection must trip in overlay code too.
    assert_eq!(
        rules_for("det_map_iter_fanout.rs", "overlay"),
        vec!["det:map-iter"],
        "overlay is a protocol crate: hash-ordered fan-out must trip"
    );
    // The idiom the overlay actually uses — BTreeSet link sets, sorted
    // digest pools — stays silent.
    assert_eq!(
        rules_for("det_map_iter_links_sorted.rs", "overlay"),
        Vec::<&str>::new(),
        "ordered link-set relay selection must stay clean"
    );
}

#[test]
fn determinism_rules_only_cover_protocol_crates() {
    assert_eq!(
        rules_for("det_time.rs", "lint"),
        Vec::<&str>::new(),
        "the determinism family must not fire outside protocol crates"
    );
}

#[test]
fn decode_fixtures() {
    assert_trips("decode_unwrap.rs", &["decode:panic"]);
    assert_trips("decode_index.rs", &["decode:index"]);
    assert_trips("decode_cast.rs", &["decode:cast"]);
}

#[test]
fn decode_rules_fire_in_every_crate() {
    assert_eq!(
        rules_for("decode_unwrap.rs", "lint"),
        vec!["decode:panic"],
        "panic-freedom on decode paths is workspace-wide"
    );
}

#[test]
fn prealloc_fixtures() {
    assert_trips("alloc_uncapped.rs", &["alloc:cap"]);
    assert_trips("alloc_capped.rs", &[]);
}

#[test]
fn session_state_fixtures() {
    assert_trips("state_unbounded.rs", &["state:bound"]);
    assert_trips("state_bound.rs", &[]);
}

#[test]
fn waiver_fixtures() {
    assert_trips("det_time_waivered.rs", &[]);
    assert_trips("waiver_unused.rs", &["waiver:unused"]);
    assert_trips("waiver_nojustification.rs", &["waiver:syntax"]);
    assert_trips("waiver_unknown_rule.rs", &["waiver:unknown-rule"]);
}

#[test]
fn diagnostics_carry_file_and_line() {
    let source = SourceFile {
        path: fixture("det_time.rs"),
        crate_name: "appia".to_string(),
    };
    let diagnostics = run(std::slice::from_ref(&source)).expect("fixture readable");
    assert_eq!(diagnostics.len(), 1);
    let rendered = diagnostics[0].to_string();
    assert!(
        rendered.contains("det_time.rs:4: det:time:"),
        "diagnostic renders as file:line: rule: message, got {rendered}"
    );
}
