//! CLI contract: exit codes, plain and JSON output.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_morpheus-lint"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn findings_exit_nonzero_and_print_one_line_per_diagnostic() {
    let output = bin()
        .arg("--crate")
        .arg("appia")
        .arg(fixture("det_time.rs"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1), "findings must exit 1");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(
        stdout.contains("det:time"),
        "finding printed to stdout, got {stdout}"
    );
}

#[test]
fn clean_file_exits_zero() {
    let output = bin()
        .arg("--crate")
        .arg("appia")
        .arg(fixture("state_bound.rs"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0), "clean input must exit 0");
}

#[test]
fn json_output_carries_rule_and_line() {
    let output = bin()
        .arg("--json")
        .arg("--crate")
        .arg("appia")
        .arg(fixture("det_time.rs"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    assert!(stdout.trim_start().starts_with('['), "JSON array: {stdout}");
    assert!(stdout.contains("\"rule\":\"det:time\""), "rule: {stdout}");
    assert!(stdout.contains("\"line\":4"), "line: {stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let output = bin().output().expect("binary runs");
    assert_eq!(output.status.code(), Some(2), "no input is a usage error");

    let output = bin()
        .arg("--workspace")
        .arg(fixture("det_time.rs"))
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(2),
        "--workspace plus explicit files is a usage error"
    );
}
