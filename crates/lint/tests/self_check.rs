//! The workspace must stay clean under its own invariants checker: any
//! finding here means either a real regression or a rule that needs a
//! justified waiver at the offending site.

use std::path::PathBuf;

use morpheus_lint::{run, workspace_files};

#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let files = workspace_files(&root).expect("workspace walk succeeds");
    assert!(
        files.len() > 50,
        "the walk must cover the whole workspace, found only {} files",
        files.len()
    );
    let diagnostics = run(&files).expect("all sources readable");
    let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        diagnostics.is_empty(),
        "workspace must be lint-clean, got:\n{}",
        rendered.join("\n")
    );
}
