//! The Cocaditem dissemination layer.
//!
//! This layer runs on the group communication **control channel** of every
//! node. Periodically it samples the local context through the retrievers and
//! multicasts the snapshot to the other participants; snapshots received from
//! peers are stored and re-published upward as [`ContextUpdated`] events so
//! the Core control layer (stacked above) can evaluate its adaptation
//! policies against the *distributed* context — exactly the coordination the
//! paper's prototype performs over a shared control channel.

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;
use morpheus_appia::{internal_event, sendable_event, Kernel};
use morpheus_groupcomm::events::ViewInstall;

use crate::context::ContextSnapshot;
use crate::retriever::{default_retrievers, ContextRetriever};
use crate::store::ContextStore;

/// Registered name of the Cocaditem dissemination layer.
pub const COCADITEM_LAYER: &str = "cocaditem";

/// Timer tag for the periodic publication.
const PUBLISH_TAG: u32 = 1;

sendable_event! {
    /// A context snapshot multicast on the control channel (payload: the
    /// encoded [`ContextSnapshot`]).
    pub struct ContextPublish, class: Context
}

internal_event! {
    /// A context snapshot became available locally (either sampled locally or
    /// received from a peer); travels up the control channel towards the Core
    /// control layer.
    pub struct ContextUpdated {
        /// The snapshot.
        pub snapshot: ContextSnapshot,
    }
    categories: [Internal]
}

/// Registers the Cocaditem layer and its event type with a kernel.
pub fn register_cocaditem(kernel: &mut Kernel) {
    kernel.layers_mut().register(CocaditemLayer);
    ContextPublish::register(kernel.events_mut());
}

/// The Cocaditem dissemination layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial membership of the control group;
/// * `publish_interval_ms` — how often the local context is sampled and
///   disseminated (default 1000 ms).
pub struct CocaditemLayer;

impl Layer for CocaditemLayer {
    fn name(&self) -> &str {
        COCADITEM_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<ContextPublish>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["ContextPublish", "ContextUpdated"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(CocaditemSession {
            members: param_node_list(params, "members"),
            publish_interval_ms: param_or(params, "publish_interval_ms", 1000u64).max(10),
            refresh_every: param_or(params, "refresh_every", 10u32).max(1),
            retrievers: default_retrievers(),
            store: ContextStore::new(),
            last_published: None,
            ticks_since_publish: 0,
            publications: 0,
        })
    }
}

/// Whether a freshly sampled snapshot differs enough from the last published
/// one to be worth disseminating (battery drains continuously, so small
/// numeric drifts are suppressed to keep the control traffic low).
fn changed_significantly(previous: &ContextSnapshot, current: &ContextSnapshot) -> bool {
    use crate::context::ContextKey;

    if previous.device_class() != current.device_class() {
        return true;
    }
    let numeric_changed = |key: ContextKey, tolerance: f64| {
        let before = previous
            .get(key)
            .and_then(crate::context::ContextValue::as_number);
        let after = current
            .get(key)
            .and_then(crate::context::ContextValue::as_number);
        match (before, after) {
            (Some(before), Some(after)) => (before - after).abs() > tolerance,
            (None, None) => false,
            _ => true,
        }
    };
    numeric_changed(ContextKey::BatteryLevel, 0.05)
        || numeric_changed(ContextKey::ErrorRate, 0.01)
        || numeric_changed(ContextKey::LinkQuality, 0.05)
        || numeric_changed(ContextKey::BandwidthKbps, 500.0)
        || previous.get(ContextKey::NativeMulticast) != current.get(ContextKey::NativeMulticast)
}

/// Session state of the Cocaditem dissemination layer.
pub struct CocaditemSession {
    members: Vec<NodeId>,
    publish_interval_ms: u64,
    refresh_every: u32,
    retrievers: Vec<Box<dyn ContextRetriever>>,
    store: ContextStore,
    last_published: Option<ContextSnapshot>,
    ticks_since_publish: u32,
    publications: u64,
}

impl std::fmt::Debug for CocaditemSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CocaditemSession")
            .field("members", &self.members)
            .field("publish_interval_ms", &self.publish_interval_ms)
            .field("known_nodes", &self.store.len())
            .field("publications", &self.publications)
            .finish()
    }
}

impl CocaditemSession {
    fn sample_local(&mut self, ctx: &mut EventContext<'_>) -> ContextSnapshot {
        let profile = ctx.profile();
        let mut snapshot = ContextSnapshot::new(profile.node_id, ctx.now_ms());
        for retriever in &self.retrievers {
            for (key, value) in retriever.retrieve(&profile) {
                snapshot.set(key, value);
            }
        }
        snapshot
    }

    /// Samples the local context and disseminates it when it changed
    /// significantly since the last publication (or when the periodic refresh
    /// is due, so late joiners and lossy links eventually converge).
    fn publish(&mut self, ctx: &mut EventContext<'_>, force: bool) {
        let local = ctx.node_id();
        let snapshot = self.sample_local(ctx);
        self.store.update(snapshot.clone());
        // Local context is also reported upward so the local Core instance
        // sees its own node's context without a network round trip.
        ctx.dispatch(Event::up(ContextUpdated {
            snapshot: snapshot.clone(),
        }));

        self.ticks_since_publish += 1;
        let changed = match &self.last_published {
            Some(previous) => changed_significantly(previous, &snapshot),
            None => true,
        };
        if !(force || changed || self.ticks_since_publish >= self.refresh_every) {
            return;
        }

        let others: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|member| *member != local)
            .collect();
        if !others.is_empty() {
            let mut message = Message::new();
            message.push(&snapshot);
            self.publications += 1;
            ctx.dispatch(Event::down(ContextPublish::new(
                local,
                Dest::Nodes(others),
                message,
            )));
        }
        self.last_published = Some(snapshot);
        self.ticks_since_publish = 0;
    }
}

impl Session for CocaditemSession {
    fn layer_name(&self) -> &str {
        COCADITEM_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            ctx.set_timer(self.publish_interval_ms, PUBLISH_TAG);
            // Publish immediately so the control component converges quickly
            // after start-up.
            self.publish(ctx, true);
            ctx.forward(event);
            return;
        }
        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == COCADITEM_LAYER {
                if timer.tag == PUBLISH_TAG {
                    self.publish(ctx, false);
                    ctx.set_timer(self.publish_interval_ms, PUBLISH_TAG);
                }
                return;
            }
            ctx.forward(event);
            return;
        }
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            ctx.forward(event);
            return;
        }
        if event.is::<ContextPublish>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(publish) = event.get_mut::<ContextPublish>() else {
                return;
            };
            let Ok(snapshot) = publish.message.pop::<ContextSnapshot>() else {
                return;
            };
            self.store.update(snapshot.clone());
            ctx.dispatch(Event::up(ContextUpdated { snapshot }));
            return;
        }
        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeProfile, TestPlatform};
    use morpheus_appia::testing::Harness;

    use super::*;

    fn params(members: &[u32], interval: u64) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("publish_interval_ms".into(), interval.to_string());
        // Re-publish on every tick so the timer-driven tests below observe a
        // publication even when the context is unchanged.
        params.insert("refresh_every".into(), "1".into());
        params
    }

    #[test]
    fn init_publishes_the_local_context() {
        let mut platform = TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(2)));
        let mut cocaditem = Harness::new(CocaditemLayer, &params(&[1, 2, 3], 500), &mut platform);

        // The initial publication happened during ChannelInit (drained by the
        // harness); trigger another one via the timer to observe it.
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        assert!(!timers.is_empty());
        cocaditem.fire_timer(timers[0].1, &mut platform);

        let down = cocaditem.drain_down();
        let publish: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextPublish>())
            .collect();
        assert_eq!(publish.len(), 1);
        assert_eq!(
            publish[0].get::<ContextPublish>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(1), NodeId(3)])
        );

        let up = cocaditem.drain_up();
        let updated: Vec<&Event> = up
            .iter()
            .filter(|event| event.is::<ContextUpdated>())
            .collect();
        assert_eq!(updated.len(), 1);
        assert_eq!(
            updated[0].get::<ContextUpdated>().unwrap().snapshot.node,
            NodeId(2)
        );
        assert_eq!(
            updated[0]
                .get::<ContextUpdated>()
                .unwrap()
                .snapshot
                .is_mobile(),
            Some(true)
        );
    }

    #[test]
    fn received_publications_are_reported_upward() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(CocaditemLayer, &params(&[1, 2], 1000), &mut platform);

        let snapshot = ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(2)), 77);
        let mut message = Message::new();
        message.push(&snapshot);
        let up = cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );
        let updated: Vec<&Event> = up
            .iter()
            .filter(|event| event.is::<ContextUpdated>())
            .collect();
        assert_eq!(updated.len(), 1);
        let received = &updated[0].get::<ContextUpdated>().unwrap().snapshot;
        assert_eq!(received.node, NodeId(2));
        assert_eq!(received.captured_at_ms, 77);
    }

    #[test]
    fn unchanged_context_is_not_republished_before_the_refresh_deadline() {
        let mut platform = TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(2)));
        let mut params = params(&[1, 2], 500);
        params.insert("refresh_every".into(), "5".into());
        let mut cocaditem = Harness::new(CocaditemLayer, &params, &mut platform);

        // The initial (forced) publication happened at ChannelInit. With an
        // unchanged profile, the next few ticks stay silent on the network
        // but keep reporting the local context upward.
        for _ in 0..3 {
            let timers: Vec<_> = std::mem::take(&mut platform.timers);
            cocaditem.fire_timer(timers[0].1, &mut platform);
            let down = cocaditem.drain_down();
            assert!(down.iter().all(|event| !event.is::<ContextPublish>()));
            assert!(cocaditem
                .drain_up()
                .iter()
                .any(|event| event.is::<ContextUpdated>()));
        }

        // A significant battery drop is disseminated immediately.
        let mut drained = NodeProfile::mobile_pda(NodeId(2));
        drained.battery_level = 0.5;
        platform.profile = drained;
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        cocaditem.fire_timer(timers[0].1, &mut platform);
        assert!(cocaditem
            .drain_down()
            .iter()
            .any(|event| event.is::<ContextPublish>()));
    }

    #[test]
    fn malformed_publications_are_dropped() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(CocaditemLayer, &params(&[1, 2], 1000), &mut platform);
        let up = cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        assert!(up.iter().all(|event| !event.is::<ContextUpdated>()));
    }

    #[test]
    fn view_install_updates_the_dissemination_targets() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(CocaditemLayer, &params(&[1, 2], 300), &mut platform);
        cocaditem.run_down(
            Event::down(ViewInstall {
                view: morpheus_groupcomm::View::new(1, vec![NodeId(1), NodeId(2), NodeId(5)]),
            }),
            &mut platform,
        );
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        cocaditem.fire_timer(timers[0].1, &mut platform);
        let down = cocaditem.drain_down();
        let publish = down
            .iter()
            .find(|event| event.is::<ContextPublish>())
            .unwrap();
        assert_eq!(
            publish.get::<ContextPublish>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2), NodeId(5)])
        );
    }
}
