//! The Cocaditem dissemination layer.
//!
//! This layer runs on the group communication **control channel** of every
//! node. Periodically it samples the local context through the retrievers;
//! snapshots received from peers are stored and re-published upward as
//! [`ContextUpdated`] events so the Core control layer (stacked above) can
//! evaluate its adaptation policies against the *distributed* context —
//! exactly the coordination the paper's prototype performs over a shared
//! control channel.
//!
//! Dissemination is epidemic rather than an all-to-all flood:
//!
//! * when the local context changes significantly, the snapshot is **pushed
//!   to `fanout` random peers**, each of which forwards fresh snapshots to
//!   another `fanout` peers while `forward_ttl` lasts — `O(n · fanout)`
//!   messages per publication instead of `n · (n - 1)`, converging in
//!   `O(log n)` hops;
//! * every publish interval the layer additionally gossips a compact
//!   [`ContextDigest`] — its `(node, version)` view of the store — to
//!   `fanout` random peers. A digest receiver **pulls** the snapshots its
//!   peer holds newer versions of ([`ContextPull`], rate-limited per node so
//!   concurrent digests do not re-request the same snapshots) and the answer
//!   arrives as one batched [`ContextBatch`], so any snapshot lost in
//!   transit is repaired within a few intervals without periodically
//!   re-flooding full snapshots.
//!
//! Setting `fanout` to `0` restores the legacy flood (full snapshot to every
//! member on every change, plus the `refresh_every` full republish), which
//! benchmarks use as the O(n²) baseline.

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId};
use morpheus_appia::session::Session;
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};
use morpheus_appia::{internal_event, sendable_event, Kernel};
use morpheus_groupcomm::events::ViewInstall;

use std::cell::RefCell;
use std::rc::Rc;

use crate::context::ContextSnapshot;
use crate::retriever::{default_retrievers, ContextRetriever};
use crate::store::ContextStore;

/// Registered name of the Cocaditem dissemination layer.
pub const COCADITEM_LAYER: &str = "cocaditem";

/// Timer tag for the periodic publication.
const PUBLISH_TAG: u32 = 1;

sendable_event! {
    /// A context snapshot travelling between nodes (payload: a forwarding
    /// TTL on top of the encoded [`ContextSnapshot`]).
    pub struct ContextPublish, class: Context
}

sendable_event! {
    /// An anti-entropy digest: the sender's `(node, version)` view of its
    /// context store (payload: the encoded [`DigestBody`]).
    pub struct ContextDigest, class: Context
}

sendable_event! {
    /// A pull request for snapshots the digest sender holds newer versions
    /// of (payload: the encoded [`PullBody`]).
    pub struct ContextPull, class: Context
}

sendable_event! {
    /// The answer to a [`ContextPull`]: every requested snapshot batched
    /// into one message (payload: the encoded [`BatchBody`]), so repairing a
    /// freshly booted node costs one message instead of one per member.
    pub struct ContextBatch, class: Context
}

internal_event! {
    /// A context snapshot became available locally (either sampled locally or
    /// received from a peer); travels up the control channel towards the Core
    /// control layer.
    pub struct ContextUpdated {
        /// The snapshot.
        pub snapshot: ContextSnapshot,
    }
    categories: [Internal]
}

/// Wire body of a [`ContextDigest`]: every store entry as `(node, version)`,
/// where the version is the snapshot's capture time (monotonic per node).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DigestBody {
    /// `(node, version)` pairs, in node-id order.
    pub entries: Vec<(NodeId, u64)>,
}

impl Wire for DigestBody {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.entries.len() as u32);
        for (node, version) in &self.entries {
            node.encode(w);
            w.put_u64(*version);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        // Each entry occupies 12 wire bytes; reject adversarial counts
        // before allocating.
        if count > r.remaining() / 12 {
            return Err(WireError::Malformed("context digest count exceeds payload"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let node = NodeId::decode(r)?;
            let version = r.get_u64()?;
            entries.push((node, version));
        }
        Ok(Self { entries })
    }
}

/// Wire body of a [`ContextPull`]: the nodes whose snapshots are requested.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PullBody {
    /// Nodes whose snapshots the requester is missing or holds stale.
    pub nodes: Vec<NodeId>,
}

impl Wire for PullBody {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.nodes.len() as u32);
        for node in &self.nodes {
            node.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        if count > r.remaining() / 4 {
            return Err(WireError::Malformed("context pull count exceeds payload"));
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            nodes.push(NodeId::decode(r)?);
        }
        Ok(Self { nodes })
    }
}

/// Wire body of a [`ContextBatch`]: the requested snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchBody {
    /// The snapshots, in the order they were requested.
    pub snapshots: Vec<ContextSnapshot>,
}

impl Wire for BatchBody {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.snapshots.len() as u32);
        for snapshot in &self.snapshots {
            snapshot.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        // A snapshot encodes to at least 16 bytes (node + capture time +
        // value count); reject adversarial counts before allocating.
        if count > r.remaining() / 16 {
            return Err(WireError::Malformed("context batch count exceeds payload"));
        }
        let mut snapshots = Vec::with_capacity(count);
        for _ in 0..count {
            snapshots.push(ContextSnapshot::decode(r)?);
        }
        Ok(Self { snapshots })
    }
}

/// Registers the Cocaditem layer and its event types with a kernel. The
/// layer's sessions own their stores privately; use
/// [`register_cocaditem_with_store`] to share the store with the node
/// runtime (e.g. for rejoin state transfer).
pub fn register_cocaditem(kernel: &mut Kernel) {
    kernel.layers_mut().register(CocaditemLayer::default());
    register_cocaditem_events(kernel);
}

/// Registers the Cocaditem layer backed by a shared context store: every
/// session created from it reads and writes `store`, so the node runtime
/// (and the recovery layer's [`crate::store::ContextStoreSection`]) observe
/// the live replicated context.
pub fn register_cocaditem_with_store(kernel: &mut Kernel, store: Rc<RefCell<ContextStore>>) {
    kernel.layers_mut().register(CocaditemLayer {
        shared_store: Some(store),
    });
    register_cocaditem_events(kernel);
}

fn register_cocaditem_events(kernel: &mut Kernel) {
    ContextPublish::register(kernel.events_mut());
    ContextDigest::register(kernel.events_mut());
    ContextPull::register(kernel.events_mut());
    ContextBatch::register(kernel.events_mut());
}

/// The Cocaditem dissemination layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial membership of the control group;
/// * `publish_interval_ms` — how often the local context is sampled and the
///   digest round runs (default 1000 ms);
/// * `fanout` — random peers each push/digest targets (default 3; `0`
///   selects the legacy all-to-all flood);
/// * `forward_ttl` — epidemic forwarding rounds a fresh snapshot survives
///   (default 3);
/// * `refresh_every` — legacy mode only: full republish every N quiet ticks
///   (default 10).
#[derive(Default)]
pub struct CocaditemLayer {
    /// When set, every created session shares this store instead of owning
    /// a private one (see [`register_cocaditem_with_store`]).
    shared_store: Option<Rc<RefCell<ContextStore>>>,
}

impl Layer for CocaditemLayer {
    fn name(&self) -> &str {
        COCADITEM_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<ContextPublish>(),
            EventSpec::of::<ContextDigest>(),
            EventSpec::of::<ContextPull>(),
            EventSpec::of::<ContextBatch>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec![
            "ContextPublish",
            "ContextDigest",
            "ContextPull",
            "ContextBatch",
            "ContextUpdated",
        ]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let members = param_node_list(params, "members");
        Box::new(CocaditemSession {
            member_set: members.iter().copied().collect(),
            members,
            publish_interval_ms: param_or(params, "publish_interval_ms", 1000u64).max(10),
            refresh_every: param_or(params, "refresh_every", 10u32).max(1),
            fanout: param_or(params, "fanout", 3usize),
            forward_ttl: param_or(params, "forward_ttl", 3u32),
            retrievers: default_retrievers(),
            store: self.shared_store.clone().unwrap_or_default(),
            last_published: None,
            ticks_since_publish: 0,
            publications: 0,
            converged_reported: false,
            recent_pulls: std::collections::HashMap::new(),
            behind_peers: std::collections::BTreeSet::new(),
        })
    }
}

/// Whether a freshly sampled snapshot differs enough from the last published
/// one to be worth disseminating (battery drains continuously, so small
/// numeric drifts are suppressed to keep the control traffic low).
fn changed_significantly(previous: &ContextSnapshot, current: &ContextSnapshot) -> bool {
    use crate::context::ContextKey;

    if previous.device_class() != current.device_class() {
        return true;
    }
    let numeric_changed = |key: ContextKey, tolerance: f64| {
        let before = previous
            .get(key)
            .and_then(crate::context::ContextValue::as_number);
        let after = current
            .get(key)
            .and_then(crate::context::ContextValue::as_number);
        match (before, after) {
            (Some(before), Some(after)) => (before - after).abs() > tolerance,
            (None, None) => false,
            _ => true,
        }
    };
    numeric_changed(ContextKey::BatteryLevel, 0.05)
        || numeric_changed(ContextKey::ErrorRate, 0.01)
        || numeric_changed(ContextKey::LinkQuality, 0.05)
        || numeric_changed(ContextKey::BandwidthKbps, 500.0)
        || previous.get(ContextKey::NativeMulticast) != current.get(ContextKey::NativeMulticast)
}

/// Session state of the Cocaditem dissemination layer.
pub struct CocaditemSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    /// Same membership as `members`, indexed for the per-digest-entry check
    /// (a `Vec::contains` per entry would make every received digest O(n²)).
    // bound: mirrors `members` -- rebuilt on view install, <= view size.
    member_set: std::collections::HashSet<NodeId>,
    publish_interval_ms: u64,
    refresh_every: u32,
    /// Push/digest fan-out; `0` selects the legacy all-to-all flood.
    fanout: usize,
    forward_ttl: u32,
    // bound: fixed set installed at session construction; never grows.
    retrievers: Vec<Box<dyn ContextRetriever>>,
    store: Rc<RefCell<ContextStore>>,
    last_published: Option<ContextSnapshot>,
    ticks_since_publish: u32,
    publications: u64,
    converged_reported: bool,
    /// Pull budget per snapshot: `(window start ms, pulls issued in the
    /// window)`. Up to **two** digest senders per publish interval may be
    /// pulled from for the same missing snapshot — one redundant pull
    /// halves the tail under heavy control loss (a single lost answer no
    /// longer costs a whole extra interval), while still keeping the boot
    /// transient far below the flood it replaces.
    // bound: pruned to live members on view install; a node's entry drops when its snapshot arrives.
    recent_pulls: std::collections::HashMap<NodeId, (u64, u32)>,
    /// Peers whose most recent digest advertised a staler view of the store
    /// than ours. Our own digest targets are biased towards them: a peer
    /// that is behind learns what to pull from us one interval sooner than
    /// uniform random targeting would manage, which shortens the last
    /// stragglers' convergence tail.
    // bound: <= view size; retained against the membership on view install.
    behind_peers: std::collections::BTreeSet<NodeId>,
}

impl std::fmt::Debug for CocaditemSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CocaditemSession")
            .field("members", &self.members)
            .field("publish_interval_ms", &self.publish_interval_ms)
            .field("fanout", &self.fanout)
            .field("known_nodes", &self.store.borrow().len())
            .field("publications", &self.publications)
            .finish()
    }
}

impl CocaditemSession {
    fn sample_local(&mut self, ctx: &mut EventContext<'_>) -> ContextSnapshot {
        let profile = ctx.profile();
        let mut snapshot = ContextSnapshot::new(profile.node_id, ctx.now_ms());
        for retriever in &self.retrievers {
            for (key, value) in retriever.retrieve(&profile) {
                snapshot.set(key, value);
            }
        }
        snapshot
    }

    /// Picks up to `limit` random members, excluding `exclude`.
    fn random_targets(
        &self,
        limit: usize,
        exclude: &[NodeId],
        ctx: &mut EventContext<'_>,
    ) -> Vec<NodeId> {
        morpheus_groupcomm::gossip::sample_peers(&self.members, exclude, limit, ctx)
    }

    /// Sends one snapshot to explicit targets with the given forwarding TTL.
    fn send_snapshot(
        snapshot: &ContextSnapshot,
        ttl: u32,
        targets: Vec<NodeId>,
        ctx: &mut EventContext<'_>,
    ) {
        if targets.is_empty() {
            return;
        }
        let mut message = Message::new();
        message.push(snapshot);
        message.push(&ttl);
        ctx.dispatch(Event::down(ContextPublish::new(
            ctx.node_id(),
            Dest::Nodes(targets),
            message,
        )));
    }

    /// Reports (once) that the store covers the whole membership, so the
    /// testbed can measure dissemination convergence time.
    fn maybe_report_convergence(&mut self, ctx: &mut EventContext<'_>) {
        if self.converged_reported || self.members.is_empty() {
            return;
        }
        if self
            .members
            .iter()
            .all(|member| self.store.borrow().get(*member).is_some())
        {
            self.converged_reported = true;
            ctx.deliver(DeliveryKind::ContextConverged {
                nodes: self.members.len(),
            });
        }
    }

    /// Samples the local context and disseminates it when it changed
    /// significantly since the last publication. In epidemic mode the
    /// snapshot is pushed to `fanout` random peers (anti-entropy digests
    /// repair any loss); in legacy mode it is flooded to every member, with
    /// the periodic `refresh_every` full republish as the loss crutch.
    fn publish(&mut self, ctx: &mut EventContext<'_>, force: bool) {
        let local = ctx.node_id();
        let snapshot = self.sample_local(ctx);
        // Local context is reported upward on every tick so the local Core
        // instance sees its own node's context without a network round trip.
        ctx.dispatch(Event::up(ContextUpdated {
            snapshot: snapshot.clone(),
        }));
        // Coverage can also be completed from outside the dissemination
        // exchanges — a rejoined node's store is installed wholesale by the
        // recovery state transfer — so the convergence check runs on every
        // tick, not only when this node's own context changed.
        self.maybe_report_convergence(ctx);

        self.ticks_since_publish += 1;
        let changed = match &self.last_published {
            Some(previous) => changed_significantly(previous, &snapshot),
            None => true,
        };
        let legacy_refresh = self.fanout == 0 && self.ticks_since_publish >= self.refresh_every;
        if !(force || changed || legacy_refresh) {
            return;
        }

        // The store (and therefore the digest) only ever advances to
        // *published* versions: an unpublished local re-sample must not bump
        // the advertised version, or every digest receiver would pull the
        // "newer" snapshot on every interval forever.
        self.store.borrow_mut().update(snapshot.clone());
        self.maybe_report_convergence(ctx);

        let targets = if self.fanout == 0 {
            self.members
                .iter()
                .copied()
                .filter(|member| *member != local)
                .collect()
        } else {
            self.random_targets(self.fanout, &[local], ctx)
        };
        if !targets.is_empty() {
            self.publications += 1;
            let ttl = if self.fanout == 0 {
                0
            } else {
                self.forward_ttl
            };
            Self::send_snapshot(&snapshot, ttl, targets, ctx);
        }
        self.last_published = Some(snapshot);
        self.ticks_since_publish = 0;
    }

    /// Gossips the store digest to `fanout` peers — stale-looking peers
    /// first, the rest uniformly random.
    fn gossip_digest(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        self.behind_peers
            .retain(|peer| *peer != local && self.member_set.contains(peer));
        let behind: Vec<NodeId> = self.behind_peers.iter().copied().collect();
        let mut targets =
            morpheus_groupcomm::gossip::sample_peers(&behind, &[local], self.fanout, ctx);
        if targets.len() < self.fanout {
            let mut exclude = targets.clone();
            exclude.push(local);
            targets.extend(morpheus_groupcomm::gossip::sample_peers(
                &self.members,
                &exclude,
                self.fanout - targets.len(),
                ctx,
            ));
        }
        if targets.is_empty() {
            return;
        }
        let body = DigestBody {
            entries: self.store.borrow().digest(),
        };
        let mut message = Message::new();
        message.push(&body);
        ctx.dispatch(Event::down(ContextDigest::new(
            local,
            Dest::Nodes(targets),
            message,
        )));
    }

    /// Handles a received snapshot: store it, report it upward and — while
    /// the TTL lasts — keep spreading it if it was news.
    fn on_snapshot(
        &mut self,
        snapshot: ContextSnapshot,
        ttl: u32,
        from: NodeId,
        ctx: &mut EventContext<'_>,
    ) {
        let fresh = self.store.borrow_mut().update(snapshot.clone());
        if !fresh {
            return;
        }
        ctx.dispatch(Event::up(ContextUpdated {
            snapshot: snapshot.clone(),
        }));
        self.maybe_report_convergence(ctx);
        if self.fanout > 0 && ttl > 0 {
            let local = ctx.node_id();
            let targets = self.random_targets(self.fanout, &[local, from, snapshot.node], ctx);
            Self::send_snapshot(&snapshot, ttl - 1, targets, ctx);
        }
    }

    /// Handles a received digest: pull what the peer holds newer (pull-only
    /// anti-entropy). Pulls are rate-limited per node — several digests
    /// arrive each interval and must not all re-request the same snapshots —
    /// and retried after a publish interval, which bounds convergence under
    /// loss without any periodic full republish.
    fn on_digest(&mut self, body: DigestBody, from: NodeId, ctx: &mut EventContext<'_>) {
        // A digest from outside the installed view is ignored wholesale: no
        // pull goes back, and the sender is not tracked as a behind peer —
        // expelled members must stop receiving anti-entropy traffic.
        if !self.member_set.contains(&from) {
            return;
        }
        let now = ctx.now_ms();
        // Does the sender itself look *behind* (older versions than ours, or
        // snapshots it does not list at all)? If so, bias our next digest
        // rounds towards it so it learns what to pull from us.
        // Both sides are in node-id order (the store is a BTreeMap; digests
        // are produced from store.digest()), so one merge scan decides it in
        // O(n). A malformed unsorted digest only degrades the *bias*, never
        // correctness.
        let store = self.store.borrow();
        let mut entries = body.entries.iter().peekable();
        let mut sender_behind = false;
        for (node, snapshot) in store.iter() {
            if !self.member_set.contains(node) {
                continue;
            }
            while entries
                .next_if(|(digest_node, _)| digest_node < node)
                .is_some()
            {}
            match entries.peek() {
                Some((digest_node, version))
                    if digest_node == node && *version >= snapshot.captured_at_ms => {}
                _ => {
                    sender_behind = true;
                    break;
                }
            }
        }
        drop(store);
        if sender_behind {
            self.behind_peers.insert(from);
        } else {
            self.behind_peers.remove(&from);
        }

        let mut wants: Vec<NodeId> = Vec::new();
        for (node, version) in &body.entries {
            if !self.member_set.contains(node) {
                continue;
            }
            if self.store.borrow().version_of(*node) >= Some(*version) {
                continue;
            }
            let window = self.recent_pulls.entry(*node).or_insert((now, 0));
            if now.saturating_sub(window.0) >= self.publish_interval_ms {
                *window = (now, 0);
            }
            if window.1 < 2 {
                window.1 += 1;
                wants.push(*node);
            }
        }
        if !wants.is_empty() {
            let mut message = Message::new();
            message.push(&PullBody { nodes: wants });
            ctx.dispatch(Event::down(ContextPull::new(
                ctx.node_id(),
                Dest::Node(from),
                message,
            )));
        }
    }

    /// Handles a pull request: answer with every requested snapshot batched
    /// into a single message.
    fn on_pull(&mut self, body: PullBody, from: NodeId, ctx: &mut EventContext<'_>) {
        // Snapshots are served to current view members only; a removed peer
        // rebuilds its context store through the rejoin state transfer.
        if !self.member_set.contains(&from) {
            return;
        }
        let store = self.store.borrow();
        let snapshots: Vec<ContextSnapshot> = body
            .nodes
            .into_iter()
            .filter_map(|node| store.get(node).cloned())
            .collect();
        drop(store);
        if snapshots.is_empty() {
            return;
        }
        let mut message = Message::new();
        message.push(&BatchBody { snapshots });
        ctx.dispatch(Event::down(ContextBatch::new(
            ctx.node_id(),
            Dest::Node(from),
            message,
        )));
    }

    /// Handles a batched pull answer: each snapshot is stored and reported
    /// like a directly received publication (no further forwarding — the
    /// batch was explicitly requested, so spreading it again would only
    /// re-create the redundancy the pull rate limit removed).
    fn on_batch(&mut self, body: BatchBody, ctx: &mut EventContext<'_>) {
        for snapshot in body.snapshots {
            let node = snapshot.node;
            if self.store.borrow_mut().update(snapshot.clone()) {
                self.recent_pulls.remove(&node);
                ctx.dispatch(Event::up(ContextUpdated { snapshot }));
            }
        }
        self.maybe_report_convergence(ctx);
    }
}

impl Session for CocaditemSession {
    fn layer_name(&self) -> &str {
        COCADITEM_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            ctx.set_timer(self.publish_interval_ms, PUBLISH_TAG);
            // Publish immediately so the control component converges quickly
            // after start-up.
            self.publish(ctx, true);
            ctx.forward(event);
            return;
        }
        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == COCADITEM_LAYER {
                if timer.tag == PUBLISH_TAG {
                    self.publish(ctx, false);
                    if self.fanout > 0 {
                        self.gossip_digest(ctx);
                    }
                    ctx.set_timer(self.publish_interval_ms, PUBLISH_TAG);
                }
                return;
            }
            ctx.forward(event);
            return;
        }
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            self.member_set = self.members.iter().copied().collect();
            // Expelled members must stop occupying the store (their digest
            // entry would otherwise ride every future digest), the pull
            // rate-limit map or the staleness bias.
            self.store.borrow_mut().retain_members(&self.members);
            self.recent_pulls
                .retain(|node, _| self.member_set.contains(node));
            self.behind_peers
                .retain(|node| self.member_set.contains(node));
            self.converged_reported = false;
            ctx.forward(event);
            return;
        }
        if event.is::<ContextPublish>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(publish) = event.get_mut::<ContextPublish>() else {
                return;
            };
            let from = publish.header.source;
            let Ok(ttl) = publish.message.pop::<u32>() else {
                return;
            };
            let Ok(snapshot) = publish.message.pop::<ContextSnapshot>() else {
                return;
            };
            self.on_snapshot(snapshot, ttl, from, ctx);
            return;
        }
        if event.is::<ContextDigest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(digest) = event.get_mut::<ContextDigest>() else {
                return;
            };
            let from = digest.header.source;
            let Ok(body) = digest.message.pop::<DigestBody>() else {
                return;
            };
            self.on_digest(body, from, ctx);
            return;
        }
        if event.is::<ContextPull>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(pull) = event.get_mut::<ContextPull>() else {
                return;
            };
            let from = pull.header.source;
            let Ok(body) = pull.message.pop::<PullBody>() else {
                return;
            };
            self.on_pull(body, from, ctx);
            return;
        }
        if event.is::<ContextBatch>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(batch) = event.get_mut::<ContextBatch>() else {
                return;
            };
            let Ok(body) = batch.message.pop::<BatchBody>() else {
                return;
            };
            self.on_batch(body, ctx);
            return;
        }
        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeProfile, TestPlatform};
    use morpheus_appia::testing::Harness;

    use super::*;

    fn params(members: &[u32], interval: u64) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("publish_interval_ms".into(), interval.to_string());
        params
    }

    fn legacy_params(members: &[u32], interval: u64) -> LayerParams {
        let mut params = params(members, interval);
        params.insert("fanout".into(), "0".into());
        // Re-publish on every tick so the timer-driven tests below observe a
        // publication even when the context is unchanged.
        params.insert("refresh_every".into(), "1".into());
        params
    }

    fn publish_message(snapshot: &ContextSnapshot, ttl: u32) -> Message {
        let mut message = Message::new();
        message.push(snapshot);
        message.push(&ttl);
        message
    }

    fn fire_publish_timer(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        assert!(!timers.is_empty());
        harness.fire_timer(timers[0].1, platform);
    }

    #[test]
    fn init_publishes_the_local_context_legacy_floods_everyone() {
        let mut platform = TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(2)));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &legacy_params(&[1, 2, 3], 500),
            &mut platform,
        );

        // The initial publication happened during ChannelInit (drained by the
        // harness); trigger another one via the timer to observe it.
        fire_publish_timer(&mut cocaditem, &mut platform);

        let down = cocaditem.drain_down();
        let publish: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextPublish>())
            .collect();
        assert_eq!(publish.len(), 1);
        assert_eq!(
            publish[0].get::<ContextPublish>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(1), NodeId(3)])
        );
        assert!(
            down.iter().all(|event| !event.is::<ContextDigest>()),
            "legacy mode gossips no digests"
        );

        let up = cocaditem.drain_up();
        let updated: Vec<&Event> = up
            .iter()
            .filter(|event| event.is::<ContextUpdated>())
            .collect();
        assert_eq!(updated.len(), 1);
        assert_eq!(
            updated[0].get::<ContextUpdated>().unwrap().snapshot.node,
            NodeId(2)
        );
        assert_eq!(
            updated[0]
                .get::<ContextUpdated>()
                .unwrap()
                .snapshot
                .is_mobile(),
            Some(true)
        );
    }

    #[test]
    fn epidemic_mode_pushes_to_fanout_peers_and_gossips_digests() {
        let mut platform = TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(0)));
        let members: Vec<u32> = (0..12).collect();
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&members, 500),
            &mut platform,
        );

        // Drain the battery enough to re-trigger a significant change, then
        // fire the publish timer.
        let mut drained = NodeProfile::mobile_pda(NodeId(0));
        drained.battery_level = 0.5;
        platform.profile = drained;
        fire_publish_timer(&mut cocaditem, &mut platform);

        let down = cocaditem.drain_down();
        let publishes: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextPublish>())
            .collect();
        assert_eq!(publishes.len(), 1);
        let publish = publishes[0].get::<ContextPublish>().unwrap();
        let Dest::Nodes(targets) = &publish.header.dest else {
            panic!("publish must address a node list");
        };
        assert_eq!(targets.len(), 3, "push fan-out bounds the traffic");

        let digests: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextDigest>())
            .collect();
        assert_eq!(digests.len(), 1, "one digest round per interval");
        let digest = digests[0].get::<ContextDigest>().unwrap();
        let Dest::Nodes(digest_targets) = &digest.header.dest else {
            panic!("digest must address a node list");
        };
        assert_eq!(digest_targets.len(), 3);
        let body = digest.message.clone().pop::<DigestBody>().unwrap();
        assert_eq!(body.entries.len(), 1, "digest lists the known store");
        assert_eq!(body.entries[0].0, NodeId(0));
    }

    #[test]
    fn received_publications_are_reported_upward_and_forwarded_while_fresh() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..10).collect();
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&members, 1000),
            &mut platform,
        );

        let snapshot = ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(2)), 77);
        let up = cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                publish_message(&snapshot, 2),
            )),
            &mut platform,
        );
        let updated: Vec<&Event> = up
            .iter()
            .filter(|event| event.is::<ContextUpdated>())
            .collect();
        assert_eq!(updated.len(), 1);
        let received = &updated[0].get::<ContextUpdated>().unwrap().snapshot;
        assert_eq!(received.node, NodeId(2));
        assert_eq!(received.captured_at_ms, 77);

        // The fresh snapshot is forwarded epidemically with a decremented TTL.
        let down = cocaditem.drain_down();
        let forwards: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextPublish>())
            .collect();
        assert_eq!(forwards.len(), 1);
        let mut message = forwards[0].get::<ContextPublish>().unwrap().message.clone();
        assert_eq!(message.pop::<u32>().unwrap(), 1, "TTL decremented");

        // A duplicate is neither reported nor forwarded.
        let up = cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                publish_message(&snapshot, 2),
            )),
            &mut platform,
        );
        assert!(up.iter().all(|event| !event.is::<ContextUpdated>()));
        assert!(cocaditem
            .drain_down()
            .iter()
            .all(|event| !event.is::<ContextPublish>()));
    }

    #[test]
    fn digests_trigger_rate_limited_pulls_for_stale_entries() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&[1, 2, 3], 1000),
            &mut platform,
        );

        // Node 1 knows node 3's context at version 50.
        let known = ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(3)), 50);
        cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                publish_message(&known, 0),
            )),
            &mut platform,
        );
        cocaditem.drain_down();

        // Node 2's digest: it holds node 3 at version 90 (newer) and its own
        // context, which node 1 has never seen.
        let digest = |entries: Vec<(NodeId, u64)>| {
            let mut message = Message::new();
            message.push(&DigestBody { entries });
            message
        };
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                digest(vec![(NodeId(2), 10), (NodeId(3), 90)]),
            )),
            &mut platform,
        );

        let down = cocaditem.drain_down();
        let pulls: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextPull>())
            .collect();
        assert_eq!(pulls.len(), 1);
        let pull = pulls[0].get::<ContextPull>().unwrap();
        assert_eq!(pull.header.dest, Dest::Node(NodeId(2)));
        let body = pull.message.clone().pop::<PullBody>().unwrap();
        assert_eq!(body.nodes, vec![NodeId(2), NodeId(3)]);
        assert!(
            down.iter().all(|event| !event.is::<ContextPublish>()),
            "pull-only anti-entropy pushes nothing back"
        );

        // A second digest sender within the same interval may be pulled from
        // once more (redundancy halves the tail under loss: one lost answer
        // no longer costs a whole interval)...
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                digest(vec![(NodeId(2), 10), (NodeId(3), 90)]),
            )),
            &mut platform,
        );
        let second = cocaditem.drain_down();
        assert_eq!(
            second
                .iter()
                .filter(|event| event.is::<ContextPull>())
                .count(),
            1,
            "up to two digest senders per interval are pulled from"
        );
        assert_eq!(
            second
                .iter()
                .find_map(|event| event.get::<ContextPull>())
                .unwrap()
                .header
                .dest,
            Dest::Node(NodeId(3))
        );

        // ... but a third digest in the same interval is not.
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                digest(vec![(NodeId(2), 10), (NodeId(3), 90)]),
            )),
            &mut platform,
        );
        assert!(
            cocaditem
                .drain_down()
                .iter()
                .all(|event| !event.is::<ContextPull>()),
            "the per-interval pull budget is two"
        );

        // After a publish interval the pull budget resets (the answers may
        // have been lost on a degraded control channel).
        platform.advance(1000);
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                digest(vec![(NodeId(2), 10), (NodeId(3), 90)]),
            )),
            &mut platform,
        );
        assert_eq!(
            cocaditem
                .drain_down()
                .iter()
                .filter(|event| event.is::<ContextPull>())
                .count(),
            1,
            "lost answers are re-pulled on the next digest"
        );
    }

    #[test]
    fn digest_targets_are_biased_towards_stale_looking_peers() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..12).collect();
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&members, 500),
            &mut platform,
        );

        // Node 0 knows node 5's context at version 80.
        let known = ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(5)), 80);
        cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(5),
                Dest::Node(NodeId(0)),
                publish_message(&known, 0),
            )),
            &mut platform,
        );
        cocaditem.drain_down();

        // Node 7's digest only knows node 5 at version 10: node 7 is behind.
        let mut message = Message::new();
        message.push(&DigestBody {
            entries: vec![(NodeId(5), 10)],
        });
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(7),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        cocaditem.drain_down();

        // Every digest round now includes node 7 among its targets until it
        // catches up.
        for _ in 0..3 {
            fire_publish_timer(&mut cocaditem, &mut platform);
            let down = cocaditem.drain_down();
            let digest = down
                .iter()
                .find(|event| event.is::<ContextDigest>())
                .expect("digest round");
            let Dest::Nodes(targets) = &digest.get::<ContextDigest>().unwrap().header.dest else {
                panic!("digest must address a node list");
            };
            assert!(
                targets.contains(&NodeId(7)),
                "stale peer biased into the digest targets (got {targets:?})"
            );
        }

        // Once node 7's digest shows it caught up, the bias is dropped.
        let mut message = Message::new();
        message.push(&DigestBody {
            entries: vec![(NodeId(5), 80), (NodeId(0), 1)],
        });
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(7),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        // (No assertion on absence — targets are random — but the bias set
        // no longer forces node 7; this exercises the removal path.)
    }

    #[test]
    fn pull_requests_are_answered_with_one_batched_message() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&[1, 2, 3], 1000),
            &mut platform,
        );
        let known = ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(3)), 50);
        cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                publish_message(&known, 0),
            )),
            &mut platform,
        );
        cocaditem.drain_down();

        let mut message = Message::new();
        message.push(&PullBody {
            nodes: vec![NodeId(1), NodeId(3), NodeId(9)],
        });
        cocaditem.run_up(
            Event::up(ContextPull::new(NodeId(2), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        let down = cocaditem.drain_down();
        let answers: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ContextBatch>())
            .collect();
        assert_eq!(answers.len(), 1, "one batch per pull");
        let batch = answers[0].get::<ContextBatch>().unwrap();
        assert_eq!(batch.header.dest, Dest::Node(NodeId(2)));
        let body = batch.message.clone().pop::<BatchBody>().unwrap();
        let nodes: Vec<NodeId> = body.snapshots.iter().map(|s| s.node).collect();
        assert_eq!(
            nodes,
            vec![NodeId(1), NodeId(3)],
            "the local snapshot and node 3's are known; node 9 is not"
        );
    }

    #[test]
    fn batched_answers_are_stored_and_reported_upward() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&[1, 2, 3], 1000),
            &mut platform,
        );
        platform.take_deliveries();

        let mut message = Message::new();
        message.push(&BatchBody {
            snapshots: vec![
                ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(2)), 30),
                ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(3)), 40),
            ],
        });
        let up = cocaditem.run_up(
            Event::up(ContextBatch::new(NodeId(2), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        let updated: Vec<NodeId> = up
            .iter()
            .filter_map(|event| {
                event
                    .get::<ContextUpdated>()
                    .map(|update| update.snapshot.node)
            })
            .collect();
        assert_eq!(updated, vec![NodeId(2), NodeId(3)]);
        // The batch completed the membership: convergence is reported.
        assert!(platform
            .take_deliveries()
            .iter()
            .any(|delivery| matches!(delivery.kind, DeliveryKind::ContextConverged { nodes: 3 })));
    }

    #[test]
    fn covering_the_whole_membership_is_reported_once() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&[1, 2], 1000),
            &mut platform,
        );
        platform.take_deliveries();

        let snapshot = ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(2)), 10);
        cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                publish_message(&snapshot, 0),
            )),
            &mut platform,
        );
        let converged: Vec<_> = platform
            .take_deliveries()
            .into_iter()
            .filter(|delivery| matches!(delivery.kind, DeliveryKind::ContextConverged { nodes: 2 }))
            .collect();
        assert_eq!(converged.len(), 1);

        // A newer snapshot does not re-report convergence.
        let newer = ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(2)), 20);
        cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                publish_message(&newer, 0),
            )),
            &mut platform,
        );
        assert!(platform
            .take_deliveries()
            .iter()
            .all(|delivery| !matches!(delivery.kind, DeliveryKind::ContextConverged { .. })));
    }

    #[test]
    fn unchanged_context_is_not_republished_before_the_refresh_deadline() {
        let mut platform = TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(2)));
        let mut params = legacy_params(&[1, 2], 500);
        params.insert("refresh_every".into(), "5".into());
        let mut cocaditem = Harness::new(CocaditemLayer::default(), &params, &mut platform);

        // The initial (forced) publication happened at ChannelInit. With an
        // unchanged profile, the next few ticks stay silent on the network
        // but keep reporting the local context upward.
        for _ in 0..3 {
            fire_publish_timer(&mut cocaditem, &mut platform);
            let down = cocaditem.drain_down();
            assert!(down.iter().all(|event| !event.is::<ContextPublish>()));
            assert!(cocaditem
                .drain_up()
                .iter()
                .any(|event| event.is::<ContextUpdated>()));
        }

        // A significant battery drop is disseminated immediately.
        let mut drained = NodeProfile::mobile_pda(NodeId(2));
        drained.battery_level = 0.5;
        platform.profile = drained;
        fire_publish_timer(&mut cocaditem, &mut platform);
        assert!(cocaditem
            .drain_down()
            .iter()
            .any(|event| event.is::<ContextPublish>()));
    }

    #[test]
    fn malformed_publications_are_dropped() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&[1, 2], 1000),
            &mut platform,
        );
        let up = cocaditem.run_up(
            Event::up(ContextPublish::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        assert!(up.iter().all(|event| !event.is::<ContextUpdated>()));

        // Malformed digests and pulls are dropped too.
        cocaditem.run_up(
            Event::up(ContextDigest::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        cocaditem.run_up(
            Event::up(ContextPull::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        assert!(cocaditem.drain_down().is_empty());
    }

    #[test]
    fn view_install_updates_the_dissemination_targets() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &legacy_params(&[1, 2], 300),
            &mut platform,
        );
        cocaditem.run_down(
            Event::down(ViewInstall {
                view: morpheus_groupcomm::View::new(1, vec![NodeId(1), NodeId(2), NodeId(5)]),
            }),
            &mut platform,
        );
        fire_publish_timer(&mut cocaditem, &mut platform);
        let down = cocaditem.drain_down();
        let publish = down
            .iter()
            .find(|event| event.is::<ContextPublish>())
            .unwrap();
        assert_eq!(
            publish.get::<ContextPublish>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2), NodeId(5)])
        );
    }

    #[test]
    fn digest_bodies_roundtrip_and_reject_adversarial_counts() {
        let body = DigestBody {
            entries: vec![(NodeId(1), 10), (NodeId(2), 20)],
        };
        assert_eq!(DigestBody::from_bytes(&body.to_bytes()).unwrap(), body);
        let pull = PullBody {
            nodes: vec![NodeId(4)],
        };
        assert_eq!(PullBody::from_bytes(&pull.to_bytes()).unwrap(), pull);

        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        w.put_u64(1);
        assert!(DigestBody::from_bytes(&w.finish()).is_err());
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        assert!(PullBody::from_bytes(&w.finish()).is_err());
    }
    #[test]
    fn expelled_members_get_no_anti_entropy_replies() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut cocaditem = Harness::new(
            CocaditemLayer::default(),
            &params(&[1, 2, 3], 1000),
            &mut platform,
        );
        cocaditem.run_down(
            Event::down(ViewInstall {
                view: morpheus_groupcomm::View::new(2, vec![NodeId(1), NodeId(2)]),
            }),
            &mut platform,
        );
        cocaditem.drain_down();

        // The expelled node 3 advertises a version node 1 has never seen:
        // no pull goes back to it.
        let mut digest = Message::new();
        digest.push(&DigestBody {
            entries: vec![(NodeId(2), 90)],
        });
        cocaditem.run_up(
            Event::up(ContextDigest::new(NodeId(3), Dest::Node(NodeId(1)), digest)),
            &mut platform,
        );
        assert!(
            cocaditem
                .drain_down()
                .iter()
                .all(|event| !event.is::<ContextPull>()),
            "an expelled member's digest triggers no pull"
        );

        // Its pull for the (present) local snapshot is not answered either,
        // while the same pull from a live member is.
        let pull_from = |from: u32| {
            let mut message = Message::new();
            message.push(&PullBody {
                nodes: vec![NodeId(1)],
            });
            Event::up(ContextPull::new(
                NodeId(from),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        cocaditem.run_up(pull_from(3), &mut platform);
        assert!(
            cocaditem
                .drain_down()
                .iter()
                .all(|event| !event.is::<ContextBatch>()),
            "snapshots are not served to expelled members"
        );
        cocaditem.run_up(pull_from(2), &mut platform);
        assert_eq!(
            cocaditem
                .drain_down()
                .iter()
                .filter(|event| event.is::<ContextBatch>())
                .count(),
            1,
            "a current member's identical pull is answered"
        );
    }
}
