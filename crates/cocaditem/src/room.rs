//! Per-room context: the slice of the distributed context one room shard
//! adapts against.
//!
//! The group-wide [`GlobalContext`](crate) drives whole-stack
//! reconfiguration; a room-sharded overlay adapts at a finer grain — each
//! room picks its own dissemination stack from the context of *its own
//! members only*. [`RoomContext`] is that slice: room size, observed
//! publish rate, and the error/mobility summary of the subscribed members,
//! extracted from the same [`ContextStore`] the dissemination layer
//! already maintains.

use morpheus_appia::platform::NodeId;

use crate::store::ContextStore;

/// The context one room shard's stack choice is evaluated against.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomContext {
    /// The room id.
    pub room: u32,
    /// Number of subscribed members.
    pub size: usize,
    /// Observed publish rate into the room, messages per minute.
    pub publish_rate_per_min: f64,
    /// Worst error rate reported by any subscribed member (`0.0` when no
    /// member published one).
    pub max_error_rate: f64,
    /// Whether any subscribed member is mobile.
    pub has_mobile: bool,
    /// How many subscribed members have a snapshot in the store.
    pub known_members: usize,
}

impl RoomContext {
    /// Builds the room slice from the shared context store. Members without
    /// a snapshot count toward `size` but not toward the summaries — the
    /// room can still be classified before full context coverage.
    pub fn from_store(
        room: u32,
        members: &[NodeId],
        store: &ContextStore,
        publish_rate_per_min: f64,
    ) -> Self {
        let mut max_error_rate = 0.0f64;
        let mut has_mobile = false;
        let mut known_members = 0usize;
        for member in members {
            let Some(snapshot) = store.get(*member) else {
                continue;
            };
            known_members += 1;
            if let Some(rate) = snapshot.error_rate() {
                if rate > max_error_rate {
                    max_error_rate = rate;
                }
            }
            if snapshot.is_mobile() == Some(true) {
                has_mobile = true;
            }
        }
        Self {
            room,
            size: members.len(),
            publish_rate_per_min,
            max_error_rate,
            has_mobile,
            known_members,
        }
    }

    /// A synthetic room context (tests, planning ahead of live context).
    pub fn synthetic(room: u32, size: usize, publish_rate_per_min: f64) -> Self {
        Self {
            room,
            size,
            publish_rate_per_min,
            max_error_rate: 0.0,
            has_mobile: false,
            known_members: size,
        }
    }

    /// Whether every subscribed member has published context.
    pub fn is_complete(&self) -> bool {
        self.known_members >= self.size
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::NodeProfile;

    use crate::context::{ContextKey, ContextSnapshot, ContextValue};

    use super::*;

    #[test]
    fn room_slice_summarises_only_its_members() {
        let mut store = ContextStore::new();
        let mut lossy = ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(0)), 1);
        lossy.set(ContextKey::ErrorRate, ContextValue::Number(0.2));
        store.update(lossy);
        store.update(ContextSnapshot::from_profile(
            &NodeProfile::mobile_pda(NodeId(1)),
            1,
        ));
        store.update(ContextSnapshot::from_profile(
            &NodeProfile::fixed_pc(NodeId(2)),
            1,
        ));

        // Room over nodes 1 and 2: the lossy node 0 is not a member, so its
        // error rate must not leak into the room summary.
        let ctx = RoomContext::from_store(7, &[NodeId(1), NodeId(2)], &store, 12.0);
        assert_eq!(ctx.room, 7);
        assert_eq!(ctx.size, 2);
        assert!(ctx.has_mobile);
        assert_eq!(ctx.max_error_rate, 0.0);
        assert!(ctx.is_complete());

        // Room including node 0 sees the error rate; an unknown member
        // makes the slice incomplete but still usable.
        let ctx = RoomContext::from_store(8, &[NodeId(0), NodeId(9)], &store, 1.0);
        assert!(ctx.max_error_rate >= 0.2);
        assert!(!ctx.has_mobile);
        assert_eq!(ctx.known_members, 1);
        assert!(!ctx.is_complete());
    }
}
