//! A topic-based publish/subscribe broker.
//!
//! The prototype's Cocaditem exposes context information through a
//! topic-based publish/subscribe interface; the control component subscribes
//! to the topics it needs. This broker is node-local: remote dissemination is
//! performed by the [`crate::dissemination`] layer, which republishes
//! received snapshots into the local broker.

use std::collections::{BTreeMap, VecDeque};

use crate::context::ContextSnapshot;

/// A pub/sub topic. Topic names are dot-separated (e.g. `context.battery`);
/// a subscription pattern may end in `*` to match a whole prefix
/// (`context.link.*`) or be the lone `*` to match everything.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Topic(pub String);

impl Topic {
    /// Creates a topic from a name.
    pub fn new(name: impl Into<String>) -> Self {
        Topic(name.into())
    }

    /// Whether a concrete topic name matches this (possibly wildcard) pattern.
    pub fn matches(&self, concrete: &str) -> bool {
        if self.0 == "*" {
            return true;
        }
        if let Some(prefix) = self.0.strip_suffix(".*") {
            return concrete == prefix || concrete.starts_with(&format!("{prefix}."));
        }
        self.0 == concrete
    }
}

/// Handle identifying one subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subscription(u64);

/// A published item: the topic it was published under plus the snapshot it
/// came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Publication {
    /// Concrete topic name.
    pub topic: String,
    /// The snapshot carrying the value.
    pub snapshot: ContextSnapshot,
}

/// A node-local topic-based publish/subscribe broker.
#[derive(Debug, Default)]
pub struct Broker {
    next_id: u64,
    // BTreeMaps, not HashMaps: `publish` iterates the subscription table,
    // and fan-out order must not depend on hash state (det:map-iter).
    patterns: BTreeMap<Subscription, Vec<Topic>>,
    queues: BTreeMap<Subscription, VecDeque<Publication>>,
    published: u64,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes to a set of topic patterns.
    pub fn subscribe(&mut self, patterns: Vec<Topic>) -> Subscription {
        self.next_id += 1;
        let id = Subscription(self.next_id);
        self.patterns.insert(id, patterns);
        self.queues.insert(id, VecDeque::new());
        id
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&mut self, subscription: Subscription) {
        self.patterns.remove(&subscription);
        self.queues.remove(&subscription);
    }

    /// Publishes a snapshot under a concrete topic, fanning it out to every
    /// matching subscription queue.
    pub fn publish(&mut self, topic: &str, snapshot: &ContextSnapshot) {
        self.published += 1;
        for (subscription, patterns) in &self.patterns {
            if patterns.iter().any(|pattern| pattern.matches(topic)) {
                if let Some(queue) = self.queues.get_mut(subscription) {
                    queue.push_back(Publication {
                        topic: topic.to_string(),
                        snapshot: snapshot.clone(),
                    });
                }
            }
        }
    }

    /// Publishes every attribute of a snapshot under its own topic.
    pub fn publish_snapshot(&mut self, snapshot: &ContextSnapshot) {
        let keys: Vec<_> = snapshot.values.keys().copied().collect();
        for key in keys {
            self.publish(key.topic_name(), snapshot);
        }
    }

    /// Drains the pending publications of a subscription.
    pub fn poll(&mut self, subscription: Subscription) -> Vec<Publication> {
        self.queues
            .get_mut(&subscription)
            .map(|queue| queue.drain(..).collect())
            .unwrap_or_default()
    }

    /// Total number of publish operations performed.
    pub fn published_count(&self) -> u64 {
        self.published
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeId, NodeProfile};

    use super::*;

    fn snapshot() -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(1)), 5)
    }

    #[test]
    fn exact_topic_matching() {
        let topic = Topic::new("context.battery");
        assert!(topic.matches("context.battery"));
        assert!(!topic.matches("context.link.quality"));
    }

    #[test]
    fn wildcard_topic_matching() {
        let link = Topic::new("context.link.*");
        assert!(link.matches("context.link.quality"));
        assert!(link.matches("context.link.error-rate"));
        assert!(!link.matches("context.battery"));
        assert!(Topic::new("*").matches("anything.at.all"));
    }

    #[test]
    fn subscribers_receive_matching_publications_only() {
        let mut broker = Broker::new();
        let battery = broker.subscribe(vec![Topic::new("context.battery")]);
        let everything = broker.subscribe(vec![Topic::new("*")]);

        broker.publish("context.battery", &snapshot());
        broker.publish("context.link.quality", &snapshot());

        assert_eq!(broker.poll(battery).len(), 1);
        assert_eq!(broker.poll(everything).len(), 2);
        // Queues drain on poll.
        assert!(broker.poll(battery).is_empty());
    }

    #[test]
    fn publish_snapshot_fans_out_per_attribute() {
        let mut broker = Broker::new();
        let all = broker.subscribe(vec![Topic::new("context.*")]);
        broker.publish_snapshot(&snapshot());
        let publications = broker.poll(all);
        assert_eq!(publications.len(), crate::context::ContextKey::ALL.len());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut broker = Broker::new();
        let subscription = broker.subscribe(vec![Topic::new("*")]);
        broker.unsubscribe(subscription);
        broker.publish("context.battery", &snapshot());
        assert!(broker.poll(subscription).is_empty());
        assert_eq!(broker.published_count(), 1);
    }
}
