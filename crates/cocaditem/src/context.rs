//! Context attributes and snapshots.

use std::collections::BTreeMap;

use morpheus_appia::platform::{DeviceClass, NodeId, NodeProfile};
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// The context attributes the prototype captures.
///
/// These mirror the paper's notion of *system context*: "information that can
/// be directly inferred from network interface cards or operating system
/// calls", such as available bandwidth or error rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ContextKey {
    /// The device class (fixed PC, laptop, PDA, phone).
    DeviceClass,
    /// Remaining battery fraction in `[0, 1]`.
    BatteryLevel,
    /// Link quality in `[0, 1]`.
    LinkQuality,
    /// Nominal bandwidth of the local link in kbit/s.
    BandwidthKbps,
    /// Observed message loss rate in `[0, 1]`.
    ErrorRate,
    /// Whether native multicast is available on the local segment.
    NativeMulticast,
}

impl ContextKey {
    /// Every key, in a stable order.
    pub const ALL: [ContextKey; 6] = [
        ContextKey::DeviceClass,
        ContextKey::BatteryLevel,
        ContextKey::LinkQuality,
        ContextKey::BandwidthKbps,
        ContextKey::ErrorRate,
        ContextKey::NativeMulticast,
    ];

    /// The pub/sub topic name the key is published under.
    pub fn topic_name(self) -> &'static str {
        match self {
            ContextKey::DeviceClass => "context.device",
            ContextKey::BatteryLevel => "context.battery",
            ContextKey::LinkQuality => "context.link.quality",
            ContextKey::BandwidthKbps => "context.link.bandwidth",
            ContextKey::ErrorRate => "context.link.error-rate",
            ContextKey::NativeMulticast => "context.link.native-multicast",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ContextKey::DeviceClass => 0,
            ContextKey::BatteryLevel => 1,
            ContextKey::LinkQuality => 2,
            ContextKey::BandwidthKbps => 3,
            ContextKey::ErrorRate => 4,
            ContextKey::NativeMulticast => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => ContextKey::DeviceClass,
            1 => ContextKey::BatteryLevel,
            2 => ContextKey::LinkQuality,
            3 => ContextKey::BandwidthKbps,
            4 => ContextKey::ErrorRate,
            5 => ContextKey::NativeMulticast,
            other => return Err(WireError::InvalidTag(other)),
        })
    }
}

impl Wire for ContextKey {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        ContextKey::from_tag(r.get_u8()?)
    }
}

/// The value of a context attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContextValue {
    /// A numeric value.
    Number(f64),
    /// A boolean flag.
    Flag(bool),
    /// A device class.
    Device(DeviceClass),
}

impl ContextValue {
    /// The numeric value, if the attribute is numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ContextValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The boolean value, if the attribute is a flag.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            ContextValue::Flag(value) => Some(*value),
            _ => None,
        }
    }

    /// The device class, if the attribute is one.
    pub fn as_device(&self) -> Option<DeviceClass> {
        match self {
            ContextValue::Device(class) => Some(*class),
            _ => None,
        }
    }
}

impl Wire for ContextValue {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ContextValue::Number(value) => {
                w.put_u8(0);
                w.put_f64(*value);
            }
            ContextValue::Flag(value) => {
                w.put_u8(1);
                w.put_bool(*value);
            }
            ContextValue::Device(class) => {
                w.put_u8(2);
                class.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => ContextValue::Number(r.get_f64()?),
            1 => ContextValue::Flag(r.get_bool()?),
            2 => ContextValue::Device(DeviceClass::decode(r)?),
            other => return Err(WireError::InvalidTag(other)),
        })
    }
}

/// The context of one node at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSnapshot {
    /// The node the snapshot describes.
    pub node: NodeId,
    /// Local time at which it was captured, in milliseconds.
    pub captured_at_ms: u64,
    /// The captured attributes.
    pub values: BTreeMap<ContextKey, ContextValue>,
}

impl ContextSnapshot {
    /// Creates an empty snapshot.
    pub fn new(node: NodeId, captured_at_ms: u64) -> Self {
        Self {
            node,
            captured_at_ms,
            values: BTreeMap::new(),
        }
    }

    /// Builds a snapshot directly from a node profile (what the retrievers
    /// produce collectively).
    pub fn from_profile(profile: &NodeProfile, captured_at_ms: u64) -> Self {
        let mut snapshot = Self::new(profile.node_id, captured_at_ms);
        snapshot.set(
            ContextKey::DeviceClass,
            ContextValue::Device(profile.device_class),
        );
        snapshot.set(
            ContextKey::BatteryLevel,
            ContextValue::Number(profile.battery_level),
        );
        snapshot.set(
            ContextKey::LinkQuality,
            ContextValue::Number(profile.link_quality),
        );
        snapshot.set(
            ContextKey::BandwidthKbps,
            ContextValue::Number(profile.bandwidth_kbps as f64),
        );
        snapshot.set(
            ContextKey::ErrorRate,
            ContextValue::Number(profile.error_rate),
        );
        snapshot.set(
            ContextKey::NativeMulticast,
            ContextValue::Flag(profile.has_native_multicast),
        );
        snapshot
    }

    /// Sets one attribute.
    pub fn set(&mut self, key: ContextKey, value: ContextValue) {
        self.values.insert(key, value);
    }

    /// Reads one attribute.
    pub fn get(&self, key: ContextKey) -> Option<&ContextValue> {
        self.values.get(&key)
    }

    /// The device class, if captured.
    pub fn device_class(&self) -> Option<DeviceClass> {
        self.get(ContextKey::DeviceClass)
            .and_then(ContextValue::as_device)
    }

    /// The battery level, if captured.
    pub fn battery_level(&self) -> Option<f64> {
        self.get(ContextKey::BatteryLevel)
            .and_then(ContextValue::as_number)
    }

    /// The observed error rate, if captured.
    pub fn error_rate(&self) -> Option<f64> {
        self.get(ContextKey::ErrorRate)
            .and_then(ContextValue::as_number)
    }

    /// Whether the node is a mobile device, if the class was captured.
    pub fn is_mobile(&self) -> Option<bool> {
        self.device_class().map(DeviceClass::is_mobile)
    }
}

impl Wire for ContextSnapshot {
    fn encode(&self, w: &mut WireWriter) {
        self.node.encode(w);
        w.put_u64(self.captured_at_ms);
        w.put_u32(self.values.len() as u32);
        for (key, value) in &self.values {
            key.encode(w);
            value.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let node = NodeId::decode(r)?;
        let captured_at_ms = r.get_u64()?;
        let count = r.get_u32()? as usize;
        // An adversarial length prefix cannot claim more entries than the
        // remaining bytes could possibly hold (every entry is at least one
        // key byte plus one value-tag byte): reject it up front instead of
        // looping until the reader runs dry.
        if count > r.remaining() / 2 {
            return Err(WireError::Malformed("context entry count exceeds payload"));
        }
        let mut values = BTreeMap::new();
        for _ in 0..count {
            let key = ContextKey::decode(r)?;
            let value = ContextValue::decode(r)?;
            values.insert(key, value);
        }
        Ok(Self {
            node,
            captured_at_ms,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_from_profile_captures_every_key() {
        let profile = NodeProfile::mobile_pda(NodeId(3));
        let snapshot = ContextSnapshot::from_profile(&profile, 42);
        assert_eq!(snapshot.node, NodeId(3));
        assert_eq!(snapshot.captured_at_ms, 42);
        for key in ContextKey::ALL {
            assert!(snapshot.get(key).is_some(), "missing {key:?}");
        }
        assert_eq!(snapshot.device_class(), Some(DeviceClass::MobilePda));
        assert_eq!(snapshot.is_mobile(), Some(true));
        assert_eq!(snapshot.battery_level(), Some(1.0));
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let profile = NodeProfile::fixed_pc(NodeId(1));
        let snapshot = ContextSnapshot::from_profile(&profile, 100);
        let decoded = ContextSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn value_accessors_are_type_checked() {
        assert_eq!(ContextValue::Number(0.5).as_number(), Some(0.5));
        assert_eq!(ContextValue::Number(0.5).as_flag(), None);
        assert_eq!(ContextValue::Flag(true).as_flag(), Some(true));
        assert_eq!(
            ContextValue::Device(DeviceClass::FixedPc).as_device(),
            Some(DeviceClass::FixedPc)
        );
        assert_eq!(ContextValue::Device(DeviceClass::FixedPc).as_number(), None);
    }

    #[test]
    fn adversarial_entry_counts_are_rejected() {
        // A snapshot whose count field claims u32::MAX entries over an
        // almost-empty payload must fail fast instead of looping.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_be_bytes()); // node id
        bytes.extend_from_slice(&42u64.to_be_bytes()); // captured_at_ms
        bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // hostile count
        bytes.extend_from_slice(&[0, 0]); // two stray bytes
        assert!(ContextSnapshot::from_bytes(&bytes).is_err());

        // A count that overstates the (non-empty) payload is also rejected.
        let profile = NodeProfile::fixed_pc(NodeId(1));
        let valid = ContextSnapshot::from_profile(&profile, 7).to_bytes();
        let mut inflated = valid.to_vec();
        // count sits after node id (4 bytes) + timestamp (8 bytes)
        inflated[12..16].copy_from_slice(&10_000u32.to_be_bytes());
        assert!(ContextSnapshot::from_bytes(&inflated).is_err());
    }

    #[test]
    fn truncated_snapshots_fail_cleanly() {
        let profile = NodeProfile::mobile_pda(NodeId(2));
        let valid = ContextSnapshot::from_profile(&profile, 9).to_bytes();
        for len in 0..valid.len() {
            assert!(
                ContextSnapshot::from_bytes(&valid[..len]).is_err(),
                "truncation at {len} must not decode"
            );
        }
        assert!(ContextSnapshot::from_bytes(&valid).is_ok());
    }

    #[test]
    fn random_bytes_never_panic_the_decoder() {
        // Fuzz-style: SplitMix64-driven byte soup must only ever produce
        // Ok/Err, never a panic or a huge allocation.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for round in 0..500 {
            let len = (round % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = ContextSnapshot::from_bytes(&bytes);
        }
    }

    #[test]
    fn keys_have_distinct_topics_and_tags() {
        let mut topics: Vec<&str> = ContextKey::ALL.iter().map(|key| key.topic_name()).collect();
        topics.sort_unstable();
        topics.dedup();
        assert_eq!(topics.len(), ContextKey::ALL.len());
        for key in ContextKey::ALL {
            let decoded = ContextKey::from_bytes(&key.to_bytes()).unwrap();
            assert_eq!(decoded, key);
        }
    }
}
