//! Context retrievers: sampling the locally observable system context.

use morpheus_appia::platform::NodeProfile;

use crate::context::{ContextKey, ContextValue};

/// A source of one or more context attributes.
///
/// Retrievers are intentionally simple: they read from the node profile the
/// platform exposes (which, in the simulated testbed, reflects the simulated
/// battery, link and topology state). A production deployment would implement
/// retrievers over `/sys`, `ioctl`s or OS APIs, as the paper suggests.
pub trait ContextRetriever {
    /// A short name identifying the retriever.
    fn name(&self) -> &'static str;

    /// The keys this retriever produces.
    fn keys(&self) -> Vec<ContextKey>;

    /// Samples the attributes from the current node profile.
    fn retrieve(&self, profile: &NodeProfile) -> Vec<(ContextKey, ContextValue)>;
}

/// Retrieves the device class.
pub struct DeviceRetriever;

impl ContextRetriever for DeviceRetriever {
    fn name(&self) -> &'static str {
        "device"
    }

    fn keys(&self) -> Vec<ContextKey> {
        vec![ContextKey::DeviceClass]
    }

    fn retrieve(&self, profile: &NodeProfile) -> Vec<(ContextKey, ContextValue)> {
        vec![(
            ContextKey::DeviceClass,
            ContextValue::Device(profile.device_class),
        )]
    }
}

/// Retrieves the battery level.
pub struct BatteryRetriever;

impl ContextRetriever for BatteryRetriever {
    fn name(&self) -> &'static str {
        "battery"
    }

    fn keys(&self) -> Vec<ContextKey> {
        vec![ContextKey::BatteryLevel]
    }

    fn retrieve(&self, profile: &NodeProfile) -> Vec<(ContextKey, ContextValue)> {
        vec![(
            ContextKey::BatteryLevel,
            ContextValue::Number(profile.battery_level),
        )]
    }
}

/// Retrieves link-related attributes: quality, bandwidth, error rate and
/// native multicast availability.
pub struct LinkRetriever;

impl ContextRetriever for LinkRetriever {
    fn name(&self) -> &'static str {
        "link"
    }

    fn keys(&self) -> Vec<ContextKey> {
        vec![
            ContextKey::LinkQuality,
            ContextKey::BandwidthKbps,
            ContextKey::ErrorRate,
            ContextKey::NativeMulticast,
        ]
    }

    fn retrieve(&self, profile: &NodeProfile) -> Vec<(ContextKey, ContextValue)> {
        vec![
            (
                ContextKey::LinkQuality,
                ContextValue::Number(profile.link_quality),
            ),
            (
                ContextKey::BandwidthKbps,
                ContextValue::Number(profile.bandwidth_kbps as f64),
            ),
            (
                ContextKey::ErrorRate,
                ContextValue::Number(profile.error_rate),
            ),
            (
                ContextKey::NativeMulticast,
                ContextValue::Flag(profile.has_native_multicast),
            ),
        ]
    }
}

/// The default retriever set used by the prototype.
pub fn default_retrievers() -> Vec<Box<dyn ContextRetriever>> {
    vec![
        Box::new(DeviceRetriever),
        Box::new(BatteryRetriever),
        Box::new(LinkRetriever),
    ]
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{DeviceClass, NodeId};

    use super::*;
    use crate::context::ContextSnapshot;

    #[test]
    fn default_retrievers_cover_every_key() {
        let profile = NodeProfile::mobile_pda(NodeId(2));
        let mut snapshot = ContextSnapshot::new(NodeId(2), 0);
        for retriever in default_retrievers() {
            for (key, value) in retriever.retrieve(&profile) {
                snapshot.set(key, value);
            }
        }
        for key in ContextKey::ALL {
            assert!(snapshot.get(key).is_some(), "retrievers missed {key:?}");
        }
    }

    #[test]
    fn retrievers_report_their_keys() {
        assert_eq!(DeviceRetriever.keys(), vec![ContextKey::DeviceClass]);
        assert_eq!(BatteryRetriever.keys(), vec![ContextKey::BatteryLevel]);
        assert_eq!(LinkRetriever.keys().len(), 4);
        assert_eq!(DeviceRetriever.name(), "device");
    }

    #[test]
    fn device_retriever_reflects_the_profile() {
        let profile = NodeProfile::fixed_pc(NodeId(1));
        let values = DeviceRetriever.retrieve(&profile);
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].1.as_device(), Some(DeviceClass::FixedPc));
    }
}
