//! # morpheus-cocaditem
//!
//! The **Co**ntext **Ca**pture and **Di**ssemination Sys**tem** (Cocaditem)
//! of the Morpheus framework.
//!
//! Cocaditem is a distributed component running on every node. It is made of:
//!
//! * a set of **context retrievers** ([`retriever`]) that sample the locally
//!   observable system context (device class, battery, link quality, error
//!   rate, bandwidth — the paper's "system context");
//! * a **topic-based publish/subscribe** facade ([`pubsub`]) through which
//!   interested components (notably the Core control subsystem) subscribe to
//!   context topics;
//! * a **dissemination layer** ([`dissemination`]) that periodically
//!   multicasts the locally collected context on the group communication
//!   control channel and maintains a store of every participant's last
//!   published snapshot ([`store`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod context;
pub mod dissemination;
pub mod pubsub;
pub mod retriever;
pub mod room;
pub mod store;

pub use context::{ContextKey, ContextSnapshot, ContextValue};
pub use dissemination::{
    register_cocaditem, BatchBody, ContextBatch, ContextDigest, ContextPublish, ContextPull,
    ContextUpdated, DigestBody, PullBody, COCADITEM_LAYER,
};
pub use pubsub::{Broker, Subscription, Topic};
pub use retriever::{default_retrievers, ContextRetriever};
pub use room::RoomContext;
pub use store::ContextStore;
