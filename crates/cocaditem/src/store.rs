//! The distributed context store: the last published snapshot of every
//! participant.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use morpheus_appia::platform::{DeviceClass, NodeId};
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};
use morpheus_groupcomm::recovery::StateSection;

use crate::context::ContextSnapshot;

/// A table of the most recent context snapshot received from each node.
#[derive(Debug, Clone, Default)]
pub struct ContextStore {
    snapshots: BTreeMap<NodeId, ContextSnapshot>,
}

impl ContextStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes a node's snapshot. Older snapshots (by capture
    /// time) never overwrite newer ones. Returns whether the snapshot was
    /// stored — i.e. whether it was *news* (a node not seen before, or a
    /// strictly newer capture), which is what decides whether an epidemic
    /// forwarder should keep spreading it.
    pub fn update(&mut self, snapshot: ContextSnapshot) -> bool {
        match self.snapshots.get(&snapshot.node) {
            Some(existing) if existing.captured_at_ms > snapshot.captured_at_ms => false,
            Some(existing) if existing.captured_at_ms == snapshot.captured_at_ms => {
                // Same version: last writer wins (a local re-sample within
                // one millisecond must not be ignored), but it is not news —
                // an epidemic forwarder receiving it must not spread it again.
                self.snapshots.insert(snapshot.node, snapshot);
                false
            }
            _ => {
                self.snapshots.insert(snapshot.node, snapshot);
                true
            }
        }
    }

    /// The capture time of a node's stored snapshot — the version the digest
    /// anti-entropy protocol compares (capture times are monotonic per node).
    pub fn version_of(&self, node: NodeId) -> Option<u64> {
        self.snapshots
            .get(&node)
            .map(|snapshot| snapshot.captured_at_ms)
    }

    /// The `(node, version)` digest of the whole store, in node-id order.
    pub fn digest(&self) -> Vec<(NodeId, u64)> {
        self.snapshots
            .iter()
            .map(|(node, snapshot)| (*node, snapshot.captured_at_ms))
            .collect()
    }

    /// Drops every node not in `members` (e.g. after a view change).
    pub fn retain_members(&mut self, members: &[NodeId]) {
        self.snapshots.retain(|node, _| members.contains(node));
    }

    /// Removes nodes that have not published for `max_age_ms` relative to `now_ms`.
    pub fn evict_stale(&mut self, now_ms: u64, max_age_ms: u64) {
        self.snapshots
            .retain(|_, snapshot| now_ms.saturating_sub(snapshot.captured_at_ms) <= max_age_ms);
    }

    /// Removes a node explicitly (e.g. when it leaves the view).
    pub fn remove(&mut self, node: NodeId) {
        self.snapshots.remove(&node);
    }

    /// The snapshot of one node, if known.
    pub fn get(&self, node: NodeId) -> Option<&ContextSnapshot> {
        self.snapshots.get(&node)
    }

    /// Every known snapshot, in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &ContextSnapshot)> {
        self.snapshots.iter()
    }

    /// Number of nodes with a known snapshot.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no snapshots are known.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Nodes whose last snapshot reports a mobile device class.
    pub fn mobile_nodes(&self) -> Vec<NodeId> {
        self.snapshots
            .iter()
            .filter(|(_, snapshot)| snapshot.is_mobile() == Some(true))
            .map(|(node, _)| *node)
            .collect()
    }

    /// Nodes whose last snapshot reports a fixed device class.
    pub fn fixed_nodes(&self) -> Vec<NodeId> {
        self.snapshots
            .iter()
            .filter(|(_, snapshot)| snapshot.is_mobile() == Some(false))
            .map(|(node, _)| *node)
            .collect()
    }

    /// Whether the known participants mix fixed and mobile devices — the
    /// condition that triggers the Mecho adaptation in the paper.
    pub fn is_hybrid(&self) -> bool {
        !self.mobile_nodes().is_empty() && !self.fixed_nodes().is_empty()
    }

    /// The highest error rate reported by any participant.
    pub fn max_error_rate(&self) -> f64 {
        self.snapshots
            .values()
            .filter_map(ContextSnapshot::error_rate)
            .fold(0.0, f64::max)
    }

    /// The lowest battery level reported by any participant.
    pub fn min_battery_level(&self) -> f64 {
        self.snapshots
            .values()
            .filter_map(ContextSnapshot::battery_level)
            .fold(1.0, f64::min)
    }

    /// The fixed node best suited to act as the Mecho relay: fixed device
    /// class first, then highest resource score, then lowest node id as a
    /// deterministic tie-breaker.
    pub fn best_relay(&self) -> Option<NodeId> {
        self.snapshots
            .iter()
            .filter_map(|(node, snapshot)| snapshot.device_class().map(|class| (*node, class)))
            .filter(|(_, class)| class.is_fixed())
            .min_by_key(|(node, class)| (std::cmp::Reverse(class.resource_score()), node.0))
            .map(|(node, _)| node)
    }

    /// The node with the most remaining battery (used when every participant
    /// is mobile and one of them must carry extra load).
    pub fn best_battery_node(&self) -> Option<NodeId> {
        self.snapshots
            .iter()
            .filter_map(|(node, snapshot)| snapshot.battery_level().map(|level| (*node, level)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(node, _)| node)
    }

    /// Convenience: the device class of one node, if known.
    pub fn device_class_of(&self, node: NodeId) -> Option<DeviceClass> {
        self.get(node).and_then(ContextSnapshot::device_class)
    }

    /// Serialises every snapshot — the rejoin state-transfer export.
    pub fn export_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.snapshots.len() as u32);
        for snapshot in self.snapshots.values() {
            snapshot.encode(&mut w);
        }
        w.finish().to_vec()
    }

    /// Merges an exported store into this one ([`ContextStore::update`]
    /// semantics: newer snapshots win, stale ones are ignored). Returns the
    /// number of snapshots that were news.
    pub fn import_merge(&mut self, bytes: &[u8]) -> Result<usize, WireError> {
        let mut r = WireReader::new(bytes);
        let count = r.get_u32()? as usize;
        // A snapshot encodes to at least 16 bytes; reject adversarial counts
        // before allocating.
        if count > r.remaining() / 16 {
            return Err(WireError::Malformed("context store count exceeds payload"));
        }
        let mut merged = 0;
        for _ in 0..count {
            let snapshot = ContextSnapshot::decode(&mut r)?;
            if self.update(snapshot) {
                merged += 1;
            }
        }
        Ok(merged)
    }
}

/// The context store as a rejoin state-transfer section: the donor exports
/// its replicated store, the restarted node merges it — so a rejoiner knows
/// every participant's context immediately instead of waiting for the digest
/// anti-entropy to repopulate it from scratch.
pub struct ContextStoreSection {
    store: Rc<RefCell<ContextStore>>,
}

impl ContextStoreSection {
    /// Wraps the node's shared context store.
    pub fn new(store: Rc<RefCell<ContextStore>>) -> Self {
        Self { store }
    }
}

impl StateSection for ContextStoreSection {
    fn name(&self) -> &str {
        "cocaditem-store"
    }

    fn export(&self) -> Vec<u8> {
        self.store.borrow().export_bytes()
    }

    fn install(&self, bytes: &[u8]) -> bool {
        self.store.borrow_mut().import_merge(bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::NodeProfile;

    use super::*;
    use crate::context::{ContextKey, ContextValue};

    fn fixed(node: u32, at: u64) -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(node)), at)
    }

    fn mobile(node: u32, at: u64) -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(node)), at)
    }

    #[test]
    fn update_keeps_the_newest_snapshot() {
        let mut store = ContextStore::new();
        assert!(store.update(fixed(1, 100)), "first sighting is news");
        assert!(!store.update(fixed(1, 50)), "older snapshot is not");
        assert_eq!(store.get(NodeId(1)).unwrap().captured_at_ms, 100);
        assert!(!store.update(fixed(1, 100)), "same version is a duplicate");
        assert!(store.update(fixed(1, 200)));
        assert_eq!(store.get(NodeId(1)).unwrap().captured_at_ms, 200);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn digest_and_versions_track_capture_times() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 100));
        store.update(mobile(2, 70));
        assert_eq!(store.version_of(NodeId(0)), Some(100));
        assert_eq!(store.version_of(NodeId(5)), None);
        assert_eq!(
            store.digest(),
            vec![(NodeId(0), 100), (NodeId(2), 70)],
            "digest lists every entry in node-id order"
        );
        store.retain_members(&[NodeId(2)]);
        assert_eq!(store.digest(), vec![(NodeId(2), 70)]);
    }

    #[test]
    fn hybrid_detection() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 1));
        assert!(!store.is_hybrid());
        store.update(mobile(1, 1));
        assert!(store.is_hybrid());
        assert_eq!(store.mobile_nodes(), vec![NodeId(1)]);
        assert_eq!(store.fixed_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn best_relay_prefers_fixed_nodes_with_low_id() {
        let mut store = ContextStore::new();
        store.update(mobile(1, 1));
        assert_eq!(store.best_relay(), None);
        store.update(fixed(5, 1));
        store.update(fixed(3, 1));
        assert_eq!(store.best_relay(), Some(NodeId(3)));
    }

    #[test]
    fn aggregate_queries() {
        let mut store = ContextStore::new();
        let mut degraded = mobile(2, 1);
        degraded.set(ContextKey::ErrorRate, ContextValue::Number(0.15));
        degraded.set(ContextKey::BatteryLevel, ContextValue::Number(0.4));
        store.update(fixed(0, 1));
        store.update(degraded);
        assert!((store.max_error_rate() - 0.15).abs() < 1e-9);
        assert!((store.min_battery_level() - 0.4).abs() < 1e-9);
        assert_eq!(store.best_battery_node(), Some(NodeId(0)));
        assert_eq!(store.device_class_of(NodeId(0)), Some(DeviceClass::FixedPc));
    }

    #[test]
    fn export_import_roundtrip_merges_by_version() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 100));
        store.update(mobile(2, 70));
        let bytes = store.export_bytes();

        // The importer holds a newer snapshot for node 2 and an older one
        // for node 0: only node 0's is overwritten.
        let mut other = ContextStore::new();
        other.update(fixed(0, 50));
        other.update(mobile(2, 90));
        assert_eq!(other.import_merge(&bytes).unwrap(), 1);
        assert_eq!(other.version_of(NodeId(0)), Some(100));
        assert_eq!(other.version_of(NodeId(2)), Some(90));

        assert!(other.import_merge(b"\xff\xff\xff\xff").is_err());

        // The section wrapper drives the same paths through shared state.
        let shared = Rc::new(RefCell::new(ContextStore::new()));
        let section = ContextStoreSection::new(shared.clone());
        assert!(section.install(&bytes));
        assert_eq!(shared.borrow().len(), 2);
        assert!(!section.export().is_empty());
        assert!(!section.install(b"\xff"));
        assert_eq!(section.name(), "cocaditem-store");
    }

    #[test]
    fn eviction_and_removal() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 100));
        store.update(mobile(1, 900));
        store.evict_stale(1000, 500);
        assert!(store.get(NodeId(0)).is_none());
        assert!(store.get(NodeId(1)).is_some());
        store.remove(NodeId(1));
        assert!(store.is_empty());
    }
}
