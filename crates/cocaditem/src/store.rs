//! The distributed context store: the last published snapshot of every
//! participant.

use std::collections::BTreeMap;

use morpheus_appia::platform::{DeviceClass, NodeId};

use crate::context::ContextSnapshot;

/// A table of the most recent context snapshot received from each node.
#[derive(Debug, Clone, Default)]
pub struct ContextStore {
    snapshots: BTreeMap<NodeId, ContextSnapshot>,
}

impl ContextStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes a node's snapshot. Older snapshots (by capture
    /// time) never overwrite newer ones. Returns whether the snapshot was
    /// stored — i.e. whether it was *news* (a node not seen before, or a
    /// strictly newer capture), which is what decides whether an epidemic
    /// forwarder should keep spreading it.
    pub fn update(&mut self, snapshot: ContextSnapshot) -> bool {
        match self.snapshots.get(&snapshot.node) {
            Some(existing) if existing.captured_at_ms > snapshot.captured_at_ms => false,
            Some(existing) if existing.captured_at_ms == snapshot.captured_at_ms => {
                // Same version: last writer wins (a local re-sample within
                // one millisecond must not be ignored), but it is not news —
                // an epidemic forwarder receiving it must not spread it again.
                self.snapshots.insert(snapshot.node, snapshot);
                false
            }
            _ => {
                self.snapshots.insert(snapshot.node, snapshot);
                true
            }
        }
    }

    /// The capture time of a node's stored snapshot — the version the digest
    /// anti-entropy protocol compares (capture times are monotonic per node).
    pub fn version_of(&self, node: NodeId) -> Option<u64> {
        self.snapshots
            .get(&node)
            .map(|snapshot| snapshot.captured_at_ms)
    }

    /// The `(node, version)` digest of the whole store, in node-id order.
    pub fn digest(&self) -> Vec<(NodeId, u64)> {
        self.snapshots
            .iter()
            .map(|(node, snapshot)| (*node, snapshot.captured_at_ms))
            .collect()
    }

    /// Drops every node not in `members` (e.g. after a view change).
    pub fn retain_members(&mut self, members: &[NodeId]) {
        self.snapshots.retain(|node, _| members.contains(node));
    }

    /// Removes nodes that have not published for `max_age_ms` relative to `now_ms`.
    pub fn evict_stale(&mut self, now_ms: u64, max_age_ms: u64) {
        self.snapshots
            .retain(|_, snapshot| now_ms.saturating_sub(snapshot.captured_at_ms) <= max_age_ms);
    }

    /// Removes a node explicitly (e.g. when it leaves the view).
    pub fn remove(&mut self, node: NodeId) {
        self.snapshots.remove(&node);
    }

    /// The snapshot of one node, if known.
    pub fn get(&self, node: NodeId) -> Option<&ContextSnapshot> {
        self.snapshots.get(&node)
    }

    /// Every known snapshot, in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &ContextSnapshot)> {
        self.snapshots.iter()
    }

    /// Number of nodes with a known snapshot.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no snapshots are known.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Nodes whose last snapshot reports a mobile device class.
    pub fn mobile_nodes(&self) -> Vec<NodeId> {
        self.snapshots
            .iter()
            .filter(|(_, snapshot)| snapshot.is_mobile() == Some(true))
            .map(|(node, _)| *node)
            .collect()
    }

    /// Nodes whose last snapshot reports a fixed device class.
    pub fn fixed_nodes(&self) -> Vec<NodeId> {
        self.snapshots
            .iter()
            .filter(|(_, snapshot)| snapshot.is_mobile() == Some(false))
            .map(|(node, _)| *node)
            .collect()
    }

    /// Whether the known participants mix fixed and mobile devices — the
    /// condition that triggers the Mecho adaptation in the paper.
    pub fn is_hybrid(&self) -> bool {
        !self.mobile_nodes().is_empty() && !self.fixed_nodes().is_empty()
    }

    /// The highest error rate reported by any participant.
    pub fn max_error_rate(&self) -> f64 {
        self.snapshots
            .values()
            .filter_map(ContextSnapshot::error_rate)
            .fold(0.0, f64::max)
    }

    /// The lowest battery level reported by any participant.
    pub fn min_battery_level(&self) -> f64 {
        self.snapshots
            .values()
            .filter_map(ContextSnapshot::battery_level)
            .fold(1.0, f64::min)
    }

    /// The fixed node best suited to act as the Mecho relay: fixed device
    /// class first, then highest resource score, then lowest node id as a
    /// deterministic tie-breaker.
    pub fn best_relay(&self) -> Option<NodeId> {
        self.snapshots
            .iter()
            .filter_map(|(node, snapshot)| snapshot.device_class().map(|class| (*node, class)))
            .filter(|(_, class)| class.is_fixed())
            .min_by_key(|(node, class)| (std::cmp::Reverse(class.resource_score()), node.0))
            .map(|(node, _)| node)
    }

    /// The node with the most remaining battery (used when every participant
    /// is mobile and one of them must carry extra load).
    pub fn best_battery_node(&self) -> Option<NodeId> {
        self.snapshots
            .iter()
            .filter_map(|(node, snapshot)| snapshot.battery_level().map(|level| (*node, level)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(node, _)| node)
    }

    /// Convenience: the device class of one node, if known.
    pub fn device_class_of(&self, node: NodeId) -> Option<DeviceClass> {
        self.get(node).and_then(ContextSnapshot::device_class)
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::NodeProfile;

    use super::*;
    use crate::context::{ContextKey, ContextValue};

    fn fixed(node: u32, at: u64) -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(node)), at)
    }

    fn mobile(node: u32, at: u64) -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(node)), at)
    }

    #[test]
    fn update_keeps_the_newest_snapshot() {
        let mut store = ContextStore::new();
        assert!(store.update(fixed(1, 100)), "first sighting is news");
        assert!(!store.update(fixed(1, 50)), "older snapshot is not");
        assert_eq!(store.get(NodeId(1)).unwrap().captured_at_ms, 100);
        assert!(!store.update(fixed(1, 100)), "same version is a duplicate");
        assert!(store.update(fixed(1, 200)));
        assert_eq!(store.get(NodeId(1)).unwrap().captured_at_ms, 200);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn digest_and_versions_track_capture_times() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 100));
        store.update(mobile(2, 70));
        assert_eq!(store.version_of(NodeId(0)), Some(100));
        assert_eq!(store.version_of(NodeId(5)), None);
        assert_eq!(
            store.digest(),
            vec![(NodeId(0), 100), (NodeId(2), 70)],
            "digest lists every entry in node-id order"
        );
        store.retain_members(&[NodeId(2)]);
        assert_eq!(store.digest(), vec![(NodeId(2), 70)]);
    }

    #[test]
    fn hybrid_detection() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 1));
        assert!(!store.is_hybrid());
        store.update(mobile(1, 1));
        assert!(store.is_hybrid());
        assert_eq!(store.mobile_nodes(), vec![NodeId(1)]);
        assert_eq!(store.fixed_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn best_relay_prefers_fixed_nodes_with_low_id() {
        let mut store = ContextStore::new();
        store.update(mobile(1, 1));
        assert_eq!(store.best_relay(), None);
        store.update(fixed(5, 1));
        store.update(fixed(3, 1));
        assert_eq!(store.best_relay(), Some(NodeId(3)));
    }

    #[test]
    fn aggregate_queries() {
        let mut store = ContextStore::new();
        let mut degraded = mobile(2, 1);
        degraded.set(ContextKey::ErrorRate, ContextValue::Number(0.15));
        degraded.set(ContextKey::BatteryLevel, ContextValue::Number(0.4));
        store.update(fixed(0, 1));
        store.update(degraded);
        assert!((store.max_error_rate() - 0.15).abs() < 1e-9);
        assert!((store.min_battery_level() - 0.4).abs() < 1e-9);
        assert_eq!(store.best_battery_node(), Some(NodeId(0)));
        assert_eq!(store.device_class_of(NodeId(0)), Some(DeviceClass::FixedPc));
    }

    #[test]
    fn eviction_and_removal() {
        let mut store = ContextStore::new();
        store.update(fixed(0, 100));
        store.update(mobile(1, 900));
        store.evict_stale(1000, 500);
        assert!(store.get(NodeId(0)).is_none());
        assert!(store.get(NodeId(1)).is_some());
        store.remove(NodeId(1));
        assert!(store.is_empty());
    }
}
