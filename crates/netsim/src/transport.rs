//! Packet transmission over a topology.
//!
//! [`Network`] ties together the topology, the link models, the energy model
//! and the statistics: every transmission updates the sender's counters and
//! battery, applies per-receiver loss and latency, and returns the resulting
//! deliveries so the caller (the testbed runner) can schedule them on its
//! event queue.

use crate::battery::EnergyModel;
use crate::fault::FaultSchedule;
use crate::link::LinkOutcome;
use crate::node::{NodeId, NodeKind};
use crate::rng::SimRng;
use crate::stats::{NetworkStats, TrafficClass};
use crate::time::SimTime;
use crate::topology::Topology;

/// Where a packet is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketTarget {
    /// One receiver (point-to-point transmission).
    Unicast(NodeId),
    /// Every node in the sender's broadcast domain (native multicast). The
    /// sender performs a single transmission.
    Broadcast,
}

/// A packet handed to the network for transmission.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Sending node.
    pub from: NodeId,
    /// Destination.
    pub target: PacketTarget,
    /// Size on the wire, in bytes (headers included).
    pub size_bytes: usize,
    /// Accounting class.
    pub class: TrafficClass,
    /// Opaque payload carried to the receiver.
    pub payload: P,
}

/// A packet arriving at a receiver.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Time at which the packet arrives.
    pub at: SimTime,
    /// Receiving node.
    pub to: NodeId,
    /// Original sender.
    pub from: NodeId,
    /// Accounting class.
    pub class: TrafficClass,
    /// Size on the wire, in bytes.
    pub size_bytes: usize,
    /// Opaque payload.
    pub payload: P,
}

/// The network: topology + loss/latency + accounting.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    stats: NetworkStats,
    wireless_energy: EnergyModel,
    wired_energy: EnergyModel,
    faults: FaultSchedule,
}

impl Network {
    /// Creates a network over the given topology with default energy models.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            stats: NetworkStats::new(),
            wireless_energy: EnergyModel::wireless_pda(),
            wired_energy: EnergyModel::wired(),
            faults: FaultSchedule::none(),
        }
    }

    /// Installs a fault schedule: flaps and one-way partitions drop packets
    /// (accounted under [`crate::NodeStats::fault_dropped`], outside the
    /// live-link loss metric) and latency shifts delay deliveries.
    pub fn set_faults(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// The installed fault schedule.
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the topology (context changes, failures).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Clears the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn energy_model_for(&self, node: NodeId) -> &EnergyModel {
        if self.topology.kind_of(node).is_mobile() {
            &self.wireless_energy
        } else {
            &self.wired_energy
        }
    }

    fn charge_tx(&mut self, node: NodeId, size: usize) -> f64 {
        let cost = self.energy_model_for(node).tx_cost(size);
        if let Some(sim_node) = self.topology.node_mut(node) {
            sim_node.battery.consume(cost);
        }
        cost
    }

    fn charge_rx(&mut self, node: NodeId, size: usize) -> f64 {
        let cost = self.energy_model_for(node).rx_cost(size);
        if let Some(sim_node) = self.topology.node_mut(node) {
            sim_node.battery.consume(cost);
        }
        cost
    }

    /// Runs the link model and receiver-side accounting for one hop,
    /// returning the arrival latency when the hop succeeds.
    fn transmit_outcome(
        &mut self,
        from: NodeId,
        receiver: NodeId,
        size_bytes: usize,
        class: TrafficClass,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<u64> {
        if receiver == from {
            return None;
        }
        let crashed = self
            .topology
            .node(receiver)
            .map(|n| !n.alive)
            .unwrap_or(false);
        if crashed {
            // A *crashed* receiver is not a link failure: the packet is
            // accounted separately so the protocol safety metric ("no losses
            // towards live members") stays meaningful across a crash/restart
            // window. A battery-depleted (but running) receiver is different:
            // flooding a depleted member is exactly the failure the
            // adaptation loop exists to avoid, so those losses stay in the
            // safety metric.
            self.stats.node_mut(from).record_lost_to_dead();
            return None;
        }
        if self.faults.link_down(from, receiver, now.as_millis()) {
            // An injected fault drop (flap, one-way partition) is the
            // experiment, not a live-link loss — same separation as
            // `lost_to_dead`.
            self.stats.node_mut(from).record_fault_dropped();
            return None;
        }
        let operational = self
            .topology
            .node(receiver)
            .map(|n| n.is_operational())
            .unwrap_or(false);
        let outcome = self.topology.link(from, receiver).transmit(size_bytes, rng);
        match outcome {
            LinkOutcome::Delivered { latency_ms } if operational => {
                let rx_energy = self.charge_rx(receiver, size_bytes);
                self.stats
                    .node_mut(receiver)
                    .record_received(class, size_bytes, rx_energy);
                let shift = self
                    .faults
                    .extra_latency_ms(self.topology.link_class(from, receiver), now.as_millis())
                    + self
                        .faults
                        .extra_pair_latency_ms(from, receiver, now.as_millis());
                Some(latency_ms + shift)
            }
            _ => {
                self.stats.node_mut(from).record_lost(class);
                None
            }
        }
    }

    /// Transmits a packet, returning the deliveries it produces.
    ///
    /// The sender is charged exactly one transmission per call (the paper's
    /// message counts are per *send operation*: a native multicast is one
    /// message, a point-to-point send to each of N peers is N messages —
    /// produced by N calls). On the dominant unicast path the payload is
    /// *moved* into the delivery — no per-recipient clone; a broadcast
    /// encodes once and clones per member of the domain.
    pub fn send<P: Clone>(
        &mut self,
        packet: Packet<P>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Delivery<P>> {
        let sender_operational = self
            .topology
            .node(packet.from)
            .map(|n| n.is_operational())
            .unwrap_or(false);
        if !sender_operational {
            return Vec::new();
        }

        let tx_energy = self.charge_tx(packet.from, packet.size_bytes);
        self.stats
            .node_mut(packet.from)
            .record_sent(packet.class, packet.size_bytes, tx_energy);

        let mut deliveries = Vec::new();
        match packet.target {
            PacketTarget::Unicast(receiver) => {
                if let Some(latency_ms) = self.transmit_outcome(
                    packet.from,
                    receiver,
                    packet.size_bytes,
                    packet.class,
                    now,
                    rng,
                ) {
                    deliveries.push(Delivery {
                        at: now + latency_ms,
                        to: receiver,
                        from: packet.from,
                        class: packet.class,
                        size_bytes: packet.size_bytes,
                        payload: packet.payload,
                    });
                }
            }
            PacketTarget::Broadcast => {
                let members = self.topology.broadcast_domain(packet.from);
                for receiver in members {
                    if let Some(latency_ms) = self.transmit_outcome(
                        packet.from,
                        receiver,
                        packet.size_bytes,
                        packet.class,
                        now,
                        rng,
                    ) {
                        deliveries.push(Delivery {
                            at: now + latency_ms,
                            to: receiver,
                            from: packet.from,
                            class: packet.class,
                            size_bytes: packet.size_bytes,
                            payload: packet.payload.clone(),
                        });
                    }
                }
            }
        }
        deliveries
    }

    /// Remaining battery fraction of a node.
    pub fn battery_fraction(&self, node: NodeId) -> f64 {
        self.topology
            .node(node)
            .map(|n| n.battery.fraction())
            .unwrap_or(0.0)
    }

    /// Whether a node is alive and has battery left.
    pub fn is_operational(&self, node: NodeId) -> bool {
        self.topology
            .node(node)
            .map(|n| n.is_operational())
            .unwrap_or(false)
    }

    /// The device kind of a node.
    pub fn kind_of(&self, node: NodeId) -> NodeKind {
        self.topology.kind_of(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Wireless80211b;
    use crate::topology::Topology;

    fn packet(from: u32, to: u32, class: TrafficClass) -> Packet<&'static str> {
        Packet {
            from: NodeId(from),
            target: PacketTarget::Unicast(NodeId(to)),
            size_bytes: 200,
            class,
            payload: "payload",
        }
    }

    #[test]
    fn unicast_delivers_and_counts() {
        let mut network = Network::new(Topology::hybrid_cell(1, 2));
        let mut rng = SimRng::new(1);
        let deliveries = network.send(packet(1, 0, TrafficClass::Data), SimTime::ZERO, &mut rng);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].to, NodeId(0));
        assert_eq!(deliveries[0].from, NodeId(1));
        assert!(deliveries[0].at > SimTime::ZERO);

        let sender = network.stats().node_or_default(NodeId(1));
        assert_eq!(sender.total_sent(), 1);
        assert_eq!(sender.sent_of(TrafficClass::Data), 1);
        let receiver = network.stats().node_or_default(NodeId(0));
        assert_eq!(receiver.total_received(), 1);
    }

    #[test]
    fn self_addressed_packets_produce_no_delivery() {
        let mut network = Network::new(Topology::lan(2, false));
        let mut rng = SimRng::new(1);
        let deliveries = network.send(packet(0, 0, TrafficClass::Data), SimTime::ZERO, &mut rng);
        assert!(deliveries.is_empty());
        // The send operation itself is still counted.
        assert_eq!(network.stats().node_or_default(NodeId(0)).total_sent(), 1);
    }

    #[test]
    fn broadcast_reaches_the_lan_with_one_send() {
        let mut network = Network::new(Topology::lan(5, true));
        let mut rng = SimRng::new(2);
        let deliveries = network.send(
            Packet {
                from: NodeId(0),
                target: PacketTarget::Broadcast,
                size_bytes: 100,
                class: TrafficClass::Data,
                payload: (),
            },
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(deliveries.len(), 4);
        assert_eq!(network.stats().node_or_default(NodeId(0)).total_sent(), 1);
    }

    #[test]
    fn broadcast_without_native_multicast_reaches_nobody() {
        let mut network = Network::new(Topology::lan(5, false));
        let mut rng = SimRng::new(2);
        let deliveries = network.send(
            Packet {
                from: NodeId(0),
                target: PacketTarget::Broadcast,
                size_bytes: 100,
                class: TrafficClass::Data,
                payload: (),
            },
            SimTime::ZERO,
            &mut rng,
        );
        assert!(deliveries.is_empty());
    }

    #[test]
    fn lossy_links_record_losses() {
        let topology = Topology::ad_hoc(2).with_wireless(Wireless80211b {
            loss_rate: 1.0,
            ..Wireless80211b::default()
        });
        let mut network = Network::new(topology);
        let mut rng = SimRng::new(3);
        let deliveries = network.send(packet(0, 1, TrafficClass::Data), SimTime::ZERO, &mut rng);
        assert!(deliveries.is_empty());
        assert_eq!(network.stats().node_or_default(NodeId(0)).lost, 1);
        assert_eq!(
            network.stats().node_or_default(NodeId(1)).total_received(),
            0
        );
    }

    #[test]
    fn losses_are_recorded_per_traffic_class() {
        let topology = Topology::ad_hoc(2).with_wireless(Wireless80211b {
            loss_rate: 1.0,
            ..Wireless80211b::default()
        });
        let mut network = Network::new(topology);
        let mut rng = SimRng::new(9);
        network.send(packet(0, 1, TrafficClass::Control), SimTime::ZERO, &mut rng);
        network.send(packet(0, 1, TrafficClass::Data), SimTime::ZERO, &mut rng);
        let stats = network.stats().node_or_default(NodeId(0));
        assert_eq!(stats.lost_of(TrafficClass::Control), 1);
        assert_eq!(stats.lost_of(TrafficClass::Data), 1);
        assert_eq!(stats.lost_of(TrafficClass::Context), 0);
        assert_eq!(network.stats().total_lost_of(TrafficClass::Data), 1);
    }

    #[test]
    fn dead_senders_send_nothing() {
        let mut network = Network::new(Topology::lan(2, false));
        network.topology_mut().node_mut(NodeId(0)).unwrap().alive = false;
        let mut rng = SimRng::new(4);
        let deliveries = network.send(packet(0, 1, TrafficClass::Data), SimTime::ZERO, &mut rng);
        assert!(deliveries.is_empty());
        assert_eq!(network.stats().total_sent(), 0);
        assert!(!network.is_operational(NodeId(0)));
    }

    #[test]
    fn dead_receivers_lose_packets_under_their_own_counter() {
        let mut network = Network::new(Topology::lan(2, false));
        network.topology_mut().node_mut(NodeId(1)).unwrap().alive = false;
        let mut rng = SimRng::new(4);
        let deliveries = network.send(packet(0, 1, TrafficClass::Data), SimTime::ZERO, &mut rng);
        assert!(deliveries.is_empty());
        let sender = network.stats().node_or_default(NodeId(0));
        assert_eq!(
            sender.lost, 0,
            "traffic to a crashed node is not a live-link loss"
        );
        assert_eq!(sender.lost_to_dead, 1);
        assert_eq!(network.stats().total_lost_to_dead(), 1);
    }

    #[test]
    fn transmissions_drain_mobile_batteries() {
        let mut network = Network::new(Topology::hybrid_cell(1, 1));
        let mut rng = SimRng::new(5);
        let before = network.battery_fraction(NodeId(1));
        for _ in 0..50 {
            network.send(packet(1, 0, TrafficClass::Data), SimTime::ZERO, &mut rng);
        }
        let after = network.battery_fraction(NodeId(1));
        assert!(after < before);
        // Fixed nodes never drain.
        assert_eq!(network.battery_fraction(NodeId(0)), 1.0);
    }

    #[test]
    fn energy_accounting_matches_stats() {
        let mut network = Network::new(Topology::hybrid_cell(1, 1));
        let mut rng = SimRng::new(6);
        network.send(packet(1, 0, TrafficClass::Control), SimTime::ZERO, &mut rng);
        let stats = network.stats().node_or_default(NodeId(1));
        assert!(stats.energy_joules > 0.0);
        assert_eq!(stats.sent_of(TrafficClass::Control), 1);
    }
}
