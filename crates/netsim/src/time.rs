//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in milliseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// The time as milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// The time as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference between two times, in milliseconds.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        assert_eq!((t + 50).as_millis(), 150);
        let mut t2 = t;
        t2 += 25;
        assert_eq!(t2.as_millis(), 125);
        assert_eq!(t2 - t, 25);
        assert_eq!(t.saturating_since(t2), 0);
        assert_eq!(t2.saturating_since(t), 25);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(2530).to_string(), "2.530s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_millis(1));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
