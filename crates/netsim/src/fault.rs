//! Composable, deterministic fault schedules.
//!
//! A [`FaultSchedule`] is a list of timed fault events — link flaps,
//! asymmetric one-way partitions, latency-class shifts, mass churn and
//! byte-level packet corruption — that the transport and the testbed runner
//! evaluate against simulated time. Every decision a schedule influences is
//! either pure window arithmetic (flaps, one-way drops, latency shifts) or
//! drawn from the run's seeded [`SimRng`] (churn targets,
//! corruption draws), so any failure replays exactly from the pair
//! `(seed, schedule)` alone.
//!
//! Schedules render to (and parse from) a single line, e.g.
//!
//! ```text
//! flap(node=3,start=6000,down=400,up=1600,until=14000);corrupt(start=6000,end=13000,rate=0.010)
//! ```
//!
//! which is what the fault explorer prints as the reproducer when a sweep
//! finds a failing run.

use crate::link::LinkClass;
use crate::node::NodeId;
use crate::rng::SimRng;

/// One timed fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node's network interface flaps: starting at `start_ms` and until
    /// `until_ms`, it repeats a cycle of `down_ms` milliseconds down (all
    /// its links drop packets, in both directions) followed by `up_ms`
    /// milliseconds up.
    LinkFlap {
        /// The flapping node.
        node: NodeId,
        /// First instant of the first down window.
        start_ms: u64,
        /// Length of each down window.
        down_ms: u64,
        /// Length of each up window between two down windows.
        up_ms: u64,
        /// End of the flapping régime (exclusive).
        until_ms: u64,
    },
    /// An asymmetric partition: packets from `from` to `to` are dropped
    /// during `[start_ms, end_ms)`; the reverse direction is unaffected.
    OneWay {
        /// Sender whose packets are dropped.
        from: NodeId,
        /// Receiver that never sees them.
        to: NodeId,
        /// Start of the window.
        start_ms: u64,
        /// End of the window (exclusive).
        end_ms: u64,
    },
    /// Every link of one class gains `extra_ms` of latency during
    /// `[start_ms, end_ms)` — a WAN region slowing down, an access point
    /// buffering under load.
    LatencyShift {
        /// The affected link class.
        class: LinkClass,
        /// Start of the window.
        start_ms: u64,
        /// End of the window (exclusive).
        end_ms: u64,
        /// Added one-way latency, in milliseconds.
        extra_ms: u64,
    },
    /// Mass churn: during `[start_ms, end_ms)`, every `interval_ms` one
    /// eligible node crashes and restarts `down_ms` later. The runner picks
    /// the victims with the run's seeded rng, skipping nodes still
    /// recovering from an earlier tick.
    Churn {
        /// Start of the churn window.
        start_ms: u64,
        /// End of the churn window (exclusive).
        end_ms: u64,
        /// Time between two crashes (`1000 / k` for k crashes per second).
        interval_ms: u64,
        /// How long each victim stays down before restarting.
        down_ms: u64,
    },
    /// Byte-level packet corruption: during `[start_ms, end_ms)` each
    /// arriving packet is corrupted (one random bit flipped) with
    /// probability `rate` — aimed at every decode boundary at once, since
    /// all traffic classes are eligible.
    Corrupt {
        /// Start of the window.
        start_ms: u64,
        /// End of the window (exclusive).
        end_ms: u64,
        /// Per-packet corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// Sustained overload: during `[start_ms, end_ms)` every workload
    /// sender emits one *extra* application message each `interval_ms`,
    /// on top of the scenario's configured rate — the drive under which
    /// the backpressure and queue-shedding paths are exercised.
    Overload {
        /// Start of the overload window.
        start_ms: u64,
        /// End of the overload window (exclusive).
        end_ms: u64,
        /// Time between two extra sends per sender.
        interval_ms: u64,
    },
    /// A full partition of one node: during `[start_ms, end_ms)` every
    /// packet to or from it is dropped at the link layer (both
    /// directions) while the node itself keeps running — the long-outage
    /// régime that drives the repair→snapshot catch-up path when the
    /// window outlives the repair-log TTL.
    Partition {
        /// The isolated node.
        node: NodeId,
        /// Start of the partition window.
        start_ms: u64,
        /// End of the partition window (exclusive).
        end_ms: u64,
    },
    /// WAN multi-region latency tiers: during `[start_ms, end_ms)` the
    /// group is striped into `regions` regions (node *n* lives in region
    /// `n % regions`) and every packet crossing region boundaries gains
    /// `step_ms` milliseconds per region of distance — a geo-distributed
    /// deployment where quorum latency is dominated by the farthest
    /// region, not the link class.
    WanRegions {
        /// Start of the window.
        start_ms: u64,
        /// End of the window (exclusive).
        end_ms: u64,
        /// Number of regions the group is striped into.
        regions: u32,
        /// Added one-way latency per region of distance, in milliseconds.
        step_ms: u64,
    },
    /// Mass churn: during `[start_ms, end_ms)` `per_second` eligible nodes
    /// crash *every second* and restart `down_ms` later — the k-joins-and-
    /// leaves-per-second régime, an order of magnitude denser than
    /// [`FaultEvent::Churn`]. Expanded by the runner through the same
    /// seeded-victim machinery as ordinary churn.
    MassChurn {
        /// Start of the churn window.
        start_ms: u64,
        /// End of the churn window (exclusive).
        end_ms: u64,
        /// Crash/restart cycles initiated per second.
        per_second: u64,
        /// How long each victim stays down before restarting.
        down_ms: u64,
    },
    /// A flapping asymmetric partition: starting at `start_ms` and until
    /// `until_ms`, packets from `from` to `to` are dropped for `down_ms`
    /// milliseconds out of every `down_ms + up_ms` cycle; the reverse
    /// direction never drops. The cruellest failure-detector input: the
    /// link heals just long enough to cancel every suspicion it caused.
    FlapOneWay {
        /// Sender whose packets are dropped during down windows.
        from: NodeId,
        /// Receiver that misses them.
        to: NodeId,
        /// First instant of the first down window.
        start_ms: u64,
        /// Length of each down window.
        down_ms: u64,
        /// Length of each up window between two down windows.
        up_ms: u64,
        /// End of the flapping régime (exclusive).
        until_ms: u64,
    },
}

/// A composable schedule of timed fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// Whether `at_ms` falls inside the half-open window `[start, end)`.
fn in_window(at_ms: u64, start: u64, end: u64) -> bool {
    at_ms >= start && at_ms < end
}

impl FaultSchedule {
    /// A schedule with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the node's interface is flapped down at `at_ms`.
    pub fn node_flapped_down(&self, node: NodeId, at_ms: u64) -> bool {
        self.events.iter().any(|event| match event {
            FaultEvent::LinkFlap {
                node: flapping,
                start_ms,
                down_ms,
                up_ms,
                until_ms,
            } => {
                *flapping == node
                    && in_window(at_ms, *start_ms, *until_ms)
                    && (at_ms - start_ms) % (down_ms + up_ms).max(1) < *down_ms
            }
            _ => false,
        })
    }

    /// Whether the node is fully partitioned (isolated in both directions,
    /// but still running) at `at_ms`.
    pub fn node_partitioned(&self, node: NodeId, at_ms: u64) -> bool {
        self.events.iter().any(|event| match event {
            FaultEvent::Partition {
                node: isolated,
                start_ms,
                end_ms,
            } => *isolated == node && in_window(at_ms, *start_ms, *end_ms),
            _ => false,
        })
    }

    /// Whether a packet from `from` to `to` is dropped by a fault at
    /// `at_ms` (a flap or full partition of either endpoint, or a one-way
    /// partition of this exact direction).
    pub fn link_down(&self, from: NodeId, to: NodeId, at_ms: u64) -> bool {
        if self.node_flapped_down(from, at_ms) || self.node_flapped_down(to, at_ms) {
            return true;
        }
        if self.node_partitioned(from, at_ms) || self.node_partitioned(to, at_ms) {
            return true;
        }
        self.events.iter().any(|event| match event {
            FaultEvent::OneWay {
                from: blocked_from,
                to: blocked_to,
                start_ms,
                end_ms,
            } => *blocked_from == from && *blocked_to == to && in_window(at_ms, *start_ms, *end_ms),
            FaultEvent::FlapOneWay {
                from: blocked_from,
                to: blocked_to,
                start_ms,
                down_ms,
                up_ms,
                until_ms,
            } => {
                *blocked_from == from
                    && *blocked_to == to
                    && in_window(at_ms, *start_ms, *until_ms)
                    && (at_ms - start_ms) % (down_ms + up_ms).max(1) < *down_ms
            }
            _ => false,
        })
    }

    /// Extra latency active on links of `class` at `at_ms`, in milliseconds
    /// (shifts on the same class add up).
    pub fn extra_latency_ms(&self, class: LinkClass, at_ms: u64) -> u64 {
        self.events
            .iter()
            .map(|event| match event {
                FaultEvent::LatencyShift {
                    class: shifted,
                    start_ms,
                    end_ms,
                    extra_ms,
                } if *shifted == class && in_window(at_ms, *start_ms, *end_ms) => *extra_ms,
                _ => 0,
            })
            .sum()
    }

    /// Extra pairwise latency between two *specific* nodes at `at_ms`, in
    /// milliseconds: the WAN-region tiers ([`FaultEvent::WanRegions`])
    /// charge `step_ms` per region of distance between the endpoints'
    /// regions (`node % regions`). Overlapping régimes add up. Zero for
    /// same-region pairs and outside every window.
    pub fn extra_pair_latency_ms(&self, from: NodeId, to: NodeId, at_ms: u64) -> u64 {
        self.events
            .iter()
            .map(|event| match event {
                FaultEvent::WanRegions {
                    start_ms,
                    end_ms,
                    regions,
                    step_ms,
                } if in_window(at_ms, *start_ms, *end_ms) && *regions > 1 => {
                    let distance = (from.0 % *regions).abs_diff(to.0 % *regions);
                    u64::from(distance) * *step_ms
                }
                _ => 0,
            })
            .sum()
    }

    /// The packet-corruption probability active at `at_ms` (the maximum
    /// over overlapping windows; `0.0` outside every window).
    pub fn corruption_rate(&self, at_ms: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|event| match event {
                FaultEvent::Corrupt {
                    start_ms,
                    end_ms,
                    rate,
                } if in_window(at_ms, *start_ms, *end_ms) => Some(*rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Whether any corruption window exists (used by runners to skip the
    /// per-packet draw entirely on fault-free runs).
    pub fn has_corruption(&self) -> bool {
        self.events
            .iter()
            .any(|event| matches!(event, FaultEvent::Corrupt { .. }))
    }

    /// The churn régimes of the schedule, for the runner to expand into
    /// crash/restart events.
    pub fn churn_events(&self) -> impl Iterator<Item = (u64, u64, u64, u64)> + '_ {
        self.events.iter().filter_map(|event| match event {
            FaultEvent::Churn {
                start_ms,
                end_ms,
                interval_ms,
                down_ms,
            } => Some((*start_ms, *end_ms, *interval_ms, *down_ms)),
            // Mass churn is ordinary churn at `per_second` cycles a second:
            // it expands through the same seeded-victim machinery.
            FaultEvent::MassChurn {
                start_ms,
                end_ms,
                per_second,
                down_ms,
            } => Some((
                *start_ms,
                *end_ms,
                (1_000 / (*per_second).max(1)).max(1),
                *down_ms,
            )),
            _ => None,
        })
    }

    /// The overload régimes of the schedule, for the runner to expand into
    /// extra application sends.
    pub fn overload_events(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.events.iter().filter_map(|event| match event {
            FaultEvent::Overload {
                start_ms,
                end_ms,
                interval_ms,
            } => Some((*start_ms, *end_ms, *interval_ms)),
            _ => None,
        })
    }

    /// Short tags of the fault classes present in the schedule, in render
    /// order, deduplicated — what the survival matrix reports per case.
    pub fn class_tags(&self) -> Vec<&'static str> {
        let mut tags = Vec::new();
        for event in &self.events {
            let tag = match event {
                FaultEvent::LinkFlap { .. } => "flap",
                FaultEvent::OneWay { .. } => "oneway",
                FaultEvent::LatencyShift { .. } => "latency",
                FaultEvent::Churn { .. } => "churn",
                FaultEvent::Corrupt { .. } => "corrupt",
                FaultEvent::Overload { .. } => "overload",
                FaultEvent::Partition { .. } => "partition",
                FaultEvent::WanRegions { .. } => "wanregions",
                FaultEvent::MassChurn { .. } => "masschurn",
                FaultEvent::FlapOneWay { .. } => "flaponeway",
            };
            if !tags.contains(&tag) {
                tags.push(tag);
            }
        }
        tags
    }

    /// Generates a random schedule for a group of `nodes` members over a run
    /// of `horizon_ms` simulated milliseconds. Deterministic in `seed`: the
    /// same `(seed, nodes, horizon_ms)` always yields the same schedule.
    ///
    /// Faults are confined to the middle of the run — after the boot/warmup
    /// transient, with a tail left clean so the group can re-converge and
    /// the end-of-run invariants measure recovery, not an ongoing storm.
    pub fn generate(seed: u64, nodes: usize, horizon_ms: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut events = Vec::new();
        let floor = 6_000u64;
        let ceil = horizon_ms.saturating_sub(16_000).max(floor + 4_000);

        let window = |rng: &mut SimRng, min_len: u64, max_len: u64| {
            let len = rng.random_range_inclusive(min_len, max_len.min(ceil - floor));
            let start = rng.random_range_inclusive(floor, ceil - len);
            (start, start + len)
        };

        if nodes > 1 && rng.chance(0.6) {
            let (start, until) = window(&mut rng, 2_000, 6_000);
            events.push(FaultEvent::LinkFlap {
                // Node 0 is spared: it is the deterministic first donor of
                // the rejoin path, which churn below may rely on.
                node: NodeId(1 + rng.random_below(nodes as u64 - 1) as u32),
                start_ms: start,
                down_ms: rng.random_range_inclusive(200, 900),
                up_ms: rng.random_range_inclusive(800, 2_500),
                until_ms: until,
            });
        }
        if nodes > 2 && rng.chance(0.6) {
            let from = rng.random_below(nodes as u64) as u32;
            let to = (from + 1 + rng.random_below(nodes as u64 - 1) as u32) % nodes as u32;
            let (start, end) = window(&mut rng, 1_500, 5_000);
            events.push(FaultEvent::OneWay {
                from: NodeId(from),
                to: NodeId(to),
                start_ms: start,
                end_ms: end,
            });
        }
        if rng.chance(0.5) {
            let class = *rng
                .pick(&[LinkClass::WiredLan, LinkClass::Wireless, LinkClass::Wan])
                .expect("non-empty");
            let (start, end) = window(&mut rng, 2_000, 8_000);
            events.push(FaultEvent::LatencyShift {
                class,
                start_ms: start,
                end_ms: end,
                extra_ms: rng.random_range_inclusive(30, 250),
            });
        }
        if nodes > 4 && rng.chance(0.5) {
            let (start, end) = window(&mut rng, 2_000, 5_000);
            events.push(FaultEvent::Churn {
                start_ms: start,
                end_ms: end,
                interval_ms: rng.random_range_inclusive(1_500, 3_000),
                down_ms: rng.random_range_inclusive(2_500, 4_000),
            });
        }
        if nodes > 3 && rng.chance(0.5) {
            let (start, end) = window(&mut rng, 2_000, 7_000);
            events.push(FaultEvent::WanRegions {
                start_ms: start,
                end_ms: end,
                regions: rng.random_range_inclusive(2, 4.min(nodes as u64)) as u32,
                step_ms: rng.random_range_inclusive(20, 120),
            });
        }
        if nodes > 5 && rng.chance(0.4) {
            let (start, end) = window(&mut rng, 1_500, 4_000);
            events.push(FaultEvent::MassChurn {
                start_ms: start,
                end_ms: end,
                per_second: rng.random_range_inclusive(1, 3),
                down_ms: rng.random_range_inclusive(1_500, 3_000),
            });
        }
        if nodes > 2 && rng.chance(0.5) {
            let from = rng.random_below(nodes as u64) as u32;
            let to = (from + 1 + rng.random_below(nodes as u64 - 1) as u32) % nodes as u32;
            let (start, until) = window(&mut rng, 2_000, 6_000);
            events.push(FaultEvent::FlapOneWay {
                from: NodeId(from),
                to: NodeId(to),
                start_ms: start,
                down_ms: rng.random_range_inclusive(300, 900),
                up_ms: rng.random_range_inclusive(700, 2_000),
                until_ms: until,
            });
        }
        if events.is_empty() || rng.chance(0.7) {
            let (start, end) = window(&mut rng, 3_000, 9_000);
            events.push(FaultEvent::Corrupt {
                start_ms: start,
                end_ms: end,
                rate: rng.random_range_inclusive(2, 15) as f64 / 1_000.0,
            });
        }
        Self { events }
    }

    /// Renders the schedule as one parseable line (see [`Self::parse`]).
    pub fn render(&self) -> String {
        self.events
            .iter()
            .map(|event| match event {
                FaultEvent::LinkFlap {
                    node,
                    start_ms,
                    down_ms,
                    up_ms,
                    until_ms,
                } => format!(
                    "flap(node={},start={start_ms},down={down_ms},up={up_ms},until={until_ms})",
                    node.0
                ),
                FaultEvent::OneWay {
                    from,
                    to,
                    start_ms,
                    end_ms,
                } => format!(
                    "oneway(from={},to={},start={start_ms},end={end_ms})",
                    from.0, to.0
                ),
                FaultEvent::LatencyShift {
                    class,
                    start_ms,
                    end_ms,
                    extra_ms,
                } => format!(
                    "latency(class={},start={start_ms},end={end_ms},extra={extra_ms})",
                    class_tag(*class)
                ),
                FaultEvent::Churn {
                    start_ms,
                    end_ms,
                    interval_ms,
                    down_ms,
                } => format!(
                    "churn(start={start_ms},end={end_ms},interval={interval_ms},down={down_ms})"
                ),
                FaultEvent::Corrupt {
                    start_ms,
                    end_ms,
                    rate,
                } => format!("corrupt(start={start_ms},end={end_ms},rate={rate:.3})"),
                FaultEvent::Overload {
                    start_ms,
                    end_ms,
                    interval_ms,
                } => {
                    format!("overload(start={start_ms},end={end_ms},interval={interval_ms})")
                }
                FaultEvent::Partition {
                    node,
                    start_ms,
                    end_ms,
                } => format!("partition(node={},start={start_ms},end={end_ms})", node.0),
                FaultEvent::WanRegions {
                    start_ms,
                    end_ms,
                    regions,
                    step_ms,
                } => format!(
                    "wanregions(start={start_ms},end={end_ms},regions={regions},step={step_ms})"
                ),
                FaultEvent::MassChurn {
                    start_ms,
                    end_ms,
                    per_second,
                    down_ms,
                } => format!(
                    "masschurn(start={start_ms},end={end_ms},per={per_second},down={down_ms})"
                ),
                FaultEvent::FlapOneWay {
                    from,
                    to,
                    start_ms,
                    down_ms,
                    up_ms,
                    until_ms,
                } => format!(
                    "flaponeway(from={},to={},start={start_ms},down={down_ms},up={up_ms},until={until_ms})",
                    from.0, to.0
                ),
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a schedule from the one-line form [`Self::render`] produces.
    /// An empty string yields an empty schedule.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in line.split(';').filter(|part| !part.trim().is_empty()) {
            let part = part.trim();
            let (kind, rest) = part
                .split_once('(')
                .ok_or_else(|| format!("missing '(' in fault `{part}`"))?;
            let args = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("missing ')' in fault `{part}`"))?;
            let mut fields = std::collections::BTreeMap::new();
            for pair in args.split(',').filter(|pair| !pair.is_empty()) {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("missing '=' in `{pair}`"))?;
                fields.insert(key.trim(), value.trim());
            }
            let num = |key: &str| -> Result<u64, String> {
                fields
                    .get(key)
                    .ok_or_else(|| format!("fault `{kind}` is missing `{key}`"))?
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{kind}`: `{key}` is not a number"))
            };
            events.push(match kind {
                "flap" => FaultEvent::LinkFlap {
                    node: NodeId(num("node")? as u32),
                    start_ms: num("start")?,
                    down_ms: num("down")?,
                    up_ms: num("up")?,
                    until_ms: num("until")?,
                },
                "oneway" => FaultEvent::OneWay {
                    from: NodeId(num("from")? as u32),
                    to: NodeId(num("to")? as u32),
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                },
                "latency" => FaultEvent::LatencyShift {
                    class: parse_class(
                        fields
                            .get("class")
                            .ok_or_else(|| "fault `latency` is missing `class`".to_string())?,
                    )?,
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                    extra_ms: num("extra")?,
                },
                "churn" => FaultEvent::Churn {
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                    interval_ms: num("interval")?.max(1),
                    down_ms: num("down")?,
                },
                "corrupt" => FaultEvent::Corrupt {
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                    rate: fields
                        .get("rate")
                        .ok_or_else(|| "fault `corrupt` is missing `rate`".to_string())?
                        .parse::<f64>()
                        .map_err(|_| "fault `corrupt`: `rate` is not a number".to_string())?,
                },
                "overload" => FaultEvent::Overload {
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                    interval_ms: num("interval")?.max(1),
                },
                "partition" => FaultEvent::Partition {
                    node: NodeId(num("node")? as u32),
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                },
                "wanregions" => FaultEvent::WanRegions {
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                    regions: (num("regions")? as u32).max(1),
                    step_ms: num("step")?,
                },
                "masschurn" => FaultEvent::MassChurn {
                    start_ms: num("start")?,
                    end_ms: num("end")?,
                    per_second: num("per")?.max(1),
                    down_ms: num("down")?,
                },
                "flaponeway" => FaultEvent::FlapOneWay {
                    from: NodeId(num("from")? as u32),
                    to: NodeId(num("to")? as u32),
                    start_ms: num("start")?,
                    down_ms: num("down")?,
                    up_ms: num("up")?,
                    until_ms: num("until")?,
                },
                other => return Err(format!("unknown fault kind `{other}`")),
            });
        }
        Ok(Self { events })
    }
}

fn class_tag(class: LinkClass) -> &'static str {
    match class {
        LinkClass::WiredLan => "wired",
        LinkClass::Wireless => "wireless",
        LinkClass::Wan => "wan",
    }
}

fn parse_class(tag: &str) -> Result<LinkClass, String> {
    match tag {
        "wired" => Ok(LinkClass::WiredLan),
        "wireless" => Ok(LinkClass::Wireless),
        "wan" => Ok(LinkClass::Wan),
        other => Err(format!("unknown link class `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        FaultSchedule {
            events: vec![
                FaultEvent::LinkFlap {
                    node: NodeId(3),
                    start_ms: 1_000,
                    down_ms: 200,
                    up_ms: 800,
                    until_ms: 5_000,
                },
                FaultEvent::OneWay {
                    from: NodeId(1),
                    to: NodeId(2),
                    start_ms: 2_000,
                    end_ms: 4_000,
                },
                FaultEvent::LatencyShift {
                    class: LinkClass::Wan,
                    start_ms: 0,
                    end_ms: 10_000,
                    extra_ms: 150,
                },
                FaultEvent::Churn {
                    start_ms: 3_000,
                    end_ms: 6_000,
                    interval_ms: 1_000,
                    down_ms: 2_000,
                },
                FaultEvent::Corrupt {
                    start_ms: 1_000,
                    end_ms: 9_000,
                    rate: 0.01,
                },
            ],
        }
    }

    #[test]
    fn flap_windows_cycle_down_then_up() {
        let schedule = sample();
        // Cycle of 1000 ms starting at 1000: down during [1000, 1200).
        assert!(!schedule.node_flapped_down(NodeId(3), 999));
        assert!(schedule.node_flapped_down(NodeId(3), 1_000));
        assert!(schedule.node_flapped_down(NodeId(3), 1_199));
        assert!(!schedule.node_flapped_down(NodeId(3), 1_200));
        // Next cycle.
        assert!(schedule.node_flapped_down(NodeId(3), 2_100));
        // Régime over.
        assert!(!schedule.node_flapped_down(NodeId(3), 5_000));
        // Other nodes are unaffected.
        assert!(!schedule.node_flapped_down(NodeId(2), 1_100));
        // A flapped endpoint downs the link in both directions.
        assert!(schedule.link_down(NodeId(3), NodeId(0), 1_100));
        assert!(schedule.link_down(NodeId(0), NodeId(3), 1_100));
    }

    #[test]
    fn oneway_partitions_are_asymmetric() {
        let schedule = sample();
        assert!(schedule.link_down(NodeId(1), NodeId(2), 3_000));
        assert!(!schedule.link_down(NodeId(2), NodeId(1), 3_000));
        assert!(!schedule.link_down(NodeId(1), NodeId(2), 4_000));
    }

    #[test]
    fn latency_and_corruption_windows_apply() {
        let schedule = sample();
        assert_eq!(schedule.extra_latency_ms(LinkClass::Wan, 5_000), 150);
        assert_eq!(schedule.extra_latency_ms(LinkClass::WiredLan, 5_000), 0);
        assert_eq!(schedule.extra_latency_ms(LinkClass::Wan, 10_000), 0);
        assert_eq!(schedule.corruption_rate(500), 0.0);
        assert_eq!(schedule.corruption_rate(1_000), 0.01);
        assert!(schedule.has_corruption());
        assert_eq!(schedule.churn_events().count(), 1);
        assert_eq!(
            schedule.class_tags(),
            vec!["flap", "oneway", "latency", "churn", "corrupt"]
        );
    }

    #[test]
    fn render_parse_round_trips() {
        let schedule = sample();
        let line = schedule.render();
        let parsed = FaultSchedule::parse(&line).expect("parses");
        assert_eq!(parsed, schedule);
        assert_eq!(FaultSchedule::parse("").unwrap(), FaultSchedule::none());
        assert!(FaultSchedule::parse("bogus(x=1)").is_err());
        assert!(FaultSchedule::parse("flap(node=1)").is_err());
        assert!(FaultSchedule::parse("flap node=1").is_err());
    }

    #[test]
    fn generation_is_deterministic_and_windowed() {
        let a = FaultSchedule::generate(42, 16, 30_000);
        let b = FaultSchedule::generate(42, 16, 30_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultSchedule::generate(43, 16, 30_000);
        assert_ne!(a, c, "different seeds give different schedules");
        // Windows stay inside the fault band: after boot, before the tail.
        for seed in 0..50u64 {
            let schedule = FaultSchedule::generate(seed, 16, 30_000);
            for event in &schedule.events {
                let (start, end) = match event {
                    FaultEvent::LinkFlap {
                        start_ms, until_ms, ..
                    }
                    | FaultEvent::FlapOneWay {
                        start_ms, until_ms, ..
                    } => (*start_ms, *until_ms),
                    FaultEvent::OneWay {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::LatencyShift {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::Churn {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::Corrupt {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::Overload {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::Partition {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::WanRegions {
                        start_ms, end_ms, ..
                    }
                    | FaultEvent::MassChurn {
                        start_ms, end_ms, ..
                    } => (*start_ms, *end_ms),
                };
                assert!(start >= 6_000, "fault starts after boot: {event:?}");
                assert!(end <= 14_000, "fault ends before the tail: {event:?}");
                assert!(start < end);
            }
        }
    }

    #[test]
    fn overload_and_partition_classes_render_parse_and_apply() {
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent::Overload {
                    start_ms: 5_000,
                    end_ms: 15_000,
                    interval_ms: 12,
                },
                FaultEvent::Partition {
                    node: NodeId(7),
                    start_ms: 4_000,
                    end_ms: 34_000,
                },
            ],
        };
        assert_eq!(
            schedule.render(),
            "overload(start=5000,end=15000,interval=12);\
             partition(node=7,start=4000,end=34000)"
        );
        assert_eq!(FaultSchedule::parse(&schedule.render()).unwrap(), schedule);
        assert_eq!(schedule.class_tags(), vec!["overload", "partition"]);
        assert_eq!(
            schedule.overload_events().collect::<Vec<_>>(),
            vec![(5_000, 15_000, 12)]
        );
        // The partition isolates node 7 in both directions for the whole
        // window, without touching other links.
        assert!(schedule.node_partitioned(NodeId(7), 4_000));
        assert!(!schedule.node_partitioned(NodeId(7), 34_000));
        assert!(schedule.link_down(NodeId(7), NodeId(0), 10_000));
        assert!(schedule.link_down(NodeId(0), NodeId(7), 10_000));
        assert!(!schedule.link_down(NodeId(0), NodeId(1), 10_000));
        assert!(!schedule.link_down(NodeId(7), NodeId(0), 35_000));
        // Overload sheds no packets by itself.
        assert!(!schedule.node_flapped_down(NodeId(7), 10_000));
    }

    #[test]
    fn wan_region_tiers_charge_per_region_distance() {
        let schedule = FaultSchedule {
            events: vec![FaultEvent::WanRegions {
                start_ms: 6_000,
                end_ms: 12_000,
                regions: 3,
                step_ms: 40,
            }],
        };
        assert_eq!(
            schedule.render(),
            "wanregions(start=6000,end=12000,regions=3,step=40)"
        );
        assert_eq!(FaultSchedule::parse(&schedule.render()).unwrap(), schedule);
        assert_eq!(schedule.class_tags(), vec!["wanregions"]);
        // Node n lives in region n % 3: nodes 0 and 3 are co-located,
        // nodes 0 and 1 one region apart, nodes 0 and 2 two apart.
        assert_eq!(
            schedule.extra_pair_latency_ms(NodeId(0), NodeId(3), 8_000),
            0
        );
        assert_eq!(
            schedule.extra_pair_latency_ms(NodeId(0), NodeId(1), 8_000),
            40
        );
        assert_eq!(
            schedule.extra_pair_latency_ms(NodeId(0), NodeId(2), 8_000),
            80
        );
        assert_eq!(
            schedule.extra_pair_latency_ms(NodeId(2), NodeId(0), 8_000),
            80,
            "distance is symmetric"
        );
        // Outside the window the tiers vanish; the link stays up throughout.
        assert_eq!(
            schedule.extra_pair_latency_ms(NodeId(0), NodeId(2), 12_000),
            0
        );
        assert!(!schedule.link_down(NodeId(0), NodeId(2), 8_000));
        // Per-class latency shifts are a different axis entirely.
        assert_eq!(schedule.extra_latency_ms(LinkClass::Wan, 8_000), 0);
    }

    #[test]
    fn mass_churn_expands_through_churn_events() {
        let schedule = FaultSchedule {
            events: vec![FaultEvent::MassChurn {
                start_ms: 7_000,
                end_ms: 11_000,
                per_second: 4,
                down_ms: 1_800,
            }],
        };
        assert_eq!(
            schedule.render(),
            "masschurn(start=7000,end=11000,per=4,down=1800)"
        );
        assert_eq!(FaultSchedule::parse(&schedule.render()).unwrap(), schedule);
        assert_eq!(schedule.class_tags(), vec!["masschurn"]);
        // 4 cycles a second = one crash every 250 ms, same shape as Churn.
        assert_eq!(
            schedule.churn_events().collect::<Vec<_>>(),
            vec![(7_000, 11_000, 250, 1_800)]
        );
    }

    #[test]
    fn flap_oneway_drops_cycle_in_one_direction_only() {
        let schedule = FaultSchedule {
            events: vec![FaultEvent::FlapOneWay {
                from: NodeId(2),
                to: NodeId(5),
                start_ms: 6_000,
                down_ms: 400,
                up_ms: 600,
                until_ms: 9_000,
            }],
        };
        assert_eq!(
            schedule.render(),
            "flaponeway(from=2,to=5,start=6000,down=400,up=600,until=9000)"
        );
        assert_eq!(FaultSchedule::parse(&schedule.render()).unwrap(), schedule);
        assert_eq!(schedule.class_tags(), vec!["flaponeway"]);
        // Cycle of 1000 ms starting at 6000: down during [6000, 6400).
        assert!(!schedule.link_down(NodeId(2), NodeId(5), 5_999));
        assert!(schedule.link_down(NodeId(2), NodeId(5), 6_000));
        assert!(schedule.link_down(NodeId(2), NodeId(5), 6_399));
        assert!(!schedule.link_down(NodeId(2), NodeId(5), 6_400));
        // Next cycle down window.
        assert!(schedule.link_down(NodeId(2), NodeId(5), 7_100));
        // The reverse direction never drops — asymmetric by construction.
        assert!(!schedule.link_down(NodeId(5), NodeId(2), 6_100));
        // Régime over.
        assert!(!schedule.link_down(NodeId(2), NodeId(5), 9_000));
        // Flap-oneway never marks a *node* down: only the directed link.
        assert!(!schedule.node_flapped_down(NodeId(2), 6_100));
        assert!(!schedule.node_flapped_down(NodeId(5), 6_100));
    }

    #[test]
    fn generation_covers_the_new_classes() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..60u64 {
            for tag in FaultSchedule::generate(seed, 16, 30_000).class_tags() {
                seen.insert(tag);
            }
        }
        for tag in ["wanregions", "masschurn", "flaponeway"] {
            assert!(seen.contains(tag), "generator never emitted `{tag}`");
        }
    }

    #[test]
    fn round_trip_of_generated_schedules() {
        for seed in 0..100u64 {
            let schedule = FaultSchedule::generate(seed, 12, 40_000);
            let reparsed = FaultSchedule::parse(&schedule.render()).expect("parses");
            assert_eq!(reparsed, schedule, "seed {seed}");
        }
    }
}
