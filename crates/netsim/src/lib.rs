//! # morpheus-netsim
//!
//! A deterministic discrete-event network simulator used as the experimental
//! substrate for the Morpheus reproduction.
//!
//! The paper's evaluation ran on a physical testbed (fixed PCs plus HP iPAQ
//! PDAs on an 802.11b cell). The metric it reports — the number of messages
//! sent by the mobile device — is a protocol-level count, so a simulator that
//! reproduces the topology, the link characteristics and the per-node
//! accounting regenerates the same figure without the hardware.
//!
//! The crate provides:
//!
//! * [`time::SimTime`] — simulated time in milliseconds;
//! * [`engine::EventQueue`] — a time-ordered event queue with deterministic
//!   FIFO tie-breaking;
//! * [`rng::SimRng`] — a seeded random number generator;
//! * [`node`] / [`battery`] — device classes and an energy model;
//! * [`link`] — wired LAN, 802.11b-like wireless and WAN link models;
//! * [`topology`] — scenario topologies (LAN, hybrid cell, ad-hoc, WAN);
//! * [`transport::Network`] — packet transmission: loss, latency, fan-out,
//!   per-node statistics and battery drain;
//! * [`stats`] — per-node and network-wide message/byte/energy counters;
//! * [`fault`] — composable, deterministic fault schedules (flaps, one-way
//!   partitions, latency shifts, churn, packet corruption);
//! * [`trace`] — an optional bounded event trace for debugging.

#![forbid(unsafe_code)]

pub mod battery;
pub mod engine;
pub mod fault;
pub mod link;
pub mod node;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;

pub use battery::{Battery, EnergyModel};
pub use engine::EventQueue;
pub use fault::{FaultEvent, FaultSchedule};
pub use link::{LinkClass, LinkModel, LinkOutcome, WanLink, WiredLan, Wireless80211b};
pub use node::{NodeId, NodeKind, SimNode};
pub use rng::SimRng;
pub use stats::{NetworkStats, NodeStats, TrafficClass};
pub use time::SimTime;
pub use topology::{Topology, TopologyKind};
pub use trace::{Trace, TraceEvent};
pub use transport::{Delivery, Network, Packet, PacketTarget};
