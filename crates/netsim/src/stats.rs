//! Per-node and network-wide traffic statistics.
//!
//! The statistics collected here are exactly what the paper's evaluation
//! reports: the number of messages transmitted by each node, broken down into
//! data and control traffic, plus bytes and energy for the extension
//! experiments.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// Accounting class of a packet (mirrors the protocol kernel's packet class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Application data.
    Data,
    /// Group communication control traffic.
    Control,
    /// Context dissemination traffic.
    Context,
    /// Loss-repair traffic (NACK digests, pulls, re-streamed originals).
    Repair,
    /// Overlay maintenance traffic (partial-view membership, shuffles,
    /// per-room tree grafts and prunes).
    Overlay,
}

impl TrafficClass {
    /// All traffic classes, in display order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Data,
        TrafficClass::Control,
        TrafficClass::Context,
        TrafficClass::Repair,
        TrafficClass::Overlay,
    ];
}

/// Counters for one node.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Messages sent, per traffic class.
    pub sent: BTreeMap<TrafficClass, u64>,
    /// Messages received, per traffic class.
    pub received: BTreeMap<TrafficClass, u64>,
    /// Messages lost in transit that this node originated (all classes).
    /// Counts only losses on links towards *live* receivers — the safety
    /// metric; packets addressed to a crashed node are accounted under
    /// [`NodeStats::lost_to_dead`] instead.
    pub lost: u64,
    /// Messages lost in transit, per traffic class (live receivers only).
    pub lost_by_class: BTreeMap<TrafficClass, u64>,
    /// Messages this node addressed to a receiver that was crashed (or
    /// battery-depleted) at delivery time. Kept separate from `lost` so
    /// "zero data loss for surviving members" stays assertable across a
    /// crash window: traffic in flight to a dead node is not a protocol
    /// failure.
    pub lost_to_dead: u64,
    /// Messages this node sent that an injected fault (link flap, one-way
    /// partition — see [`crate::FaultSchedule`]) swallowed. Kept separate
    /// from `lost` for the same reason as `lost_to_dead`: injected fault
    /// drops are the experiment, not a live-link protocol failure.
    pub fault_dropped: u64,
    /// Bytes sent (sum over all classes).
    pub bytes_sent: u64,
    /// Bytes sent, per traffic class — what lets the evaluation assert that
    /// a node's data+overlay cost tracks its subscriptions while repair and
    /// control stay bounded.
    pub bytes_sent_by_class: BTreeMap<TrafficClass, u64>,
    /// Bytes received (sum over all classes).
    pub bytes_received: u64,
    /// Energy consumed by the radio, in joules.
    pub energy_joules: f64,
}

impl NodeStats {
    /// Records one transmitted message.
    pub fn record_sent(&mut self, class: TrafficClass, bytes: usize, energy_j: f64) {
        *self.sent.entry(class).or_insert(0) += 1;
        self.bytes_sent += bytes as u64;
        *self.bytes_sent_by_class.entry(class).or_insert(0) += bytes as u64;
        self.energy_joules += energy_j;
    }

    /// Records one received message.
    pub fn record_received(&mut self, class: TrafficClass, bytes: usize, energy_j: f64) {
        *self.received.entry(class).or_insert(0) += 1;
        self.bytes_received += bytes as u64;
        self.energy_joules += energy_j;
    }

    /// Records one lost message originated by this node.
    pub fn record_lost(&mut self, class: TrafficClass) {
        self.lost += 1;
        *self.lost_by_class.entry(class).or_insert(0) += 1;
    }

    /// Records one message addressed to a dead receiver.
    pub fn record_lost_to_dead(&mut self) {
        self.lost_to_dead += 1;
    }

    /// Records one message swallowed by an injected fault.
    pub fn record_fault_dropped(&mut self) {
        self.fault_dropped += 1;
    }

    /// Messages lost of one class.
    pub fn lost_of(&self, class: TrafficClass) -> u64 {
        self.lost_by_class.get(&class).copied().unwrap_or(0)
    }

    /// Total messages sent across every class.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages received across every class.
    pub fn total_received(&self) -> u64 {
        self.received.values().sum()
    }

    /// Messages sent of one class.
    pub fn sent_of(&self, class: TrafficClass) -> u64 {
        self.sent.get(&class).copied().unwrap_or(0)
    }

    /// Messages received of one class.
    pub fn received_of(&self, class: TrafficClass) -> u64 {
        self.received.get(&class).copied().unwrap_or(0)
    }

    /// Bytes sent of one class.
    pub fn bytes_sent_of(&self, class: TrafficClass) -> u64 {
        self.bytes_sent_by_class.get(&class).copied().unwrap_or(0)
    }
}

/// Statistics for the whole network, indexed by node.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    per_node: BTreeMap<NodeId, NodeStats>,
}

impl NetworkStats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counters for one node, created on first use.
    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeStats {
        self.per_node.entry(node).or_default()
    }

    /// Counters for one node, if it ever sent or received anything.
    pub fn node(&self, node: NodeId) -> Option<&NodeStats> {
        self.per_node.get(&node)
    }

    /// Counters for one node, or empty defaults.
    pub fn node_or_default(&self, node: NodeId) -> NodeStats {
        self.per_node.get(&node).cloned().unwrap_or_default()
    }

    /// Iterates over every node's counters in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &NodeStats)> {
        self.per_node.iter()
    }

    /// Total messages sent by every node.
    pub fn total_sent(&self) -> u64 {
        self.per_node.values().map(NodeStats::total_sent).sum()
    }

    /// Total messages received by every node.
    pub fn total_received(&self) -> u64 {
        self.per_node.values().map(NodeStats::total_received).sum()
    }

    /// Total messages lost in transit.
    pub fn total_lost(&self) -> u64 {
        self.per_node.values().map(|stats| stats.lost).sum()
    }

    /// Total messages lost in transit of one class.
    pub fn total_lost_of(&self, class: TrafficClass) -> u64 {
        self.per_node
            .values()
            .map(|stats| stats.lost_of(class))
            .sum()
    }

    /// Total messages addressed to dead receivers.
    pub fn total_lost_to_dead(&self) -> u64 {
        self.per_node.values().map(|stats| stats.lost_to_dead).sum()
    }

    /// Total messages swallowed by injected faults.
    pub fn total_fault_dropped(&self) -> u64 {
        self.per_node
            .values()
            .map(|stats| stats.fault_dropped)
            .sum()
    }

    /// Clears every counter (used between benchmark repetitions).
    pub fn reset(&mut self) {
        self.per_node.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_stats_accumulate() {
        let mut stats = NodeStats::default();
        stats.record_sent(TrafficClass::Data, 100, 0.5);
        stats.record_sent(TrafficClass::Control, 20, 0.1);
        stats.record_received(TrafficClass::Data, 100, 0.2);
        stats.record_lost(TrafficClass::Data);

        assert_eq!(stats.total_sent(), 2);
        assert_eq!(stats.total_received(), 1);
        assert_eq!(stats.sent_of(TrafficClass::Data), 1);
        assert_eq!(stats.sent_of(TrafficClass::Context), 0);
        assert_eq!(stats.received_of(TrafficClass::Data), 1);
        assert_eq!(stats.bytes_sent, 120);
        assert_eq!(stats.bytes_sent_of(TrafficClass::Data), 100);
        assert_eq!(stats.bytes_sent_of(TrafficClass::Control), 20);
        assert_eq!(stats.bytes_sent_of(TrafficClass::Repair), 0);
        assert_eq!(stats.bytes_received, 100);
        assert_eq!(stats.lost, 1);
        assert_eq!(stats.lost_of(TrafficClass::Data), 1);
        assert_eq!(stats.lost_of(TrafficClass::Control), 0);
        assert!((stats.energy_joules - 0.8).abs() < 1e-9);
    }

    #[test]
    fn network_stats_aggregate_over_nodes() {
        let mut stats = NetworkStats::new();
        stats
            .node_mut(NodeId(1))
            .record_sent(TrafficClass::Data, 10, 0.0);
        stats
            .node_mut(NodeId(2))
            .record_sent(TrafficClass::Data, 10, 0.0);
        stats
            .node_mut(NodeId(2))
            .record_received(TrafficClass::Data, 10, 0.0);

        assert_eq!(stats.total_sent(), 2);
        assert_eq!(stats.total_received(), 1);
        assert_eq!(stats.total_lost(), 0);
        assert!(stats.node(NodeId(1)).is_some());
        assert!(stats.node(NodeId(9)).is_none());
        assert_eq!(stats.node_or_default(NodeId(9)).total_sent(), 0);
        assert_eq!(stats.iter().count(), 2);

        stats.reset();
        assert_eq!(stats.total_sent(), 0);
    }
}
