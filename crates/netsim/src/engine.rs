//! The discrete-event queue driving a simulation run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event queue.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which keeps runs deterministic regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules an event at the given time.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap
            .pop()
            .map(|Reverse(entry)| (entry.at, entry.event))
    }

    /// Removes and returns the earliest event only if it satisfies the
    /// predicate; otherwise leaves the queue untouched.
    ///
    /// This lets a caller drain a *batch* of related events scheduled for
    /// the same instant (e.g. all packets arriving at one node) without
    /// popping and re-inserting, which would disturb the FIFO tie-break.
    pub fn pop_if(&mut self, predicate: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        let Reverse(head) = self.heap.peek()?;
        if !predicate(head.at, &head.event) {
            return None;
        }
        self.pop()
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.at)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::from_millis(30), "c");
        queue.push(SimTime::from_millis(10), "a");
        queue.push(SimTime::from_millis(20), "b");

        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(10)));
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_preserve_insertion_order() {
        let mut queue = EventQueue::new();
        for label in ["first", "second", "third", "fourth"] {
            queue.push(SimTime::from_millis(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn len_and_empty() {
        let mut queue: EventQueue<u32> = EventQueue::new();
        assert!(queue.is_empty());
        queue.push(SimTime::ZERO, 1);
        queue.push(SimTime::ZERO, 2);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.scheduled_total(), 2);
        queue.pop();
        assert_eq!(queue.len(), 1);
        queue.pop();
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::from_millis(10), 10u32);
        queue.push(SimTime::from_millis(5), 5);
        assert_eq!(queue.pop().unwrap().1, 5);
        queue.push(SimTime::from_millis(1), 1);
        queue.push(SimTime::from_millis(20), 20);
        assert_eq!(queue.pop().unwrap().1, 1);
        assert_eq!(queue.pop().unwrap().1, 10);
        assert_eq!(queue.pop().unwrap().1, 20);
    }
}
