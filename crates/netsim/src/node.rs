//! Simulated nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::battery::Battery;

/// Identifier of a simulated node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw numeric identifier.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sim{}", self.0)
    }
}

/// The kind of device a simulated node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A fixed PC or server on the wired infrastructure (mains powered).
    FixedPc,
    /// A PDA on the wireless cell (battery powered), like the paper's HP iPAQ 5550.
    MobilePda,
    /// A laptop on the wireless cell (battery powered, larger battery).
    Laptop,
}

impl NodeKind {
    /// Whether the node is battery powered and uses the wireless link.
    pub fn is_mobile(self) -> bool {
        !matches!(self, NodeKind::FixedPc)
    }

    /// Typical battery capacity for the device kind, in joules.
    ///
    /// The absolute values only matter relative to the per-message energy
    /// model; they are sized so that lifetime experiments finish within a
    /// simulated hour.
    pub fn battery_capacity_joules(self) -> f64 {
        match self {
            NodeKind::FixedPc => f64::INFINITY,
            NodeKind::MobilePda => 5_000.0,
            NodeKind::Laptop => 50_000.0,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NodeKind::FixedPc => "fixed-pc",
            NodeKind::MobilePda => "mobile-pda",
            NodeKind::Laptop => "laptop",
        };
        f.write_str(name)
    }
}

/// A simulated node: identity, device kind, liveness and battery.
#[derive(Debug, Clone)]
pub struct SimNode {
    /// Identifier of the node.
    pub id: NodeId,
    /// Device kind.
    pub kind: NodeKind,
    /// Whether the node is currently up.
    pub alive: bool,
    /// Battery state (fixed nodes carry an effectively infinite battery).
    pub battery: Battery,
}

impl SimNode {
    /// Creates a node of the given kind with a full battery.
    pub fn new(id: NodeId, kind: NodeKind) -> Self {
        Self {
            id,
            kind,
            alive: true,
            battery: Battery::new(kind.battery_capacity_joules()),
        }
    }

    /// Creates a fixed PC node.
    pub fn fixed(id: NodeId) -> Self {
        Self::new(id, NodeKind::FixedPc)
    }

    /// Creates a mobile PDA node.
    pub fn mobile(id: NodeId) -> Self {
        Self::new(id, NodeKind::MobilePda)
    }

    /// Whether the node can currently send or receive (alive and not depleted).
    pub fn is_operational(&self) -> bool {
        self.alive && !self.battery.is_depleted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_mobility() {
        assert!(!NodeKind::FixedPc.is_mobile());
        assert!(NodeKind::MobilePda.is_mobile());
        assert!(NodeKind::Laptop.is_mobile());
        assert!(NodeKind::FixedPc.battery_capacity_joules().is_infinite());
        assert!(
            NodeKind::Laptop.battery_capacity_joules()
                > NodeKind::MobilePda.battery_capacity_joules()
        );
    }

    #[test]
    fn nodes_start_operational() {
        let node = SimNode::mobile(NodeId(3));
        assert!(node.is_operational());
        assert_eq!(node.id.raw(), 3);
        assert_eq!(node.kind, NodeKind::MobilePda);
        assert_eq!(node.id.to_string(), "sim3");
    }

    #[test]
    fn dead_nodes_are_not_operational() {
        let mut node = SimNode::fixed(NodeId(1));
        node.alive = false;
        assert!(!node.is_operational());
    }

    #[test]
    fn depleted_battery_makes_node_inoperational() {
        let mut node = SimNode::mobile(NodeId(2));
        node.battery.consume(f64::MAX);
        assert!(!node.is_operational());
    }
}
