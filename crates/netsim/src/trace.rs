//! A bounded trace of simulation events, for debugging and reporting.

use std::collections::VecDeque;

use crate::node::NodeId;
use crate::stats::TrafficClass;
use crate::time::SimTime;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A packet was transmitted.
    Sent {
        /// Simulated time of the transmission.
        at: SimTime,
        /// Sending node.
        from: NodeId,
        /// Accounting class.
        class: TrafficClass,
        /// Size in bytes.
        size: usize,
    },
    /// A packet was delivered.
    Delivered {
        /// Simulated time of the delivery.
        at: SimTime,
        /// Receiving node.
        to: NodeId,
        /// Original sender.
        from: NodeId,
    },
    /// A packet was lost in transit.
    Lost {
        /// Simulated time of the loss.
        at: SimTime,
        /// Sending node.
        from: NodeId,
    },
    /// A free-form annotation (reconfigurations, view changes, ...).
    Note {
        /// Simulated time of the annotation.
        at: SimTime,
        /// The annotation text.
        text: String,
    },
}

impl TraceEvent {
    /// The time the event happened.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Lost { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

/// A bounded ring buffer of trace events.
#[derive(Debug)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Creates a disabled trace that records nothing.
    pub fn disabled() -> Self {
        Self {
            events: VecDeque::new(),
            capacity: 0,
            dropped: 0,
            enabled: false,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event, evicting the oldest one when full.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Adds a free-form annotation.
    pub fn note(&mut self, at: SimTime, text: impl Into<String>) {
        self.record(TraceEvent::Note {
            at,
            text: text.into(),
        });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_evicts_in_order() {
        let mut trace = Trace::new(3);
        for index in 0..5u32 {
            trace.note(SimTime::from_millis(index as u64), format!("event {index}"));
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 2);
        let times: Vec<u64> = trace.events().map(|event| event.at().as_millis()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::disabled();
        trace.note(SimTime::ZERO, "ignored");
        trace.record(TraceEvent::Lost {
            at: SimTime::ZERO,
            from: NodeId(1),
        });
        assert!(trace.is_empty());
        assert!(!trace.is_enabled());
    }

    #[test]
    fn event_times_are_reported() {
        let event = TraceEvent::Sent {
            at: SimTime::from_millis(7),
            from: NodeId(1),
            class: TrafficClass::Data,
            size: 10,
        };
        assert_eq!(event.at().as_millis(), 7);
        let delivered = TraceEvent::Delivered {
            at: SimTime::from_millis(9),
            to: NodeId(2),
            from: NodeId(1),
        };
        assert_eq!(delivered.at().as_millis(), 9);
    }
}
