//! Scenario topologies.
//!
//! A topology assigns a device kind to every node and decides, for each
//! ordered sender/receiver pair, which link model the transmission uses and
//! whether native multicast is available. Three topology kinds cover the
//! paper's scenarios plus the motivation section's large-scale setting:
//!
//! * [`TopologyKind::Lan`] — every node on the same wired LAN (homogeneous
//!   fixed scenario, optionally with native multicast);
//! * [`TopologyKind::HybridCell`] — a wired LAN with an 802.11b access point:
//!   mobile devices reach everyone over the wireless hop, fixed devices reach
//!   each other over the wire (the paper's evaluation scenario);
//! * [`TopologyKind::AdHoc`] — all nodes mobile, single wireless cell
//!   (homogeneous mobile scenario);
//! * [`TopologyKind::Wan`] — geographically distributed fixed nodes
//!   (epidemic-multicast motivation).

use crate::link::{LinkClass, LinkModel, WanLink, WiredLan, Wireless80211b};
use crate::node::{NodeId, NodeKind, SimNode};

/// The shape of the network connecting the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// All nodes on one wired LAN.
    Lan {
        /// Whether the LAN offers native (IP) multicast.
        native_multicast: bool,
    },
    /// Fixed nodes on a wired LAN plus mobile nodes behind an 802.11b access
    /// point bridging onto that LAN.
    HybridCell,
    /// All nodes mobile, one shared wireless cell.
    AdHoc,
    /// Fixed nodes spread over a wide-area network.
    Wan,
}

/// A concrete topology: node kinds plus link models.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    nodes: Vec<SimNode>,
    wired: WiredLan,
    wireless: Wireless80211b,
    wan: WanLink,
}

impl Topology {
    /// Creates a topology of the given kind over the given nodes.
    pub fn new(kind: TopologyKind, nodes: Vec<SimNode>) -> Self {
        Self {
            kind,
            nodes,
            wired: WiredLan::default(),
            wireless: Wireless80211b::default(),
            wan: WanLink::default(),
        }
    }

    /// The paper's evaluation topology: one fixed PC plus `mobile_count`
    /// PDAs in the same 802.11b cell.
    pub fn hybrid_cell(fixed_count: usize, mobile_count: usize) -> Self {
        let mut nodes = Vec::new();
        for index in 0..fixed_count {
            nodes.push(SimNode::fixed(NodeId(index as u32)));
        }
        for index in 0..mobile_count {
            nodes.push(SimNode::mobile(NodeId((fixed_count + index) as u32)));
        }
        Self::new(TopologyKind::HybridCell, nodes)
    }

    /// A homogeneous wired LAN of `count` fixed PCs.
    pub fn lan(count: usize, native_multicast: bool) -> Self {
        let nodes = (0..count)
            .map(|index| SimNode::fixed(NodeId(index as u32)))
            .collect();
        Self::new(TopologyKind::Lan { native_multicast }, nodes)
    }

    /// A homogeneous ad-hoc cell of `count` mobile PDAs.
    pub fn ad_hoc(count: usize) -> Self {
        let nodes = (0..count)
            .map(|index| SimNode::mobile(NodeId(index as u32)))
            .collect();
        Self::new(TopologyKind::AdHoc, nodes)
    }

    /// A wide-area deployment of `count` fixed nodes.
    pub fn wan(count: usize) -> Self {
        let nodes = (0..count)
            .map(|index| SimNode::fixed(NodeId(index as u32)))
            .collect();
        Self::new(TopologyKind::Wan, nodes)
    }

    /// Overrides the wireless link model (builder style).
    pub fn with_wireless(mut self, wireless: Wireless80211b) -> Self {
        self.wireless = wireless;
        self
    }

    /// Overrides the wired link model (builder style).
    pub fn with_wired(mut self, wired: WiredLan) -> Self {
        self.wired = wired;
        self
    }

    /// Overrides the WAN link model (builder style).
    pub fn with_wan(mut self, wan: WanLink) -> Self {
        self.wan = wan;
        self
    }

    /// The topology kind.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The nodes, in id order.
    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// Mutable access to the nodes (battery drain, failures).
    pub fn nodes_mut(&mut self) -> &mut [SimNode] {
        &mut self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node identifiers, in id order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|node| node.id).collect()
    }

    /// The slot of a node in the dense `nodes` vector. Every constructor
    /// lays nodes out in id order (`nodes[i].id == NodeId(i)`), so the
    /// common case is a direct O(1) index; topologies assembled by hand with
    /// sparse ids fall back to a scan.
    fn slot_of(&self, id: NodeId) -> Option<usize> {
        match self.nodes.get(id.0 as usize) {
            Some(node) if node.id == id => Some(id.0 as usize),
            _ => self.nodes.iter().position(|node| node.id == id),
        }
    }

    /// Looks a node up by id (O(1) for the dense id layouts every built-in
    /// constructor produces — this sits on the per-packet hot path).
    pub fn node(&self, id: NodeId) -> Option<&SimNode> {
        self.slot_of(id).map(|slot| &self.nodes[slot])
    }

    /// Mutable lookup by id (same O(1) fast path as [`Topology::node`]).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut SimNode> {
        self.slot_of(id).map(move |slot| &mut self.nodes[slot])
    }

    /// The device kind of a node (fixed PC when unknown).
    pub fn kind_of(&self, id: NodeId) -> NodeKind {
        self.node(id)
            .map(|node| node.kind)
            .unwrap_or(NodeKind::FixedPc)
    }

    /// Whether the segment the node sits on offers native multicast.
    pub fn native_multicast_available(&self, _id: NodeId) -> bool {
        matches!(
            self.kind,
            TopologyKind::Lan {
                native_multicast: true
            }
        )
    }

    /// Members of the broadcast domain of `sender` (everyone reachable with
    /// one native multicast transmission), excluding the sender.
    pub fn broadcast_domain(&self, sender: NodeId) -> Vec<NodeId> {
        match self.kind {
            TopologyKind::Lan {
                native_multicast: true,
            } => self
                .nodes
                .iter()
                .map(|n| n.id)
                .filter(|id| *id != sender)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The link class used for a transmission from `from` to `to`.
    pub fn link_class(&self, from: NodeId, to: NodeId) -> LinkClass {
        match self.kind {
            TopologyKind::Lan { .. } => LinkClass::WiredLan,
            TopologyKind::AdHoc => LinkClass::Wireless,
            TopologyKind::Wan => LinkClass::Wan,
            TopologyKind::HybridCell => {
                if self.kind_of(from).is_mobile() || self.kind_of(to).is_mobile() {
                    LinkClass::Wireless
                } else {
                    LinkClass::WiredLan
                }
            }
        }
    }

    /// The link model used for a transmission from `from` to `to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> &dyn LinkModel {
        match self.link_class(from, to) {
            LinkClass::WiredLan => &self.wired,
            LinkClass::Wireless => &self.wireless,
            LinkClass::Wan => &self.wan,
        }
    }

    /// The loss rate observed on the local link of a node (used as context).
    pub fn local_loss_rate(&self, id: NodeId) -> f64 {
        match self.kind {
            TopologyKind::Lan { .. } => self.wired.loss_rate,
            TopologyKind::AdHoc => self.wireless.loss_rate,
            TopologyKind::Wan => self.wan.loss_rate,
            TopologyKind::HybridCell => {
                if self.kind_of(id).is_mobile() {
                    self.wireless.loss_rate
                } else {
                    self.wired.loss_rate
                }
            }
        }
    }

    /// The nominal bandwidth of the local link of a node, in kbit/s.
    pub fn local_bandwidth_kbps(&self, id: NodeId) -> u32 {
        match self.kind {
            TopologyKind::Lan { .. } => self.wired.bandwidth_kbps,
            TopologyKind::AdHoc => self.wireless.bandwidth_kbps,
            TopologyKind::Wan => self.wan.bandwidth_kbps,
            TopologyKind::HybridCell => {
                if self.kind_of(id).is_mobile() {
                    self.wireless.bandwidth_kbps
                } else {
                    self.wired.bandwidth_kbps
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_cell_mixes_device_kinds() {
        let topology = Topology::hybrid_cell(1, 3);
        assert_eq!(topology.len(), 4);
        assert_eq!(topology.kind_of(NodeId(0)), NodeKind::FixedPc);
        assert_eq!(topology.kind_of(NodeId(1)), NodeKind::MobilePda);
        assert!(!topology.is_empty());
        assert_eq!(topology.node_ids().len(), 4);
    }

    #[test]
    fn hybrid_links_depend_on_endpoints() {
        let topology = Topology::hybrid_cell(2, 2);
        assert_eq!(
            topology.link_class(NodeId(0), NodeId(1)),
            LinkClass::WiredLan
        );
        assert_eq!(
            topology.link_class(NodeId(0), NodeId(2)),
            LinkClass::Wireless
        );
        assert_eq!(
            topology.link_class(NodeId(2), NodeId(3)),
            LinkClass::Wireless
        );
        assert_eq!(
            topology.link(NodeId(2), NodeId(3)).class(),
            LinkClass::Wireless
        );
    }

    #[test]
    fn lan_supports_native_multicast_when_enabled() {
        let with = Topology::lan(4, true);
        let without = Topology::lan(4, false);
        assert!(with.native_multicast_available(NodeId(0)));
        assert!(!without.native_multicast_available(NodeId(0)));
        assert_eq!(with.broadcast_domain(NodeId(0)).len(), 3);
        assert!(without.broadcast_domain(NodeId(0)).is_empty());
    }

    #[test]
    fn ad_hoc_and_wan_use_their_links() {
        let ad_hoc = Topology::ad_hoc(3);
        let wan = Topology::wan(3);
        assert_eq!(ad_hoc.link_class(NodeId(0), NodeId(1)), LinkClass::Wireless);
        assert_eq!(wan.link_class(NodeId(0), NodeId(1)), LinkClass::Wan);
        assert!(ad_hoc.nodes().iter().all(|node| node.kind.is_mobile()));
        assert!(wan.nodes().iter().all(|node| !node.kind.is_mobile()));
    }

    #[test]
    fn local_context_reflects_device_position() {
        let topology = Topology::hybrid_cell(1, 2).with_wireless(Wireless80211b::degraded(0.1));
        assert!(topology.local_loss_rate(NodeId(1)) > topology.local_loss_rate(NodeId(0)));
        assert!(
            topology.local_bandwidth_kbps(NodeId(1)) < topology.local_bandwidth_kbps(NodeId(0))
        );
    }

    #[test]
    fn sparse_node_ids_still_resolve() {
        // Hand-assembled topologies may skip ids; the O(1) fast path must
        // fall back to a scan instead of resolving the wrong node.
        let nodes = vec![SimNode::fixed(NodeId(0)), SimNode::fixed(NodeId(5))];
        let topology = Topology::new(
            TopologyKind::Lan {
                native_multicast: false,
            },
            nodes,
        );
        assert_eq!(topology.node(NodeId(5)).unwrap().id, NodeId(5));
        assert!(topology.node(NodeId(1)).is_none());
        let mut topology = topology;
        topology.node_mut(NodeId(5)).unwrap().alive = false;
        assert!(!topology.node(NodeId(5)).unwrap().alive);
    }

    #[test]
    fn node_lookup_and_mutation() {
        let mut topology = Topology::ad_hoc(2);
        assert!(topology.node(NodeId(1)).is_some());
        assert!(topology.node(NodeId(9)).is_none());
        topology.node_mut(NodeId(1)).unwrap().alive = false;
        assert!(!topology.node(NodeId(1)).unwrap().alive);
        assert_eq!(topology.kind_of(NodeId(9)), NodeKind::FixedPc);
    }
}
