//! Link models: latency, jitter and loss per transmission.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// The coarse class of a link, decided by the topology for each sender/receiver pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Switched wired LAN (fixed PC to fixed PC).
    WiredLan,
    /// 802.11b cell (any hop involving a mobile device).
    Wireless,
    /// Wide-area path (geographically distributed participants).
    Wan,
}

/// The outcome of attempting one transmission over a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkOutcome {
    /// The packet is delivered after the given latency in milliseconds.
    Delivered {
        /// End-to-end latency in milliseconds.
        latency_ms: u64,
    },
    /// The packet is lost.
    Lost,
}

impl LinkOutcome {
    /// Whether the packet was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, LinkOutcome::Delivered { .. })
    }
}

/// A link model: given a packet size it yields an outcome.
pub trait LinkModel {
    /// The class of the link.
    fn class(&self) -> LinkClass;

    /// Nominal bandwidth in kbit/s (exposed to the context subsystem).
    fn bandwidth_kbps(&self) -> u32;

    /// Baseline loss rate in `[0, 1]`.
    fn loss_rate(&self) -> f64;

    /// Simulates one transmission of `size_bytes` bytes.
    fn transmit(&self, size_bytes: usize, rng: &mut SimRng) -> LinkOutcome;
}

fn latency_with_jitter(base_ms: f64, jitter_ms: f64, serialize_ms: f64, rng: &mut SimRng) -> u64 {
    let jitter = if jitter_ms > 0.0 {
        rng.random_f64() * jitter_ms
    } else {
        0.0
    };
    (base_ms + jitter + serialize_ms).round().max(1.0) as u64
}

/// A switched 100 Mbit/s wired LAN segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WiredLan {
    /// Propagation plus switching delay in milliseconds.
    pub base_latency_ms: f64,
    /// Maximum additional jitter in milliseconds.
    pub jitter_ms: f64,
    /// Packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
    /// Bandwidth in kbit/s.
    pub bandwidth_kbps: u32,
}

impl Default for WiredLan {
    fn default() -> Self {
        Self {
            base_latency_ms: 0.3,
            jitter_ms: 0.2,
            loss_rate: 0.0,
            bandwidth_kbps: 100_000,
        }
    }
}

impl LinkModel for WiredLan {
    fn class(&self) -> LinkClass {
        LinkClass::WiredLan
    }

    fn bandwidth_kbps(&self) -> u32 {
        self.bandwidth_kbps
    }

    fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    fn transmit(&self, size_bytes: usize, rng: &mut SimRng) -> LinkOutcome {
        if rng.chance(self.loss_rate) {
            return LinkOutcome::Lost;
        }
        let serialize_ms = (size_bytes as f64 * 8.0) / (self.bandwidth_kbps as f64);
        LinkOutcome::Delivered {
            latency_ms: latency_with_jitter(
                self.base_latency_ms,
                self.jitter_ms,
                serialize_ms,
                rng,
            ),
        }
    }
}

/// An 802.11b wireless cell, modelled after the paper's PDA testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wireless80211b {
    /// Medium access plus propagation delay in milliseconds.
    pub base_latency_ms: f64,
    /// Maximum additional jitter in milliseconds (contention).
    pub jitter_ms: f64,
    /// Packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
    /// Effective bandwidth in kbit/s (nominal 11 Mbit/s, ~5.5 effective).
    pub bandwidth_kbps: u32,
}

impl Default for Wireless80211b {
    fn default() -> Self {
        Self {
            base_latency_ms: 2.5,
            jitter_ms: 2.0,
            loss_rate: 0.01,
            bandwidth_kbps: 5_500,
        }
    }
}

impl Wireless80211b {
    /// A lossier configuration representing a degraded radio environment.
    pub fn degraded(loss_rate: f64) -> Self {
        Self {
            loss_rate,
            ..Self::default()
        }
    }
}

impl LinkModel for Wireless80211b {
    fn class(&self) -> LinkClass {
        LinkClass::Wireless
    }

    fn bandwidth_kbps(&self) -> u32 {
        self.bandwidth_kbps
    }

    fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    fn transmit(&self, size_bytes: usize, rng: &mut SimRng) -> LinkOutcome {
        if rng.chance(self.loss_rate) {
            return LinkOutcome::Lost;
        }
        let serialize_ms = (size_bytes as f64 * 8.0) / (self.bandwidth_kbps as f64);
        LinkOutcome::Delivered {
            latency_ms: latency_with_jitter(
                self.base_latency_ms,
                self.jitter_ms,
                serialize_ms,
                rng,
            ),
        }
    }
}

/// A wide-area path between geographically distributed participants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WanLink {
    /// One-way latency in milliseconds.
    pub base_latency_ms: f64,
    /// Maximum additional jitter in milliseconds.
    pub jitter_ms: f64,
    /// Packet loss rate in `[0, 1]`.
    pub loss_rate: f64,
    /// Bandwidth in kbit/s.
    pub bandwidth_kbps: u32,
}

impl Default for WanLink {
    fn default() -> Self {
        Self {
            base_latency_ms: 40.0,
            jitter_ms: 15.0,
            loss_rate: 0.005,
            bandwidth_kbps: 10_000,
        }
    }
}

impl LinkModel for WanLink {
    fn class(&self) -> LinkClass {
        LinkClass::Wan
    }

    fn bandwidth_kbps(&self) -> u32 {
        self.bandwidth_kbps
    }

    fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    fn transmit(&self, size_bytes: usize, rng: &mut SimRng) -> LinkOutcome {
        if rng.chance(self.loss_rate) {
            return LinkOutcome::Lost;
        }
        let serialize_ms = (size_bytes as f64 * 8.0) / (self.bandwidth_kbps as f64);
        LinkOutcome::Delivered {
            latency_ms: latency_with_jitter(
                self.base_latency_ms,
                self.jitter_ms,
                serialize_ms,
                rng,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_links_always_deliver() {
        let link = WiredLan::default();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert!(link.transmit(256, &mut rng).is_delivered());
        }
    }

    #[test]
    fn fully_lossy_links_never_deliver() {
        let link = Wireless80211b {
            loss_rate: 1.0,
            ..Wireless80211b::default()
        };
        let mut rng = SimRng::new(1);
        for _ in 0..20 {
            assert!(!link.transmit(256, &mut rng).is_delivered());
        }
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let link = Wireless80211b::degraded(0.2);
        let mut rng = SimRng::new(99);
        let delivered = (0..2000)
            .filter(|_| link.transmit(128, &mut rng).is_delivered())
            .count();
        assert!((1400..=1800).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn wireless_is_slower_than_wired() {
        let wired = WiredLan::default();
        let wireless = Wireless80211b::default();
        let mut rng = SimRng::new(5);
        let lat = |outcome: LinkOutcome| match outcome {
            LinkOutcome::Delivered { latency_ms } => latency_ms,
            LinkOutcome::Lost => 0,
        };
        let mut wired_total = 0u64;
        let mut wireless_total = 0u64;
        for _ in 0..200 {
            wired_total += lat(wired.transmit(512, &mut rng));
            wireless_total += lat(wireless.transmit(512, &mut rng));
        }
        assert!(wireless_total > wired_total);
    }

    #[test]
    fn larger_packets_take_longer_on_slow_links() {
        let link = Wireless80211b {
            jitter_ms: 0.0,
            loss_rate: 0.0,
            ..Wireless80211b::default()
        };
        let mut rng = SimRng::new(2);
        let small = match link.transmit(64, &mut rng) {
            LinkOutcome::Delivered { latency_ms } => latency_ms,
            LinkOutcome::Lost => panic!(),
        };
        let large = match link.transmit(64 * 1024, &mut rng) {
            LinkOutcome::Delivered { latency_ms } => latency_ms,
            LinkOutcome::Lost => panic!(),
        };
        assert!(large > small);
    }

    #[test]
    fn classes_are_reported() {
        assert_eq!(WiredLan::default().class(), LinkClass::WiredLan);
        assert_eq!(Wireless80211b::default().class(), LinkClass::Wireless);
        assert_eq!(WanLink::default().class(), LinkClass::Wan);
        assert!(WanLink::default().bandwidth_kbps() > 0);
    }
}
