//! Seeded, reproducible randomness for the simulator.

/// A deterministic random number generator.
///
/// Every experiment takes an explicit seed so runs are exactly reproducible;
/// the benchmark harness varies the seed to obtain confidence intervals.
/// The generator is SplitMix64, which is statistically strong enough for
/// link-loss draws and shuffles while staying dependency-free (the workspace
/// builds offline, so the `rand` crate is unavailable).
#[derive(Debug)]
pub struct SimRng {
    state: u64,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed integer in `[0, bound)`. Returns 0 when
    /// `bound` is 0.
    pub fn random_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let value = self.next_u64();
            if value < zone {
                return value % bound;
            }
        }
    }

    /// A uniformly distributed integer in `[low, high]`.
    pub fn random_range_inclusive(&mut self, low: u64, high: u64) -> u64 {
        if low >= high {
            return low;
        }
        let span = high - low;
        if span == u64::MAX {
            // `span + 1` would overflow; the range is the whole u64 domain.
            return self.next_u64();
        }
        low + self.random_below(span + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.random_f64() < p
        }
    }

    /// A raw 64-bit random value.
    pub fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Picks a uniformly random element of the slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let index = self.random_below(items.len() as u64) as usize;
            items.get(index)
        }
    }

    /// Returns up to `count` distinct indices in `[0, len)`, uniformly at
    /// random, in arbitrary order.
    pub fn sample_indices(&mut self, len: usize, count: usize) -> Vec<usize> {
        let count = count.min(len);
        let mut indices: Vec<usize> = (0..len).collect();
        // Partial Fisher-Yates: only the first `count` positions are needed.
        for i in 0..count {
            let j = i + self.random_below((len - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(count);
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..32 {
            assert_eq!(a.random_u64(), b.random_u64());
        }
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.random_u64() == b.random_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..1000).filter(|_| rng.chance(0.3)).count();
        assert!(hits > 200 && hits < 400, "hits {hits}");
    }

    #[test]
    fn random_below_bounds() {
        let mut rng = SimRng::new(3);
        assert_eq!(rng.random_below(0), 0);
        for _ in 0..100 {
            assert!(rng.random_below(10) < 10);
        }
        assert_eq!(rng.random_range_inclusive(5, 5), 5);
        // The full u64 domain must not overflow the span computation.
        let full = rng.random_range_inclusive(0, u64::MAX);
        let _ = full;
        for _ in 0..100 {
            let v = rng.random_range_inclusive(2, 4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn pick_and_sample() {
        let mut rng = SimRng::new(11);
        let items = [10, 20, 30, 40];
        assert!(items.contains(rng.pick(&items).unwrap()));
        assert!(rng.pick::<u32>(&[]).is_none());

        let sample = rng.sample_indices(10, 4);
        assert_eq!(sample.len(), 4);
        let mut unique = sample.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);

        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }
}
