//! Battery and energy model.
//!
//! The paper motivates battery-aware adaptation ("when all participants
//! execute in mobile devices, one can use information about the available
//! battery at each device to increase the lifetime of the network"). The
//! simulator therefore charges every transmission and reception against the
//! sending/receiving node's battery using a simple linear model.

use serde::{Deserialize, Serialize};

/// A node battery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
}

impl Battery {
    /// Creates a full battery with the given capacity in joules. Use
    /// `f64::INFINITY` for mains-powered devices.
    pub fn new(capacity_j: f64) -> Self {
        Self {
            capacity_j,
            remaining_j: capacity_j,
        }
    }

    /// Total capacity in joules.
    pub fn capacity_joules(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining charge in joules.
    pub fn remaining_joules(&self) -> f64 {
        self.remaining_j
    }

    /// Remaining charge as a fraction in `[0, 1]`; mains-powered devices
    /// always report `1.0`.
    pub fn fraction(&self) -> f64 {
        if self.capacity_j.is_infinite() {
            1.0
        } else if self.capacity_j <= 0.0 {
            0.0
        } else {
            (self.remaining_j / self.capacity_j).clamp(0.0, 1.0)
        }
    }

    /// Whether the battery is exhausted.
    pub fn is_depleted(&self) -> bool {
        !self.capacity_j.is_infinite() && self.remaining_j <= 0.0
    }

    /// Consumes energy; the charge never goes below zero.
    pub fn consume(&mut self, joules: f64) {
        if self.capacity_j.is_infinite() {
            return;
        }
        self.remaining_j = (self.remaining_j - joules.max(0.0)).max(0.0);
    }
}

/// Linear energy cost model for radio activity.
///
/// Costs follow the commonly used first-order radio model: a fixed per-message
/// cost (protocol processing, channel acquisition) plus a per-byte cost, with
/// transmission more expensive than reception.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per transmitted message, in joules.
    pub tx_per_message_j: f64,
    /// Energy per transmitted byte, in joules.
    pub tx_per_byte_j: f64,
    /// Energy per received message, in joules.
    pub rx_per_message_j: f64,
    /// Energy per received byte, in joules.
    pub rx_per_byte_j: f64,
}

impl EnergyModel {
    /// A model approximating an 802.11b PDA radio.
    pub fn wireless_pda() -> Self {
        Self {
            tx_per_message_j: 0.012,
            tx_per_byte_j: 0.000_002,
            rx_per_message_j: 0.006,
            rx_per_byte_j: 0.000_001,
        }
    }

    /// A model for mains-powered wired devices (tracked for completeness, the
    /// battery is infinite anyway).
    pub fn wired() -> Self {
        Self {
            tx_per_message_j: 0.001,
            tx_per_byte_j: 0.000_000_2,
            rx_per_message_j: 0.000_5,
            rx_per_byte_j: 0.000_000_1,
        }
    }

    /// Energy cost of transmitting one message of `size` bytes.
    pub fn tx_cost(&self, size: usize) -> f64 {
        self.tx_per_message_j + self.tx_per_byte_j * size as f64
    }

    /// Energy cost of receiving one message of `size` bytes.
    pub fn rx_cost(&self, size: usize) -> f64 {
        self.rx_per_message_j + self.rx_per_byte_j * size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_battery_depletes() {
        let mut battery = Battery::new(10.0);
        assert_eq!(battery.fraction(), 1.0);
        battery.consume(4.0);
        assert!((battery.fraction() - 0.6).abs() < 1e-9);
        battery.consume(100.0);
        assert!(battery.is_depleted());
        assert_eq!(battery.remaining_joules(), 0.0);
    }

    #[test]
    fn infinite_battery_never_depletes() {
        let mut battery = Battery::new(f64::INFINITY);
        battery.consume(1e12);
        assert!(!battery.is_depleted());
        assert_eq!(battery.fraction(), 1.0);
    }

    #[test]
    fn negative_consumption_is_ignored() {
        let mut battery = Battery::new(5.0);
        battery.consume(-3.0);
        assert_eq!(battery.remaining_joules(), 5.0);
    }

    #[test]
    fn energy_model_costs_scale_with_size() {
        let model = EnergyModel::wireless_pda();
        assert!(model.tx_cost(1000) > model.tx_cost(100));
        assert!(model.tx_cost(100) > model.rx_cost(100));
        let wired = EnergyModel::wired();
        assert!(wired.tx_cost(100) < model.tx_cost(100));
    }
}
