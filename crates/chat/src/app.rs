//! A minimal chat client built over the Morpheus delivery interface.

use morpheus_appia::platform::{AppDelivery, DeliveryKind, NodeId};

use crate::message::ChatMessage;

/// A chat participant: composes outgoing messages and decodes deliveries.
#[derive(Debug, Clone)]
pub struct ChatApp {
    node: NodeId,
    name: String,
    room: String,
    next_seq: u64,
    sent: u64,
    received: Vec<ChatMessage>,
    decode_failures: u64,
    view_sizes: Vec<usize>,
    reconfigurations_seen: Vec<String>,
}

impl ChatApp {
    /// Creates a chat participant in one room.
    pub fn new(node: NodeId, name: impl Into<String>, room: impl Into<String>) -> Self {
        Self {
            node,
            name: name.into(),
            room: room.into(),
            next_seq: 0,
            sent: 0,
            received: Vec::new(),
            decode_failures: 0,
            view_sizes: Vec::new(),
            reconfigurations_seen: Vec::new(),
        }
    }

    /// The node this participant runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Composes the next outgoing message and returns its wire payload.
    pub fn compose(&mut self, text: impl Into<String>) -> bytes::Bytes {
        self.next_seq += 1;
        self.sent += 1;
        ChatMessage::new(&self.room, &self.name, self.next_seq, text).to_payload()
    }

    /// Processes one delivery from the middleware; returns the decoded chat
    /// message when the delivery carried application data.
    pub fn on_delivery(&mut self, delivery: &AppDelivery) -> Option<ChatMessage> {
        match &delivery.kind {
            DeliveryKind::Data { payload, .. } => match ChatMessage::from_payload(payload) {
                Ok(message) => {
                    self.received.push(message.clone());
                    Some(message)
                }
                Err(_) => {
                    self.decode_failures += 1;
                    None
                }
            },
            DeliveryKind::ViewChange { members, .. } => {
                self.view_sizes.push(members.len());
                None
            }
            DeliveryKind::Reconfigured { stack } => {
                self.reconfigurations_seen.push(stack.clone());
                None
            }
            DeliveryKind::ReconfigurationComplete { .. }
            | DeliveryKind::ContextConverged { .. }
            | DeliveryKind::Rejoined { .. }
            | DeliveryKind::CaughtUp { .. }
            | DeliveryKind::Notification(_) => None,
        }
    }

    /// Messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Messages received so far.
    pub fn received(&self) -> &[ChatMessage] {
        &self.received
    }

    /// Number of deliveries whose payload was not a valid chat message.
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }

    /// Stack reconfigurations the middleware reported to this participant.
    pub fn reconfigurations_seen(&self) -> &[String] {
        &self.reconfigurations_seen
    }

    /// Group sizes reported by successive view changes.
    pub fn view_sizes(&self) -> &[usize] {
        &self.view_sizes
    }

    /// Whether messages from a given sender were received in sequence order
    /// (per-sender FIFO as observed by the application).
    pub fn received_in_order_from(&self, sender: &str) -> bool {
        let mut last = 0;
        for message in self
            .received
            .iter()
            .filter(|message| message.sender == sender)
        {
            if message.seq <= last {
                return false;
            }
            last = message.seq;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use bytes::Bytes;

    use super::*;

    fn data_delivery(payload: Bytes) -> AppDelivery {
        AppDelivery {
            channel: "data".into(),
            kind: DeliveryKind::Data {
                from: NodeId(9),
                payload,
            },
        }
    }

    #[test]
    fn compose_and_decode_roundtrip() {
        let mut alice = ChatApp::new(NodeId(1), "alice", "icdcs");
        let mut bob = ChatApp::new(NodeId(2), "bob", "icdcs");

        let payload = alice.compose("hello there");
        let decoded = bob.on_delivery(&data_delivery(payload)).unwrap();
        assert_eq!(decoded.sender, "alice");
        assert_eq!(decoded.text, "hello there");
        assert_eq!(alice.sent_count(), 1);
        assert_eq!(bob.received().len(), 1);
        assert_eq!(bob.decode_failures(), 0);
    }

    #[test]
    fn malformed_payloads_are_counted_not_propagated() {
        let mut app = ChatApp::new(NodeId(1), "x", "r");
        assert!(app
            .on_delivery(&data_delivery(Bytes::from_static(b"junk")))
            .is_none());
        assert_eq!(app.decode_failures(), 1);
    }

    #[test]
    fn control_deliveries_update_bookkeeping() {
        let mut app = ChatApp::new(NodeId(1), "x", "r");
        app.on_delivery(&AppDelivery {
            channel: "data".into(),
            kind: DeliveryKind::ViewChange {
                view_id: 1,
                members: vec![NodeId(1), NodeId(2)],
            },
        });
        app.on_delivery(&AppDelivery {
            channel: "data".into(),
            kind: DeliveryKind::Reconfigured {
                stack: "hybrid-mecho-relay0".into(),
            },
        });
        assert_eq!(app.view_sizes(), &[2]);
        assert_eq!(
            app.reconfigurations_seen(),
            &["hybrid-mecho-relay0".to_string()]
        );
    }

    #[test]
    fn per_sender_order_is_checked() {
        let mut alice = ChatApp::new(NodeId(1), "alice", "r");
        let mut receiver = ChatApp::new(NodeId(2), "bob", "r");
        let first = alice.compose("1");
        let second = alice.compose("2");
        receiver.on_delivery(&data_delivery(first.clone()));
        receiver.on_delivery(&data_delivery(second.clone()));
        assert!(receiver.received_in_order_from("alice"));

        let mut out_of_order = ChatApp::new(NodeId(3), "eve", "r");
        out_of_order.on_delivery(&data_delivery(second));
        out_of_order.on_delivery(&data_delivery(first));
        assert!(!out_of_order.received_in_order_from("alice"));
    }
}
