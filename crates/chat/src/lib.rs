//! # morpheus-chat
//!
//! The multi-user chat application used to validate the Morpheus prototype,
//! plus its workload generator.
//!
//! In the paper, "each group of users, defined from their interests, is
//! supported by a different multicast group"; the application exchanges
//! 40,000 messages at 10 msg/s over the group communication service, and the
//! evaluation counts the messages transmitted by the mobile device with and
//! without the Mecho adaptation.
//!
//! * [`message::ChatMessage`] — the application-level message format;
//! * [`rooms::RoomDirectory`] — interest groups and their membership;
//! * [`app::ChatApp`] — a small client that composes outgoing messages and
//!   decodes deliveries;
//! * [`history::RoomHistory`] — shared, deduplicated room history, exposed to
//!   the recovery layer's rejoin state transfer as
//!   [`history::ChatHistorySection`];
//! * [`workload::ChatWorkload`] — deterministic chat traffic (senders, rate,
//!   text) matching the paper's parameters, and the bridge to a testbed
//!   [`morpheus_testbed::Scenario`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod app;
pub mod history;
pub mod message;
pub mod rooms;
pub mod workload;

pub use app::ChatApp;
pub use history::{ChatHistoryBinding, ChatHistorySection, RoomHistory};
pub use message::ChatMessage;
pub use rooms::RoomDirectory;
pub use workload::ChatWorkload;
