//! Interest groups (chat rooms) and their membership.

use std::collections::BTreeMap;

use morpheus_appia::platform::NodeId;
use morpheus_overlay::RoomPlan;

/// A directory of chat rooms. Each room is backed by one multicast group, as
/// in the paper ("each group of users, defined from their interests, is
/// supported by a different multicast group").
#[derive(Debug, Clone, Default)]
pub struct RoomDirectory {
    rooms: BTreeMap<String, Vec<NodeId>>,
}

impl RoomDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Materialises a directory from a generated room plan: one chat room
    /// per plan room (`room-0000`, `room-0001`, …), membership copied
    /// verbatim. This is how the Zipf-distributed scale scenarios become
    /// ordinary chat rooms backed by the room-sharded overlay.
    pub fn from_plan(plan: &RoomPlan) -> Self {
        let mut directory = Self::new();
        for room in 0..plan.room_count() as u32 {
            directory.create_room(format!("room-{room:04}"), plan.members(room).to_vec());
        }
        directory
    }

    /// Creates (or replaces) a room with the given members.
    pub fn create_room(&mut self, room: impl Into<String>, members: Vec<NodeId>) {
        let mut members = members;
        members.sort();
        members.dedup();
        self.rooms.insert(room.into(), members);
    }

    /// Adds a member to a room, creating the room if needed.
    pub fn join(&mut self, room: &str, node: NodeId) {
        let members = self.rooms.entry(room.to_string()).or_default();
        if !members.contains(&node) {
            members.push(node);
            members.sort();
        }
    }

    /// Removes a member from a room.
    pub fn leave(&mut self, room: &str, node: NodeId) {
        if let Some(members) = self.rooms.get_mut(room) {
            members.retain(|member| *member != node);
        }
    }

    /// The members of a room.
    pub fn members(&self, room: &str) -> &[NodeId] {
        self.rooms.get(room).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Rooms a node participates in.
    pub fn rooms_of(&self, node: NodeId) -> Vec<&str> {
        self.rooms
            .iter()
            .filter(|(_, members)| members.contains(&node))
            .map(|(room, _)| room.as_str())
            .collect()
    }

    /// All room names.
    pub fn room_names(&self) -> Vec<&str> {
        self.rooms.keys().map(String::as_str).collect()
    }

    /// Number of rooms.
    pub fn len(&self) -> usize {
        self.rooms.len()
    }

    /// Whether the directory has no rooms.
    pub fn is_empty(&self) -> bool {
        self.rooms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rooms_track_membership() {
        let mut directory = RoomDirectory::new();
        directory.create_room("games", vec![NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(directory.members("games"), &[NodeId(0), NodeId(2)]);

        directory.join("games", NodeId(1));
        directory.join("news", NodeId(1));
        assert_eq!(
            directory.members("games"),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(directory.rooms_of(NodeId(1)), vec!["games", "news"]);

        directory.leave("games", NodeId(0));
        assert_eq!(directory.members("games"), &[NodeId(1), NodeId(2)]);
        assert_eq!(directory.len(), 2);
        assert!(!directory.is_empty());
        assert!(directory.members("missing").is_empty());
        assert_eq!(directory.room_names(), vec!["games", "news"]);
    }

    #[test]
    fn plan_backed_directories_mirror_the_plan() {
        let plan = RoomPlan::generate(5, 40, 12, 1.0);
        let directory = RoomDirectory::from_plan(&plan);
        assert_eq!(directory.len(), 12);
        for room in 0..12u32 {
            assert_eq!(
                directory.members(&format!("room-{room:04}")),
                plan.members(room)
            );
        }
        // Interest-driven membership: a node's chat rooms are exactly its
        // plan subscriptions.
        for id in 0..40u32 {
            assert_eq!(
                directory.rooms_of(NodeId(id)).len(),
                plan.subscription_count(NodeId(id))
            );
        }
    }

    #[test]
    fn duplicate_joins_are_idempotent() {
        let mut directory = RoomDirectory::new();
        directory.join("r", NodeId(5));
        directory.join("r", NodeId(5));
        assert_eq!(directory.members("r"), &[NodeId(5)]);
    }
}
