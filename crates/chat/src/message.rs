//! The chat message format.

use bytes::Bytes;
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// One chat message as exchanged by the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// The interest group (room) the message belongs to.
    pub room: String,
    /// Display name of the sender.
    pub sender: String,
    /// Sender-local sequence number.
    pub seq: u64,
    /// The message text.
    pub text: String,
}

impl ChatMessage {
    /// Creates a message.
    pub fn new(
        room: impl Into<String>,
        sender: impl Into<String>,
        seq: u64,
        text: impl Into<String>,
    ) -> Self {
        Self {
            room: room.into(),
            sender: sender.into(),
            seq,
            text: text.into(),
        }
    }

    /// Serialises the message to the bytes sent on the data channel.
    pub fn to_payload(&self) -> Bytes {
        self.to_bytes()
    }

    /// Decodes a message from a data-channel payload.
    pub fn from_payload(payload: &[u8]) -> Result<Self, WireError> {
        Self::from_bytes(payload)
    }

    /// Approximate size of the encoded message, in bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_payload().len()
    }
}

impl Wire for ChatMessage {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.room);
        w.put_str(&self.sender);
        w.put_u64(self.seq);
        w.put_str(&self.text);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            room: r.get_str()?,
            sender: r.get_str()?,
            seq: r.get_u64()?,
            text: r.get_str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let message = ChatMessage::new("icdcs", "alice", 42, "olá!");
        let payload = message.to_payload();
        let decoded = ChatMessage::from_payload(&payload).unwrap();
        assert_eq!(decoded, message);
        assert!(message.encoded_len() > "icdcsalice".len());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(ChatMessage::from_payload(&[1, 2, 3]).is_err());
        assert!(ChatMessage::from_payload(b"").is_err());
    }
}
