//! Chat room history as rejoin state.
//!
//! The chat application's durable state is the history of messages delivered
//! in its rooms. [`RoomHistory`] keeps it behind shared ownership so the same
//! live history can be read by the application, appended by the delivery
//! path and streamed by the recovery layer's state transfer:
//! [`ChatHistorySection`] implements the suite's
//! [`StateSection`] pair (export on the donor, merge-install on the
//! rejoiner), which is what makes a restarted participant's room history
//! whole again.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use morpheus_appia::wire::{Wire, WireReader, WireWriter};
use morpheus_groupcomm::recovery::StateSection;

use crate::message::ChatMessage;

/// A shared, deduplicated chat history (all rooms of one participant).
///
/// Messages are identified by `(room, sender, seq)`; recording a duplicate —
/// e.g. a message present in a rejoin snapshot *and* replayed from the join
/// view's buffer — is a no-op, so merge-installs are idempotent.
#[derive(Debug, Clone, Default)]
pub struct RoomHistory {
    inner: Rc<RefCell<HistoryInner>>,
}

#[derive(Debug, Default)]
struct HistoryInner {
    messages: Vec<ChatMessage>,
    seen: BTreeSet<(String, String, u64)>,
}

impl RoomHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivered message; returns whether it was new.
    pub fn record(&self, message: ChatMessage) -> bool {
        let mut inner = self.inner.borrow_mut();
        let key = (message.room.clone(), message.sender.clone(), message.seq);
        if !inner.seen.insert(key) {
            return false;
        }
        inner.messages.push(message);
        true
    }

    /// Number of distinct messages recorded.
    pub fn len(&self) -> usize {
        self.inner.borrow().messages.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every recorded message, in recording order.
    pub fn messages(&self) -> Vec<ChatMessage> {
        self.inner.borrow().messages.clone()
    }

    /// Whether a message identified by `(room, sender, seq)` was recorded.
    pub fn contains(&self, room: &str, sender: &str, seq: u64) -> bool {
        self.inner
            .borrow()
            .seen
            .contains(&(room.to_string(), sender.to_string(), seq))
    }
}

/// The chat application's room history as a rejoin state-transfer section.
#[derive(Debug, Clone)]
pub struct ChatHistorySection {
    history: RoomHistory,
}

impl ChatHistorySection {
    /// Wraps a shared room history.
    pub fn new(history: RoomHistory) -> Self {
        Self { history }
    }
}

impl StateSection for ChatHistorySection {
    fn name(&self) -> &str {
        "chat-history"
    }

    fn export(&self) -> Vec<u8> {
        let inner = self.history.inner.borrow();
        let mut w = WireWriter::new();
        w.put_u32(inner.messages.len() as u32);
        for message in &inner.messages {
            message.encode(&mut w);
        }
        w.finish().to_vec()
    }

    fn install(&self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(count) = r.get_u32() else {
            return false;
        };
        // A chat message encodes to at least 16 bytes (three length-prefixed
        // strings plus the sequence number); reject adversarial counts
        // before allocating.
        if count as usize > r.remaining() / 16 {
            return false;
        }
        for _ in 0..count {
            let Ok(message) = ChatMessage::decode(&mut r) else {
                return false;
            };
            self.history.record(message);
        }
        true
    }
}

/// A testbed [`AppBinding`](morpheus_testbed::AppBinding) that runs a real
/// chat application over every
/// simulated node: workload sends become wire-encoded [`ChatMessage`]s,
/// deliveries are decoded into per-node [`RoomHistory`]s, and each node's
/// history is registered as its rejoin state-transfer section — so a
/// scenario can assert that a restarted participant's room history is made
/// whole again by the donor's snapshot.
#[derive(Debug, Default)]
pub struct ChatHistoryBinding {
    room: String,
    histories: std::collections::HashMap<morpheus_appia::platform::NodeId, RoomHistory>,
    decode_failures: u64,
}

impl ChatHistoryBinding {
    /// Creates a binding for one chat room.
    pub fn new(room: impl Into<String>) -> Self {
        Self {
            room: room.into(),
            histories: std::collections::HashMap::new(),
            decode_failures: 0,
        }
    }

    /// The display name a node's messages are sent under.
    pub fn sender_name(node: morpheus_appia::platform::NodeId) -> String {
        format!("n{}", node.0)
    }

    /// The current history of one node (fresh and empty right after a
    /// restart, repopulated by the rejoin snapshot plus live deliveries).
    pub fn history(&self, node: morpheus_appia::platform::NodeId) -> Option<&RoomHistory> {
        self.histories.get(&node)
    }

    /// Deliveries whose payload was not a decodable chat message.
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }
}

impl morpheus_testbed::AppBinding for ChatHistoryBinding {
    fn state_sections(
        &mut self,
        node: morpheus_appia::platform::NodeId,
    ) -> Vec<Rc<dyn StateSection>> {
        // A (re)starting node begins with an empty history; the recovery
        // layer fills it from the donor's snapshot.
        let history = RoomHistory::new();
        self.histories.insert(node, history.clone());
        vec![Rc::new(ChatHistorySection::new(history))]
    }

    fn compose(
        &mut self,
        node: morpheus_appia::platform::NodeId,
        seq: u64,
        size: usize,
    ) -> Option<bytes::Bytes> {
        let mut text = format!("m{seq}:");
        let base =
            ChatMessage::new(&self.room, Self::sender_name(node), seq + 1, &text).encoded_len();
        if size > base {
            text.extend(std::iter::repeat_n('x', size - base));
        }
        let message = ChatMessage::new(&self.room, Self::sender_name(node), seq + 1, text);
        // A sender's own messages belong in its room history (the middleware
        // does not self-deliver) — which also makes any node a complete
        // donor for every sender's traffic.
        self.histories
            .entry(node)
            .or_default()
            .record(message.clone());
        Some(message.to_payload())
    }

    fn on_delivery(
        &mut self,
        node: morpheus_appia::platform::NodeId,
        delivery: &morpheus_appia::platform::AppDelivery,
    ) {
        if let morpheus_appia::platform::DeliveryKind::Data { payload, .. } = &delivery.kind {
            match ChatMessage::from_payload(payload) {
                Ok(message) => {
                    self.histories.entry(node).or_default().record(message);
                }
                Err(_) => self.decode_failures += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(sender: &str, seq: u64) -> ChatMessage {
        ChatMessage::new("icdcs", sender, seq, format!("m{seq}"))
    }

    #[test]
    fn histories_deduplicate_by_identity() {
        let history = RoomHistory::new();
        assert!(history.record(message("alice", 1)));
        assert!(!history.record(message("alice", 1)), "duplicate ignored");
        assert!(history.record(message("bob", 1)));
        assert_eq!(history.len(), 2);
        assert!(history.contains("icdcs", "alice", 1));
        assert!(!history.contains("icdcs", "alice", 2));
        assert!(!history.is_empty());
    }

    #[test]
    fn export_install_transfers_and_merges_the_history() {
        let donor = RoomHistory::new();
        for seq in 1..=5 {
            donor.record(message("alice", seq));
        }
        let exported = ChatHistorySection::new(donor.clone()).export();

        // The rejoiner already received one overlapping message from the
        // join view's replay: the merge keeps it single.
        let rejoiner = RoomHistory::new();
        rejoiner.record(message("alice", 5));
        let section = ChatHistorySection::new(rejoiner.clone());
        assert!(section.install(&exported));
        assert_eq!(rejoiner.len(), 5);
        for seq in 1..=5 {
            assert!(rejoiner.contains("icdcs", "alice", seq));
        }

        assert!(!section.install(b"\xff\xff"), "malformed rejected");
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        assert!(
            !section.install(&w.finish()),
            "adversarial count rejected before allocation"
        );
    }
}
