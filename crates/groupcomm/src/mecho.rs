//! Mecho — the paper's adaptive best-effort multicast.
//!
//! Mecho ("Multicast Echo") replaces the plain best-effort multicast in
//! hybrid fixed/mobile scenarios. Its behaviour depends on the operational
//! mode of the local node:
//!
//! * **wireless** (mobile node): a group send becomes a *single*
//!   point-to-point message to a selected fixed relay, tagged as a relay
//!   request. This is what keeps the mobile node's transmission count flat as
//!   the group grows (paper Figure 3).
//! * **wired** (fixed node): group sends behave like the plain best-effort
//!   multicast; additionally, incoming relay requests are re-multicast to the
//!   remaining group members on behalf of the mobile origin (the fixed node
//!   pays the fan-out, per the paper's footnote 1).

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, Layer, LayerParams};
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::ViewInstall;
use crate::headers::{McastHeader, McastMode};

/// Registered name of the Mecho adaptive multicast layer.
pub const MECHO_LAYER: &str = "mecho";

/// Operational mode of a Mecho session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechoMode {
    /// Fixed node: multicasts directly and relays on behalf of mobile nodes.
    Wired,
    /// Mobile node: sends a single message to the relay.
    Wireless,
    /// Decide from the local device class on first use.
    Auto,
}

impl MechoMode {
    fn parse(raw: Option<&String>) -> Self {
        match raw.map(String::as_str) {
            Some("wired") => MechoMode::Wired,
            Some("wireless") => MechoMode::Wireless,
            _ => MechoMode::Auto,
        }
    }
}

/// The Mecho adaptive multicast layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership;
/// * `mode` — `"wired"`, `"wireless"` or `"auto"` (default: `auto`, resolved
///   from the local device class);
/// * `relay` — node id of the fixed relay mobile nodes send to (default: the
///   lowest member id).
pub struct MechoLayer;

impl Layer for MechoLayer {
    fn name(&self) -> &str {
        MECHO_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>(), EventSpec::of::<ViewInstall>()]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["DataEvent"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let members = param_node_list(params, "members");
        let relay = params
            .get("relay")
            .and_then(|raw| raw.parse::<u32>().ok())
            .map(NodeId)
            .or_else(|| members.iter().copied().min());
        Box::new(MechoSession {
            members,
            mode: MechoMode::parse(params.get("mode")),
            relay,
            relayed: 0,
            group_sends: 0,
        })
    }
}

/// Session state of the Mecho layer.
#[derive(Debug)]
pub struct MechoSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    mode: MechoMode,
    relay: Option<NodeId>,
    relayed: u64,
    group_sends: u64,
}

impl MechoSession {
    fn effective_mode(&self, ctx: &EventContext<'_>) -> MechoMode {
        match self.mode {
            MechoMode::Auto => {
                if ctx.profile().device_class.is_mobile() {
                    MechoMode::Wireless
                } else {
                    MechoMode::Wired
                }
            }
            other => other,
        }
    }

    fn others(&self, exclude: &[NodeId]) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|member| !exclude.contains(member))
            .collect()
    }
}

impl Session for MechoSession {
    fn layer_name(&self) -> &str {
        MECHO_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            if let Some(relay) = self.relay {
                if !self.members.contains(&relay) {
                    self.relay = self.members.iter().copied().min();
                }
            }
            ctx.forward(event);
            return;
        }

        match event.direction {
            Direction::Down => {
                let local = ctx.node_id();
                let mode = self.effective_mode(ctx);
                if let Some(data) = event.get_mut::<DataEvent>() {
                    if data.header.dest == Dest::Group {
                        self.group_sends += 1;
                        let origin = data.header.source;
                        match (mode, self.relay) {
                            (MechoMode::Wireless, Some(relay)) if relay != local => {
                                data.message.push(&McastHeader {
                                    mode: McastMode::RelayRequest,
                                    origin,
                                });
                                data.header.dest = Dest::Node(relay);
                            }
                            _ => {
                                data.message.push(&McastHeader {
                                    mode: McastMode::Direct,
                                    origin,
                                });
                                data.header.dest = Dest::Nodes(self.others(&[local]));
                            }
                        }
                    } else {
                        data.message.push(&McastHeader {
                            mode: McastMode::Direct,
                            origin: data.header.source,
                        });
                    }
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let local = ctx.node_id();
                let mode = self.effective_mode(ctx);
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<McastHeader>() else {
                    return;
                };
                if header.mode == McastMode::RelayRequest && mode == MechoMode::Wired {
                    // Re-multicast on behalf of the mobile origin.
                    let recipients = self.others(&[local, header.origin]);
                    if !recipients.is_empty() {
                        let mut relayed_message = data.message.clone();
                        relayed_message.push(&McastHeader {
                            mode: McastMode::Direct,
                            origin: header.origin,
                        });
                        let relayed =
                            DataEvent::new(header.origin, Dest::Nodes(recipients), relayed_message);
                        self.relayed += 1;
                        ctx.dispatch(Event::down(relayed));
                    }
                }
                // Deliver locally regardless of relay duties; the original
                // source is preserved in the event header.
                data.header.source = header.origin;
                ctx.forward(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::config::{ChannelConfig, LayerSpec};
    use morpheus_appia::platform::{DeliveryKind, InPacket, NodeProfile, PacketDest, TestPlatform};
    use morpheus_appia::{Kernel, Message};

    use super::*;
    use crate::suite::register_suite;

    fn mecho_config(members: &[u32], mode: &str, relay: u32) -> ChannelConfig {
        let members_param = members
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",");
        ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("mecho")
                    .with_param("members", members_param)
                    .with_param("mode", mode)
                    .with_param("relay", relay.to_string()),
            )
            .with_layer(LayerSpec::new("app"))
    }

    fn mobile_platform(id: u32) -> TestPlatform {
        TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(id)))
    }

    #[test]
    fn wireless_mode_sends_a_single_message_to_the_relay() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = mobile_platform(2);
        let id = kernel
            .create_channel(
                &mecho_config(&[0, 1, 2, 3, 4, 5], "wireless", 0),
                &mut platform,
            )
            .unwrap();

        let event = Event::down(DataEvent::to_group(
            NodeId(2),
            Message::with_payload(&b"m"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);

        let sent = platform.take_sent();
        assert_eq!(
            sent.len(),
            1,
            "mobile node sends exactly one message regardless of group size"
        );
        assert_eq!(sent[0].dest, PacketDest::Node(NodeId(0)));
    }

    #[test]
    fn wired_mode_multicasts_directly() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let id = kernel
            .create_channel(&mecho_config(&[0, 1, 2, 3], "wired", 0), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(platform.take_sent().len(), 3);
    }

    #[test]
    fn relay_remulticasts_on_behalf_of_the_mobile_origin() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);

        // Mobile node 2 sends through relay 0 in a 4-node group.
        let mut mobile = mobile_platform(2);
        let mobile_channel = kernel
            .create_channel(&mecho_config(&[0, 1, 2, 3], "wireless", 0), &mut mobile)
            .unwrap();
        let event = Event::down(DataEvent::to_group(
            NodeId(2),
            Message::with_payload(&b"x"[..]),
        ));
        kernel.dispatch_and_process(mobile_channel, event, &mut mobile);
        let sent = mobile.take_sent();
        assert_eq!(sent.len(), 1);

        // The fixed relay receives the relay request.
        let mut relay_kernel = Kernel::new();
        register_suite(&mut relay_kernel);
        let mut relay_platform = TestPlatform::new(NodeId(0));
        relay_kernel
            .create_channel(
                &mecho_config(&[0, 1, 2, 3], "wired", 0),
                &mut relay_platform,
            )
            .unwrap();
        relay_kernel
            .deliver_packet(
                InPacket {
                    from: NodeId(2),
                    to: NodeId(0),
                    class: sent[0].class,
                    channel: sent[0].channel.clone(),
                    payload: sent[0].payload.clone(),
                },
                &mut relay_platform,
            )
            .unwrap();

        // The relay delivers locally and re-multicasts to nodes 1 and 3.
        let deliveries = relay_platform.take_deliveries();
        assert!(deliveries.iter().any(|d| matches!(
            &d.kind,
            DeliveryKind::Data { from, .. } if *from == NodeId(2)
        )));
        let relayed = relay_platform.take_sent();
        assert_eq!(relayed.len(), 2);
        let mut dests: Vec<PacketDest> = relayed.iter().map(|p| p.dest.clone()).collect();
        dests.sort_by_key(|d| match d {
            PacketDest::Node(n) => n.0,
            PacketDest::Broadcast => u32::MAX,
        });
        assert_eq!(
            dests,
            vec![PacketDest::Node(NodeId(1)), PacketDest::Node(NodeId(3))]
        );
    }

    #[test]
    fn relayed_message_preserves_the_original_source() {
        // Node 1 (fixed, not the relay) receives the relayed copy and must see
        // the mobile origin as the source.
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut relay_platform = TestPlatform::new(NodeId(0));
        let relay_channel = kernel
            .create_channel(&mecho_config(&[0, 1, 2], "wired", 0), &mut relay_platform)
            .unwrap();

        // Build a relay request as the mobile node would.
        let mut message = Message::with_payload(&b"from-mobile"[..]);
        message.push(&McastHeader {
            mode: McastMode::RelayRequest,
            origin: NodeId(2),
        });
        let event = Event::up(DataEvent::new(NodeId(2), Dest::Node(NodeId(0)), message));
        kernel.dispatch_and_process(relay_channel, event, &mut relay_platform);

        let relayed = relay_platform.take_sent();
        assert_eq!(relayed.len(), 1);

        // Feed the relayed packet to node 1 and check the delivery source.
        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(
                &mecho_config(&[0, 1, 2], "wired", 0),
                &mut receiver_platform,
            )
            .unwrap();
        receiver
            .deliver_packet(
                InPacket {
                    from: NodeId(0),
                    to: NodeId(1),
                    class: relayed[0].class,
                    channel: relayed[0].channel.clone(),
                    payload: relayed[0].payload.clone(),
                },
                &mut receiver_platform,
            )
            .unwrap();
        let deliveries = receiver_platform.take_deliveries();
        assert_eq!(deliveries.len(), 1);
        match &deliveries[0].kind {
            DeliveryKind::Data { from, payload } => {
                assert_eq!(*from, NodeId(2));
                assert_eq!(payload.as_ref(), b"from-mobile");
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn auto_mode_follows_the_device_class() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = mobile_platform(3);
        let config = {
            let members = "0,1,2,3";
            ChannelConfig::new("data")
                .with_layer(LayerSpec::new("network"))
                .with_layer(
                    LayerSpec::new("mecho")
                        .with_param("members", members)
                        .with_param("relay", "0"),
                )
                .with_layer(LayerSpec::new("app"))
        };
        let id = kernel.create_channel(&config, &mut platform).unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(3), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(
            platform.take_sent().len(),
            1,
            "auto mode on a PDA behaves as wireless"
        );
    }

    #[test]
    fn view_install_prunes_a_vanished_relay() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = mobile_platform(2);
        let id = kernel
            .create_channel(&mecho_config(&[0, 1, 2], "wireless", 0), &mut platform)
            .unwrap();

        // Relay 0 leaves the group; the layer falls back to the lowest member.
        let view = crate::view::View::new(1, vec![NodeId(1), NodeId(2)]);
        kernel.dispatch_and_process(id, Event::down(ViewInstall { view }), &mut platform);
        let event = Event::down(DataEvent::to_group(NodeId(2), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].dest, PacketDest::Node(NodeId(1)));
    }
}
