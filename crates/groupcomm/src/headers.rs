//! Wire headers pushed and popped by the suite's layers.
//!
//! Every layer that needs to convey per-message state to its peer layer on
//! the receiving node defines a header type here and pushes it onto the
//! event's [`morpheus_appia::Message`] on the way down; the peer pops it on
//! the way up. Headers are encoded with the kernel's wire format.

use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};

/// How a multicast layer handled (or wants handled) a data message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McastMode {
    /// The message is addressed to its final receivers; deliver upward.
    Direct,
    /// The message was sent by a mobile node to a fixed relay, which should
    /// re-multicast it to the remaining members (the Mecho protocol).
    RelayRequest,
}

/// Header pushed by the best-effort multicast layers (`beb`, `mecho`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McastHeader {
    /// Relay behaviour requested from the receiving multicast layer.
    pub mode: McastMode,
    /// The node that originated the message (preserved across relaying).
    pub origin: NodeId,
}

impl Wire for McastHeader {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self.mode {
            McastMode::Direct => 0,
            McastMode::RelayRequest => 1,
        });
        self.origin.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mode = match r.get_u8()? {
            0 => McastMode::Direct,
            1 => McastMode::RelayRequest,
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(Self {
            mode,
            origin: NodeId::decode(r)?,
        })
    }
}

/// Per-sender sequence number header (FIFO, reliable and FEC layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqHeader {
    /// Sender-assigned sequence number, starting at 1.
    pub seq: u64,
}

impl Wire for SeqHeader {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self { seq: r.get_u64()? })
    }
}

/// Header of a negative acknowledgement: which sender and which sequence
/// numbers are missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NackHeader {
    /// The sender whose messages are missing.
    pub origin: NodeId,
    /// The missing sequence numbers.
    pub missing: Vec<u64>,
}

impl Wire for NackHeader {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_u64_list(&self.missing);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            origin: NodeId::decode(r)?,
            missing: r.get_u64_list()?,
        })
    }
}

/// Header of a gossip-forwarded message.
///
/// A message is globally identified by `(origin, inc, seq)`: `seq` is dense
/// (the origin's gossip session numbers group sends 1, 2, 3, …) *within* one
/// `inc`arnation — the session's creation time, which distinguishes the
/// sequence spaces of a node that restarted or had its gossip stack
/// redeployed. Receivers track delivery and compute repair gaps per
/// `(origin, inc)` pair, so a fresh session restarting at `seq = 1` can
/// never be mistaken for duplicates of the previous incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipHeader {
    /// The node that originated the message.
    pub origin: NodeId,
    /// Origin-session incarnation (session creation time, in milliseconds).
    pub inc: u64,
    /// Origin-assigned sequence number, dense within `inc` (unique per
    /// origin and incarnation).
    pub seq: u64,
    /// Remaining number of forwarding rounds.
    pub ttl: u32,
}

impl Wire for GossipHeader {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_u64(self.inc);
        w.put_u64(self.seq);
        w.put_u32(self.ttl);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            origin: NodeId::decode(r)?,
            inc: r.get_u64()?,
            seq: r.get_u64()?,
            ttl: r.get_u32()?,
        })
    }
}

/// One entry of a [`RepairDigest`]: the contiguous-ish span of an origin's
/// messages the digest sender holds in its repair log and can serve on a
/// NACK pull. `lo`/`hi` are the smallest and largest logged sequence
/// numbers of that `(origin, inc)` stream (log eviction trims from `lo`
/// upward, so the span is dense in the common case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairRange {
    /// The stream's originating node.
    pub origin: NodeId,
    /// The stream's incarnation (see [`GossipHeader::inc`]).
    pub inc: u64,
    /// Smallest logged sequence number.
    pub lo: u64,
    /// Largest logged sequence number.
    pub hi: u64,
}

impl Wire for RepairRange {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_u64(self.inc);
        w.put_u64(self.lo);
        w.put_u64(self.hi);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            origin: NodeId::decode(r)?,
            inc: r.get_u64()?,
            lo: r.get_u64()?,
            hi: r.get_u64()?,
        })
    }
}

/// Body of a gossip repair digest: per origin stream, the span of messages
/// the sender's bounded repair log currently holds. Receivers compare the
/// spans against their own delivery record and NACK-pull the gaps.
///
/// The digest doubles as the backpressure grant carrier: `credit` is the
/// number of further push-path data messages the digest sender is prepared
/// to accept from the addressed peer before that peer must fall back to
/// digest-announce + pull. `credit == 0` means the sender does not run
/// credit backpressure (the pre-credit wire form encoded no grant, so zero
/// keeps old behaviour: senders treat the peer as uncredited).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairDigest {
    /// Push-path credit granted to the receiving peer (0 = no backpressure).
    pub credit: u32,
    /// One entry per `(origin, inc)` stream held in the repair log.
    pub entries: Vec<RepairRange>,
}

impl Wire for RepairDigest {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.credit);
        w.put_u32(self.entries.len() as u32);
        for entry in &self.entries {
            entry.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let credit = r.get_u32()?;
        let count = r.get_u32()? as usize;
        // Every entry occupies 28 wire bytes; reject adversarial counts
        // before allocating.
        if count > r.remaining() / 28 {
            return Err(WireError::Malformed("repair digest count exceeds payload"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(RepairRange::decode(r)?);
        }
        Ok(Self { credit, entries })
    }
}

/// Body of a gossip repair pull (the NACK): the exact message identifiers
/// the sender is missing and believes the addressed peer can serve.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairPull {
    /// `(origin, inc, missing sequence numbers)` per stream.
    pub wants: Vec<(NodeId, u64, Vec<u64>)>,
}

impl Wire for RepairPull {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.wants.len() as u32);
        for (origin, inc, seqs) in &self.wants {
            origin.encode(w);
            w.put_u64(*inc);
            w.put_u64_list(seqs);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        // Every entry occupies at least 16 wire bytes (node + inc + an empty
        // list's length prefix); reject adversarial counts before allocating.
        if count > r.remaining() / 16 {
            return Err(WireError::Malformed("repair pull count exceeds payload"));
        }
        let mut wants = Vec::with_capacity(count);
        for _ in 0..count {
            let origin = NodeId::decode(r)?;
            let inc = r.get_u64()?;
            let seqs = r.get_u64_list()?;
            wants.push((origin, inc, seqs));
        }
        Ok(Self { wants })
    }
}

/// Header of a gossip repair push: identifies the logged message whose
/// original bytes (higher-layer headers plus payload) follow in the
/// carrying message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairPushHeader {
    /// The stream's originating node.
    pub origin: NodeId,
    /// The stream's incarnation.
    pub inc: u64,
    /// The repaired message's sequence number.
    pub seq: u64,
}

impl Wire for RepairPushHeader {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_u64(self.inc);
        w.put_u64(self.seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            origin: NodeId::decode(r)?,
            inc: r.get_u64()?,
            seq: r.get_u64()?,
        })
    }
}

/// Body of a retention fall-through answer: a `RepairPull` asked for
/// sequence numbers of the `(origin, inc)` stream that are older than the
/// responder's repair-log floor and can never be served by NACK repair.
/// The puller reacts by fast-forwarding its delivery tracker past the
/// un-servable span and escalating to a targeted state-section pull
/// against the responder (the repair→snapshot catch-up path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairFloorBody {
    /// The stream's originating node.
    pub origin: NodeId,
    /// The stream's incarnation.
    pub inc: u64,
    /// Smallest sequence number the responder can still serve; everything
    /// below it has been evicted from the repair log.
    pub floor: u64,
}

impl Wire for RepairFloorBody {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_u64(self.inc);
        w.put_u64(self.floor);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            origin: NodeId::decode(r)?,
            inc: r.get_u64()?,
            floor: r.get_u64()?,
        })
    }
}

/// Body of an aggregated gossip push: several app messages, each with its
/// own [`GossipHeader`], batched into one packet. Same-instant sends and
/// relays that would otherwise cost one packet per message travel together;
/// the receiver unbatches and runs every entry through the ordinary gossip
/// up path (dedup, delivery tracking, repair logging, re-forwarding).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GossipBatchBody {
    /// `(gossip header, original message)` per batched app message; the
    /// message carries the higher layers' headers and payload, without the
    /// gossip header (which rides alongside, exactly as it would have been
    /// pushed on a singleton send).
    pub entries: Vec<(GossipHeader, Message)>,
}

impl Wire for GossipBatchBody {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.entries.len() as u32);
        for (header, message) in &self.entries {
            header.encode(w);
            message.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        // Every entry occupies at least 32 wire bytes: a 24-byte gossip
        // header plus an empty message's two length prefixes. Reject
        // adversarial counts before allocating.
        if count > r.remaining() / 32 {
            return Err(WireError::Malformed("gossip batch count exceeds payload"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let header = GossipHeader::decode(r)?;
            let message = Message::decode(r)?;
            entries.push((header, message));
        }
        Ok(Self { entries })
    }
}

/// Header of a gossip heartbeat: the sender's view of every member's
/// heartbeat counter. Counters only ever grow; a receiver merges entries
/// that are newer than its own and derives suspicion from how long a
/// member's counter has failed to advance — no direct pairwise silence
/// measurement (and therefore no all-to-all heartbeat traffic) is needed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LivenessDigest {
    /// `(member, heartbeat counter)` pairs, one per known member.
    pub entries: Vec<(NodeId, u64)>,
}

impl Wire for LivenessDigest {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.entries.len() as u32);
        for (node, counter) in &self.entries {
            node.encode(w);
            w.put_u64(*counter);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        // Every entry occupies 12 bytes on the wire; an adversarial count
        // that overstates the payload is rejected before any allocation.
        if count > r.remaining() / 12 {
            return Err(WireError::Malformed(
                "liveness digest count exceeds payload",
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let node = NodeId::decode(r)?;
            let counter = r.get_u64()?;
            entries.push((node, counter));
        }
        Ok(Self { entries })
    }
}

/// Body of a view-change [`crate::events::FlushAck`]: which members are known
/// to have flushed for the round identified by the ballot
/// `(epoch, proposer)`.
///
/// In small views every participant reports only itself, straight to the
/// proposer. At gossip scale (`n >= gossip_threshold`) flush knowledge is
/// *aggregated*: participants merge the sets they receive and re-gossip the
/// union to the proposer plus `fanout` random peers, so the proposer collects
/// coverage from `O(fanout · log n)` merged messages instead of `n`
/// individual unicast acks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushBody {
    /// The round's view epoch.
    pub epoch: u64,
    /// The proposer holding the epoch (the ballot tie-break half).
    pub proposer: NodeId,
    /// Members known (transitively) to have blocked and flushed.
    pub flushed: Vec<NodeId>,
}

impl Wire for FlushBody {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.epoch);
        self.proposer.encode(w);
        w.put_u32(self.flushed.len() as u32);
        for node in &self.flushed {
            node.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let epoch = r.get_u64()?;
        let proposer = NodeId::decode(r)?;
        let count = r.get_u32()? as usize;
        // Every entry occupies 4 wire bytes; reject adversarial counts
        // before allocating.
        if count > r.remaining() / 4 {
            return Err(WireError::Malformed("flush body count exceeds payload"));
        }
        let mut flushed = Vec::with_capacity(count);
        for _ in 0..count {
            flushed.push(NodeId::decode(r)?);
        }
        Ok(Self {
            epoch,
            proposer,
            flushed,
        })
    }
}

/// Header of a FEC parity block: which data sequence numbers it covers and
/// how long each covered message was (needed to truncate a reconstructed
/// message back to its original size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecParityHeader {
    /// Sequence numbers (of the same sender) covered by the parity block.
    pub covers: Vec<u64>,
    /// Encoded length, in bytes, of each covered message (same order as `covers`).
    pub lengths: Vec<u32>,
    /// Length in bytes of the XOR parity payload.
    pub parity_len: u32,
}

impl Wire for FecParityHeader {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64_list(&self.covers);
        w.put_u32_list(&self.lengths);
        w.put_u32(self.parity_len);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            covers: r.get_u64_list()?,
            lengths: r.get_u32_list()?,
            parity_len: r.get_u32()?,
        })
    }
}

/// Header carrying causal-ordering information: the sender's rank in the view
/// and its vector clock at send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalHeader {
    /// The sender's rank within the current view.
    pub sender_rank: u32,
    /// The sender's vector clock (one entry per view member, by rank).
    pub clock: Vec<u64>,
}

impl Wire for CausalHeader {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.sender_rank);
        w.put_u64_list(&self.clock);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            sender_rank: r.get_u32()?,
            clock: r.get_u64_list()?,
        })
    }
}

/// Header identifying a message for total ordering: origin plus a per-origin
/// sequence number assigned by the total-order layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TotalIdHeader {
    /// The originating node.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub local_seq: u64,
}

impl Wire for TotalIdHeader {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_u64(self.local_seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            origin: NodeId::decode(r)?,
            local_seq: r.get_u64()?,
        })
    }
}

/// Header of an [`crate::events::OrderInfo`] control message: the global
/// sequence number assigned by the sequencer to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderHeader {
    /// The message being ordered.
    pub message: TotalIdHeader,
    /// The global delivery order assigned by the sequencer.
    pub global_seq: u64,
}

impl Wire for OrderHeader {
    fn encode(&self, w: &mut WireWriter) {
        self.message.encode(w);
        w.put_u64(self.global_seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            message: TotalIdHeader::decode(r)?,
            global_seq: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
    }

    #[test]
    fn all_headers_roundtrip() {
        roundtrip(McastHeader {
            mode: McastMode::Direct,
            origin: NodeId(3),
        });
        roundtrip(McastHeader {
            mode: McastMode::RelayRequest,
            origin: NodeId(9),
        });
        roundtrip(SeqHeader { seq: 123 });
        roundtrip(NackHeader {
            origin: NodeId(2),
            missing: vec![4, 5, 9],
        });
        roundtrip(GossipHeader {
            origin: NodeId(1),
            inc: 12,
            seq: 77,
            ttl: 3,
        });
        roundtrip(RepairDigest {
            credit: 128,
            entries: vec![
                RepairRange {
                    origin: NodeId(1),
                    inc: 12,
                    lo: 3,
                    hi: 9,
                },
                RepairRange {
                    origin: NodeId(4),
                    inc: 0,
                    lo: 1,
                    hi: 1,
                },
            ],
        });
        roundtrip(RepairDigest::default());
        roundtrip(RepairPull {
            wants: vec![(NodeId(1), 12, vec![4, 5]), (NodeId(4), 0, vec![1])],
        });
        roundtrip(RepairPushHeader {
            origin: NodeId(1),
            inc: 12,
            seq: 4,
        });
        roundtrip(RepairFloorBody {
            origin: NodeId(1),
            inc: 12,
            floor: 900,
        });
        let mut batched = Message::with_payload(&b"hello"[..]);
        batched.push(&SeqHeader { seq: 2 });
        roundtrip(GossipBatchBody {
            entries: vec![
                (
                    GossipHeader {
                        origin: NodeId(1),
                        inc: 12,
                        seq: 77,
                        ttl: 3,
                    },
                    batched,
                ),
                (
                    GossipHeader {
                        origin: NodeId(4),
                        inc: 0,
                        seq: 1,
                        ttl: 0,
                    },
                    Message::with_payload(&b""[..]),
                ),
            ],
        });
        roundtrip(GossipBatchBody::default());
        roundtrip(LivenessDigest {
            entries: vec![(NodeId(0), 12), (NodeId(7), 3)],
        });
        roundtrip(LivenessDigest::default());
        roundtrip(FlushBody {
            epoch: 9,
            proposer: NodeId(1),
            flushed: vec![NodeId(1), NodeId(4)],
        });
        roundtrip(FecParityHeader {
            covers: vec![10, 11, 12, 13],
            lengths: vec![100, 90, 80, 70],
            parity_len: 512,
        });
        roundtrip(CausalHeader {
            sender_rank: 2,
            clock: vec![5, 0, 7],
        });
        roundtrip(TotalIdHeader {
            origin: NodeId(4),
            local_seq: 6,
        });
        roundtrip(OrderHeader {
            message: TotalIdHeader {
                origin: NodeId(4),
                local_seq: 6,
            },
            global_seq: 99,
        });
    }

    #[test]
    fn adversarial_liveness_digest_counts_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        NodeId(1).encode(&mut w);
        w.put_u64(7);
        assert!(LivenessDigest::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn adversarial_repair_counts_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        NodeId(1).encode(&mut w);
        assert!(RepairDigest::from_bytes(&w.finish()).is_err());

        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        NodeId(1).encode(&mut w);
        assert!(RepairPull::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn corrupted_mcast_mode_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        NodeId(1).encode(&mut w);
        assert!(McastHeader::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn headers_compose_on_a_message_stack() {
        let mut message = morpheus_appia::Message::with_payload(&b"chat"[..]);
        message.push(&SeqHeader { seq: 9 });
        message.push(&McastHeader {
            mode: McastMode::RelayRequest,
            origin: NodeId(5),
        });

        // The receiving side pops in reverse order.
        let mcast: McastHeader = message.pop().unwrap();
        assert_eq!(mcast.mode, McastMode::RelayRequest);
        let seq: SeqHeader = message.pop().unwrap();
        assert_eq!(seq.seq, 9);
        assert_eq!(message.payload().as_ref(), b"chat");
    }
    #[test]
    fn adversarial_counts_are_rejected_across_all_bodies() {
        // RepairDigest claiming u32::MAX entries backed by one entry's bytes.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        RepairRange {
            origin: NodeId(1),
            inc: 1,
            lo: 1,
            hi: 1,
        }
        .encode(&mut w);
        assert!(RepairDigest::from_bytes(&w.finish()).is_err());

        // FlushBody claiming a membership far larger than the payload.
        let mut w = WireWriter::new();
        w.put_u64(3);
        NodeId(2).encode(&mut w);
        w.put_u32(u32::MAX);
        NodeId(4).encode(&mut w);
        assert!(FlushBody::from_bytes(&w.finish()).is_err());

        // RepairPull with an honest entry count but an adversarial inner
        // sequence-list count.
        let mut w = WireWriter::new();
        w.put_u32(1);
        NodeId(1).encode(&mut w);
        w.put_u64(9);
        w.put_u32(u32::MAX);
        assert!(RepairPull::from_bytes(&w.finish()).is_err());

        // GossipBatchBody claiming u32::MAX entries backed by one entry.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        GossipHeader {
            origin: NodeId(1),
            inc: 1,
            seq: 1,
            ttl: 1,
        }
        .encode(&mut w);
        Message::with_payload(&b"x"[..]).encode(&mut w);
        assert!(GossipBatchBody::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn truncated_bodies_decode_to_clean_errors() {
        let digest = RepairDigest {
            credit: 64,
            entries: vec![RepairRange {
                origin: NodeId(3),
                inc: 7,
                lo: 1,
                hi: 4,
            }],
        };
        let pull = RepairPull {
            wants: vec![(NodeId(3), 7, vec![2, 3])],
        };
        let flush = FlushBody {
            epoch: 5,
            proposer: NodeId(1),
            flushed: vec![NodeId(1), NodeId(2)],
        };
        let mut inner = Message::with_payload(&b"chat"[..]);
        inner.push(&SeqHeader { seq: 3 });
        let batch = GossipBatchBody {
            entries: vec![(
                GossipHeader {
                    origin: NodeId(3),
                    inc: 7,
                    seq: 2,
                    ttl: 1,
                },
                inner,
            )],
        };
        let floor = RepairFloorBody {
            origin: NodeId(3),
            inc: 7,
            floor: 41,
        };
        let bodies: Vec<Vec<u8>> = vec![
            digest.to_bytes().to_vec(),
            pull.to_bytes().to_vec(),
            flush.to_bytes().to_vec(),
            batch.to_bytes().to_vec(),
            floor.to_bytes().to_vec(),
        ];
        for (which, bytes) in bodies.iter().enumerate() {
            for cut in 0..bytes.len() {
                let truncated = &bytes[..cut];
                let failed = match which {
                    0 => RepairDigest::from_bytes(truncated).is_err(),
                    1 => RepairPull::from_bytes(truncated).is_err(),
                    2 => FlushBody::from_bytes(truncated).is_err(),
                    3 => GossipBatchBody::from_bytes(truncated).is_err(),
                    _ => RepairFloorBody::from_bytes(truncated).is_err(),
                };
                assert!(
                    failed,
                    "body {which} decoded from {cut} of {} bytes",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn single_bit_flips_never_panic_the_body_decoders() {
        // Exhaustive deterministic single-bit fuzz: a flipped bit may decode
        // to a different valid value or a clean error, never a panic or an
        // attacker-sized allocation.
        let digest = RepairDigest {
            credit: 32,
            entries: vec![
                RepairRange {
                    origin: NodeId(1),
                    inc: 2,
                    lo: 3,
                    hi: 9,
                },
                RepairRange {
                    origin: NodeId(4),
                    inc: 5,
                    lo: 1,
                    hi: 1,
                },
            ],
        };
        let pull = RepairPull {
            wants: vec![(NodeId(1), 2, vec![4, 5, 6]), (NodeId(7), 8, vec![])],
        };
        let flush = FlushBody {
            epoch: 11,
            proposer: NodeId(0),
            flushed: vec![NodeId(0), NodeId(1), NodeId(2)],
        };
        let mut inner = Message::with_payload(&b"chat"[..]);
        inner.push(&SeqHeader { seq: 3 });
        let batch = GossipBatchBody {
            entries: vec![(
                GossipHeader {
                    origin: NodeId(1),
                    inc: 2,
                    seq: 3,
                    ttl: 1,
                },
                inner,
            )],
        };
        let floor = RepairFloorBody {
            origin: NodeId(1),
            inc: 2,
            floor: 9,
        };
        for bytes in [
            digest.to_bytes().to_vec(),
            pull.to_bytes().to_vec(),
            flush.to_bytes().to_vec(),
            batch.to_bytes().to_vec(),
            floor.to_bytes().to_vec(),
        ] {
            for index in 0..bytes.len() {
                for bit in 0..8 {
                    let mut mutated = bytes.clone();
                    mutated[index] ^= 1 << bit;
                    let _ = RepairDigest::from_bytes(&mutated);
                    let _ = RepairPull::from_bytes(&mutated);
                    let _ = FlushBody::from_bytes(&mutated);
                    let _ = GossipBatchBody::from_bytes(&mutated);
                    let _ = RepairFloorBody::from_bytes(&mutated);
                }
            }
        }
    }
}
