//! Event types used by the group communication suite.
//!
//! Sendable events carry all protocol information inside their
//! [`morpheus_appia::Message`] headers (see [`crate::headers`]); the event
//! *type* selects which layers process it.

use morpheus_appia::platform::NodeId;
use morpheus_appia::{internal_event, sendable_event};

use crate::view::View;

sendable_event! {
    /// Periodic liveness announcement from the failure detector.
    pub struct Heartbeat, class: Control
}

sendable_event! {
    /// A negative acknowledgement requesting retransmission of missing
    /// messages (header: [`crate::headers::NackHeader`]).
    pub struct NackRequest, class: Control
}

sendable_event! {
    /// First phase of a view change: the proposer opens an epoch-stamped
    /// round (headers, top-first: the view epoch, then the proposed
    /// [`View`]).
    pub struct ViewPrepare, class: Control
}

sendable_event! {
    /// A member acknowledges that it blocked and flushed for a view round
    /// (header: [`crate::headers::FlushBody`] — the round's ballot plus the
    /// flushed-member set, aggregated in gossip mode).
    pub struct FlushAck, class: Control
}

sendable_event! {
    /// Second phase of a view change: the proposer commits the agreed view
    /// (headers, top-first: the view epoch, then the encoded [`View`]).
    pub struct ViewCommit, class: Control
}

sendable_event! {
    /// A node asks to join the group (processed by the view coordinator).
    pub struct JoinRequest, class: Control
}

sendable_event! {
    /// A participant rejected a [`ViewPrepare`] because it already promised a
    /// stronger ballot (headers, top-first: the promised epoch, then the
    /// epoch holder). The proposer answers by jumping its epoch past the
    /// reported one and re-proposing immediately, instead of discovering the
    /// obstruction one epoch per round timeout — which matters when a falsely
    /// self-suspecting rejoiner abandons a cascade of high-ballot rounds.
    pub struct StaleBallot, class: Control
}

sendable_event! {
    /// Periodic gossip-repair digest: the spans of messages the sender's
    /// repair log can serve (header: [`crate::headers::RepairDigest`]).
    pub struct GossipRepairDigest, class: Repair
}

sendable_event! {
    /// NACK pull of the epidemic repair pass: the message identifiers the
    /// sender misses and pulls from the digest's sender (header:
    /// [`crate::headers::RepairPull`]).
    pub struct GossipRepairPull, class: Repair
}

sendable_event! {
    /// Answer to a [`GossipRepairPull`]: one logged message, re-streamed to
    /// the puller (header: [`crate::headers::RepairPushHeader`]; payload:
    /// the original message bytes).
    pub struct GossipRepairPush, class: Repair
}

sendable_event! {
    /// Retention fall-through answer to a [`GossipRepairPull`] that asked
    /// for sequence numbers older than the responder's repair-log floor
    /// (header: [`crate::headers::RepairFloorBody`]). Tells the puller NACK
    /// repair can never close that gap; the puller escalates to a targeted
    /// state-section pull against the responder instead.
    pub struct GossipRepairFloor, class: Repair
}

sendable_event! {
    /// Several app messages aggregated into one gossip packet (header:
    /// [`crate::headers::GossipBatchBody`]). Data class: batches carry
    /// application payloads and must experience the same loss and
    /// accounting as singleton pushes.
    pub struct GossipBatch, class: Data
}

sendable_event! {
    /// A forward-error-correction parity block covering a window of data
    /// messages (header: [`crate::headers::FecParityHeader`]).
    pub struct FecParity, class: Control
}

sendable_event! {
    /// Total-order sequencing information from the sequencer (header:
    /// [`crate::headers::OrderHeader`]).
    pub struct OrderInfo, class: Control
}

internal_event! {
    /// The failure detector suspects a member has failed.
    pub struct Suspect {
        /// The suspected node.
        pub node: NodeId,
    }
    categories: [Internal]
}

internal_event! {
    /// The failure detector heard again from a member it had previously
    /// suspected: the suspicion was false (e.g. heartbeats dropped on a lossy
    /// link) and upper layers may re-admit the node.
    pub struct Alive {
        /// The node that turned out to be alive after all.
        pub node: NodeId,
    }
    categories: [Internal]
}

internal_event! {
    /// A new view was installed; travels *down* the stack so lower layers
    /// (multicast, reliability, ordering) update their membership.
    pub struct ViewInstall {
        /// The newly installed view.
        pub view: View,
    }
    categories: [Internal]
}

internal_event! {
    /// Asks the view-synchrony layer to block the channel: application sends
    /// are buffered until a [`ResumeRequest`] arrives. Used by the Core
    /// subsystem to drive the channel to quiescence before reconfiguration.
    pub struct BlockRequest {}
    categories: [Internal]
}

internal_event! {
    /// Unblocks a previously blocked channel and re-emits buffered sends.
    pub struct ResumeRequest {}
    categories: [Internal]
}

internal_event! {
    /// Raised by the recovery layer when a never-crashed member detects it
    /// was expelled from the group by a false suspicion (its failure
    /// detector ended up suspecting every other view member). The
    /// view-synchrony layer above answers by resetting into *joining* mode —
    /// empty view, channel blocked — so the node re-enters through the same
    /// join path a restarted node uses.
    pub struct Rejoin {}
    categories: [Internal]
}

internal_event! {
    /// Raised *up* the stack by the gossip layer when a
    /// [`GossipRepairFloor`] told it a missed span was evicted from every
    /// reachable repair log. The recovery layer above answers with a
    /// targeted state-section pull against the donor — snapshot catch-up
    /// without a view change or stack teardown.
    pub struct CatchupRequest {
        /// The member whose repair log floored the pull: known complete up
        /// to its digest, so it serves as the snapshot donor.
        pub donor: NodeId,
    }
    categories: [Internal]
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_appia::event::EventPayload;
    use morpheus_appia::registry::EventFactoryRegistry;
    use morpheus_appia::{Message, PacketClass};

    #[test]
    fn control_events_have_control_class() {
        let hb = Heartbeat::to_group(NodeId(1), Message::new());
        assert_eq!(hb.header.class, PacketClass::Control);
        let nack = NackRequest::to_group(NodeId(1), Message::new());
        assert_eq!(nack.header.class, PacketClass::Control);
    }

    #[test]
    fn sendable_events_register_factories() {
        let mut factories = EventFactoryRegistry::new();
        Heartbeat::register(&mut factories);
        ViewPrepare::register(&mut factories);
        FlushAck::register(&mut factories);
        ViewCommit::register(&mut factories);
        for name in ["Heartbeat", "ViewPrepare", "FlushAck", "ViewCommit"] {
            assert!(factories.contains(name));
        }
    }

    #[test]
    fn internal_events_carry_their_payload() {
        let suspect = Suspect { node: NodeId(7) };
        assert_eq!(suspect.node, NodeId(7));
        assert_eq!(suspect.type_name(), "Suspect");
        let install = ViewInstall {
            view: View::initial(vec![NodeId(1), NodeId(2)]),
        };
        assert_eq!(install.view.len(), 2);
    }
}
