//! Group views: the membership agreed upon by the group at a point in time.

use morpheus_appia::platform::NodeId;
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// A group view: a monotonically increasing identifier plus the agreed set of
/// members, kept sorted by node id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Monotonically increasing view identifier.
    pub id: u64,
    /// The members of the view, in ascending node-id order.
    pub members: Vec<NodeId>,
}

impl View {
    /// Creates a view, sorting and de-duplicating the member list.
    pub fn new(id: u64, mut members: Vec<NodeId>) -> Self {
        members.sort();
        members.dedup();
        Self { id, members }
    }

    /// The initial view (id 0) over a static member list.
    pub fn initial(members: Vec<NodeId>) -> Self {
        Self::new(0, members)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the node belongs to the view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The deterministically elected coordinator: the lowest node id.
    pub fn coordinator(&self) -> Option<NodeId> {
        self.members.first().copied()
    }

    /// The rank of a member within the view (0 = coordinator).
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// Every member except the given node (typically the local one).
    pub fn others(&self, node: NodeId) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|member| *member != node)
            .collect()
    }

    /// A successor view with one member removed.
    pub fn without(&self, node: NodeId) -> View {
        View::new(self.id + 1, self.others(node))
    }

    /// A successor view with one member added.
    pub fn with_member(&self, node: NodeId) -> View {
        let mut members = self.members.clone();
        members.push(node);
        View::new(self.id + 1, members)
    }
}

impl Wire for View {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.id);
        w.put_u32_list(&self.members.iter().map(|m| m.0).collect::<Vec<_>>());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = r.get_u64()?;
        let members = r.get_u32_list()?.into_iter().map(NodeId).collect();
        Ok(View::new(id, members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn views_are_sorted_and_deduplicated() {
        let view = View::new(3, nodes(&[5, 1, 3, 1]));
        assert_eq!(view.members, nodes(&[1, 3, 5]));
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn coordinator_is_lowest_id() {
        let view = View::initial(nodes(&[7, 2, 9]));
        assert_eq!(view.coordinator(), Some(NodeId(2)));
        assert_eq!(view.rank_of(NodeId(2)), Some(0));
        assert_eq!(view.rank_of(NodeId(9)), Some(2));
        assert_eq!(view.rank_of(NodeId(100)), None);
        assert_eq!(View::initial(vec![]).coordinator(), None);
    }

    #[test]
    fn membership_queries() {
        let view = View::initial(nodes(&[1, 2, 3]));
        assert!(view.contains(NodeId(2)));
        assert!(!view.contains(NodeId(9)));
        assert_eq!(view.others(NodeId(2)), nodes(&[1, 3]));
    }

    #[test]
    fn successor_views_bump_the_id() {
        let view = View::initial(nodes(&[1, 2, 3]));
        let without = view.without(NodeId(2));
        assert_eq!(without.id, 1);
        assert_eq!(without.members, nodes(&[1, 3]));
        let with = without.with_member(NodeId(9));
        assert_eq!(with.id, 2);
        assert_eq!(with.members, nodes(&[1, 3, 9]));
    }

    #[test]
    fn wire_roundtrip() {
        let view = View::new(42, nodes(&[4, 8, 15]));
        let bytes = view.to_bytes();
        assert_eq!(View::from_bytes(&bytes).unwrap(), view);
    }
}
