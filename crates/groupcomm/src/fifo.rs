//! Per-sender FIFO ordering.
//!
//! Each sender stamps its data messages with a sequence number; receivers
//! deliver messages of each sender in sequence-number order, buffering
//! out-of-order arrivals and discarding duplicates. The layer does not
//! recover losses (see [`crate::reliable`] for that); a missing message only
//! delays later ones until a bounded reordering window fills up.

use std::collections::{BTreeMap, HashMap};

use morpheus_appia::event::{Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_or, Layer, LayerParams};
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::headers::SeqHeader;

/// Registered name of the FIFO ordering layer.
pub const FIFO_LAYER: &str = "fifo";

/// The FIFO ordering layer.
///
/// Parameters:
///
/// * `window` — maximum number of out-of-order messages buffered per sender
///   before the gap is given up on and delivery skips ahead (default 64).
pub struct FifoLayer;

impl Layer for FifoLayer {
    fn name(&self) -> &str {
        FIFO_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>()]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(FifoSession {
            window: param_or(params, "window", 64usize).max(1),
            next_seq: 0,
            incoming: HashMap::new(),
        })
    }
}

#[derive(Debug, Default)]
struct SenderState {
    expected: u64,
    pending: BTreeMap<u64, Event>,
}

/// Session state of the FIFO layer.
#[derive(Debug)]
pub struct FifoSession {
    window: usize,
    next_seq: u64,
    // bound: one entry per sender heard from; each reordering buffer is capped by `window` (overflow skips the gap).
    incoming: HashMap<NodeId, SenderState>,
}

impl Session for FifoSession {
    fn layer_name(&self) -> &str {
        FIFO_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        match event.direction {
            Direction::Down => {
                if let Some(data) = event.get_mut::<DataEvent>() {
                    self.next_seq += 1;
                    data.message.push(&SeqHeader { seq: self.next_seq });
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<SeqHeader>() else {
                    return;
                };
                let origin = data.header.source;
                let state = self.incoming.entry(origin).or_insert_with(|| SenderState {
                    expected: 1,
                    pending: BTreeMap::new(),
                });

                if header.seq < state.expected {
                    return; // duplicate
                }
                if header.seq > state.expected {
                    state.pending.insert(header.seq, event);
                    // If the reordering window overflows, give up on the gap:
                    // advance to the oldest buffered message.
                    if state.pending.len() > self.window {
                        if let Some((&oldest, _)) = state.pending.iter().next() {
                            state.expected = oldest;
                        }
                    } else {
                        return;
                    }
                } else {
                    state.expected += 1;
                    ctx.forward(event);
                }

                // Drain any now-deliverable buffered messages.
                while let Some(buffered) = state.pending.remove(&state.expected) {
                    state.expected += 1;
                    ctx.forward(buffered);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::event::Dest;
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;
    use morpheus_appia::Message;

    use super::*;

    fn data_with_seq(origin: u32, seq: u64, payload: &[u8]) -> Event {
        let mut message = Message::with_payload(payload.to_vec());
        message.push(&SeqHeader { seq });
        Event::up(DataEvent::new(
            NodeId(origin),
            Dest::Node(NodeId(99)),
            message,
        ))
    }

    fn harness(platform: &mut TestPlatform, window: Option<&str>) -> Harness {
        let mut params = LayerParams::new();
        if let Some(window) = window {
            params.insert("window".into(), window.into());
        }
        Harness::new(FifoLayer, &params, platform)
    }

    #[test]
    fn in_order_messages_pass_straight_through() {
        let mut platform = TestPlatform::new(NodeId(99));
        let mut fifo = harness(&mut platform, None);
        for seq in 1..=3 {
            let delivered = fifo.run_up(data_with_seq(1, seq, b"m"), &mut platform);
            assert_eq!(delivered.len(), 1, "seq {seq} delivered immediately");
        }
    }

    #[test]
    fn out_of_order_messages_are_buffered_and_released_in_order() {
        let mut platform = TestPlatform::new(NodeId(99));
        let mut fifo = harness(&mut platform, None);

        assert!(fifo
            .run_up(data_with_seq(1, 2, b"b"), &mut platform)
            .is_empty());
        assert!(fifo
            .run_up(data_with_seq(1, 3, b"c"), &mut platform)
            .is_empty());
        let released = fifo.run_up(data_with_seq(1, 1, b"a"), &mut platform);
        assert_eq!(released.len(), 3, "gap fill releases the whole prefix");
    }

    #[test]
    fn duplicates_are_discarded() {
        let mut platform = TestPlatform::new(NodeId(99));
        let mut fifo = harness(&mut platform, None);
        assert_eq!(
            fifo.run_up(data_with_seq(1, 1, b"a"), &mut platform).len(),
            1
        );
        assert!(fifo
            .run_up(data_with_seq(1, 1, b"a"), &mut platform)
            .is_empty());
    }

    #[test]
    fn senders_are_sequenced_independently() {
        let mut platform = TestPlatform::new(NodeId(99));
        let mut fifo = harness(&mut platform, None);
        assert_eq!(
            fifo.run_up(data_with_seq(1, 1, b"a"), &mut platform).len(),
            1
        );
        assert_eq!(
            fifo.run_up(data_with_seq(2, 1, b"x"), &mut platform).len(),
            1
        );
    }

    #[test]
    fn window_overflow_skips_the_gap() {
        let mut platform = TestPlatform::new(NodeId(99));
        let mut fifo = harness(&mut platform, Some("2"));

        // seq 1 is lost; 2 and 3 buffer; 4 overflows the window and forces
        // delivery to resume from the oldest buffered message.
        assert!(fifo
            .run_up(data_with_seq(1, 2, b"b"), &mut platform)
            .is_empty());
        assert!(fifo
            .run_up(data_with_seq(1, 3, b"c"), &mut platform)
            .is_empty());
        let released = fifo.run_up(data_with_seq(1, 4, b"d"), &mut platform);
        assert_eq!(released.len(), 3);
    }

    #[test]
    fn downward_messages_get_increasing_sequence_numbers() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fifo = harness(&mut platform, None);
        let out = fifo.run_down(
            Event::down(DataEvent::to_group(NodeId(1), Message::new())),
            &mut platform,
        );
        assert_eq!(out.len(), 1);
        let out2 = fifo.run_down(
            Event::down(DataEvent::to_group(NodeId(1), Message::new())),
            &mut platform,
        );
        let seq1 = out[0]
            .get::<DataEvent>()
            .unwrap()
            .message
            .peek::<SeqHeader>()
            .unwrap()
            .seq;
        let seq2 = out2[0]
            .get::<DataEvent>()
            .unwrap()
            .message
            .peek::<SeqHeader>()
            .unwrap()
            .seq;
        assert_eq!(seq1, 1);
        assert_eq!(seq2, 2);
    }
}
