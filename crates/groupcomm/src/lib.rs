//! # morpheus-groupcomm
//!
//! A group communication protocol suite built on top of the
//! [`morpheus_appia`] protocol kernel, modelled after the Appia group
//! communication suite the Morpheus paper builds on.
//!
//! The suite provides, as independent composable layers:
//!
//! * best-effort multicast ([`beb`]) — the paper's non-adaptive baseline:
//!   a group send becomes one point-to-point message per member (or a single
//!   native multicast when available);
//! * the **Mecho** adaptive multicast ([`mecho`]) — in hybrid fixed/mobile
//!   scenarios a mobile sender transmits a single point-to-point message to a
//!   selected fixed relay, which re-multicasts it to the remaining members;
//! * epidemic (gossip) multicast ([`gossip`]) for large-scale groups;
//! * FIFO ordering ([`fifo`]), NACK-based reliable multicast ([`reliable`]),
//!   forward error correction ([`fec`]);
//! * a heartbeat failure detector ([`failure_detector`]);
//! * group membership with view synchrony ([`vsync`], [`view`]);
//! * view-synchronous state transfer for member rejoin ([`recovery`]);
//! * causal ([`causal`]) and sequencer-based total ordering ([`total`]).
//!
//! [`suite::register_suite`] registers every layer and event type with a
//! kernel; [`suite`] also provides the standard channel compositions used by
//! the Morpheus Core subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod beb;
pub mod causal;
pub mod events;
pub mod failure_detector;
pub mod fec;
pub mod fifo;
pub mod gossip;
pub mod headers;
pub mod mecho;
pub mod recovery;
pub mod reliable;
pub mod repair;
pub mod round;
pub mod suite;
pub mod total;
pub mod view;
pub mod vsync;

pub use events::{
    BlockRequest, FecParity, FlushAck, Heartbeat, JoinRequest, NackRequest, OrderInfo,
    ResumeRequest, StaleBallot, Suspect, ViewCommit, ViewInstall, ViewPrepare,
};
pub use recovery::{RecoveryLayer, StateSection};
pub use round::{Ballot, Engine as RoundEngine};
pub use suite::{register_suite, StackBuilder};
pub use view::View;
