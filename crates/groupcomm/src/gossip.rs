//! Epidemic (gossip) multicast for large, geographically distributed groups.
//!
//! The paper's motivation section points out that when "participants are in
//! large numbers and distributed geographically over a large-scale network,
//! it can be preferable to rely on epidemic protocols to implement the
//! multicast". This layer implements the two-phase design of bimodal
//! multicast (Birman et al.):
//!
//! 1. **Push phase** — a sender pushes the message to `fanout` random
//!    members; every receiver that sees the message for the first time
//!    delivers it and pushes it to another `fanout` random members while the
//!    TTL lasts. Coverage is probabilistic: at realistic fan-outs a few
//!    percent of the group misses any given message.
//! 2. **Repair phase (NACK / anti-entropy)** — every member keeps a bounded
//!    log of recently delivered messages keyed by `(origin, inc, seq)`.
//!    Each `repair_interval_ms` it gossips a [`RepairDigest`] — the message
//!    spans its log can serve — to `fanout` random peers. A receiver
//!    compares the spans against its own per-stream delivery record and
//!    NACK-pulls the gaps ([`RepairPull`], rate-limited to
//!    `repair_pull_budget` digest senders and `repair_window` messages per
//!    interval); the peer answers with the logged originals
//!    ([`GossipRepairPush`]). Late duplicates — including messages already
//!    evicted from the push-phase suppression set but still recorded in the
//!    delivery tracker — are suppressed, so coverage converges to 100%
//!    shortly after the push phase tops out without ever re-delivering.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::{
    CatchupRequest, GossipBatch, GossipRepairDigest, GossipRepairFloor, GossipRepairPull,
    GossipRepairPush, ViewInstall,
};
use crate::headers::{
    GossipBatchBody, GossipHeader, RepairDigest, RepairFloorBody, RepairPull, RepairPushHeader,
    RepairRange,
};
use crate::repair::{Delivered, RepairLog, StreamKey};

/// Registered name of the gossip multicast layer.
pub const GOSSIP_LAYER: &str = "gossip";

/// Timer tag of the periodic repair tick.
const REPAIR_TAG: u32 = 1;

/// Timer tag of the zero-delay outbox flush: pushes enqueued within one
/// simulation instant leave together as aggregated [`GossipBatch`] packets.
const FLUSH_TAG: u32 = 2;

/// Default cap on message identifiers remembered for duplicate suppression.
const DEFAULT_SEEN_CAP: usize = 65_536;

/// Default age after which a remembered identifier is evicted. Far beyond
/// any realistic propagation delay of an epidemic round, so eviction can
/// only re-admit a duplicate that stopped circulating long ago — while a
/// long-running chat no longer pins one entry per message ever seen.
const DEFAULT_SEEN_TTL_MS: u64 = 60_000;

/// Default cadence of the repair digest gossip (`0` disables the repair
/// pass entirely, leaving the pure push-phase protocol).
const DEFAULT_REPAIR_INTERVAL_MS: u64 = 1_000;

/// Default cap on messages held in the repair log.
const DEFAULT_REPAIR_LOG_CAP: usize = 4_096;

/// Default age after which a logged message is no longer served.
const DEFAULT_REPAIR_LOG_TTL_MS: u64 = 10_000;

/// Default cap on message identifiers NACK-pulled per repair interval.
const DEFAULT_REPAIR_WINDOW: usize = 64;

/// Default number of digest senders pulled from per repair interval (one
/// redundant pull, mirroring the context anti-entropy budget, so a single
/// lost push batch does not cost a whole extra interval).
const DEFAULT_REPAIR_PULL_BUDGET: usize = 2;

/// Default per-peer credit window: how many push-path messages a sender may
/// stream to one peer before it must wait for a re-grant (piggybacked on
/// [`RepairDigest`]). `0` disables credit backpressure; the layer-parameter
/// default is off so bare sessions keep the legacy behaviour, while the
/// stack builder turns it on for real stacks.
const DEFAULT_CREDIT_WINDOW: usize = 0;

/// Default number of app messages aggregated per [`GossipBatch`] packet.
/// `1` keeps the legacy one-packet-per-message push path.
const DEFAULT_BATCH_MAX: usize = 1;

/// Per-peer outbox cap when credit backpressure is off (with credit on, the
/// cap is `4 × credit_window`). Beyond it the newest pushes are shed — they
/// are already in the repair log, so the digest-announce + pull path
/// recovers them.
const DEFAULT_OUTBOX_CAP: usize = 1_024;

/// Picks up to `limit` distinct members uniformly at random, excluding
/// `exclude` — the peer-sampling primitive shared by every gossip mechanism
/// (epidemic multicast, liveness-digest failure detection, context
/// anti-entropy). A partial Fisher-Yates driven by the platform's
/// deterministic RNG, so simulation runs stay reproducible.
pub fn sample_peers(
    members: &[NodeId],
    exclude: &[NodeId],
    limit: usize,
    ctx: &mut EventContext<'_>,
) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|member| !exclude.contains(member))
        .collect();
    if pool.len() <= limit {
        return pool;
    }
    for index in 0..limit {
        let remaining = pool.len() - index;
        let pick = index + (ctx.random_u64() % remaining as u64) as usize;
        pool.swap(index, pick);
    }
    pool.truncate(limit);
    pool
}

/// Counters of one gossip session, exposed to the node runtime (and from
/// there to testbed reports) via the session downcast hook.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Push-phase forwards performed (first receptions re-pushed while the
    /// TTL lasted).
    pub forwarded: u64,
    /// Push-phase duplicates suppressed by the seen set.
    pub duplicates: u64,
    /// Repair digests gossiped.
    pub repair_digests: u64,
    /// NACK pulls sent (requests, not message identifiers).
    pub repair_pulls: u64,
    /// Message identifiers requested across all pulls.
    pub repair_pulled_seqs: u64,
    /// Logged messages served in answer to pulls.
    pub repair_pushes: u64,
    /// Messages delivered to the application through the repair pass (gaps
    /// the push phase missed).
    pub repaired_deliveries: u64,
    /// Late duplicates suppressed by the delivery tracker — arrivals (push
    /// or repair) of messages already delivered, including ones whose seen
    /// set entry had been evicted.
    pub late_duplicates: u64,
    /// Push-flush deferrals: messages left waiting in a per-peer outbox at
    /// a flush because the peer's credit was exhausted (one count per
    /// message per flush attempt).
    pub deferred_pushes: u64,
    /// Pushes shed from a full per-peer outbox (drop-newest; the shed
    /// messages stay recoverable through the repair log).
    pub outbox_shed: u64,
    /// Retention fall-throughs: `RepairFloor` answers that fast-forwarded a
    /// stream past an un-servable span and escalated to a snapshot catch-up.
    pub floor_escalations: u64,
    /// Repair-pull answers cut short by the per-interval push rate limit.
    pub rate_limited_pushes: u64,
}

/// The epidemic multicast layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial membership;
/// * `fanout` — number of random targets per push (default 3);
/// * `ttl` — number of forwarding rounds a message survives (default 4);
/// * `seen_cap` — ring-buffer cap on the duplicate-suppression set
///   (default 65536);
/// * `seen_ttl_ms` — age-based eviction of suppression entries (default
///   60000 ms; `0` disables age eviction);
/// * `repair_interval_ms` — cadence of the repair digest gossip (default
///   1000 ms; `0` disables the repair pass);
/// * `repair_log_cap` — cap on messages held in the repair log (default
///   4096);
/// * `repair_log_ttl_ms` — age after which a logged message is dropped
///   (default 10000 ms);
/// * `repair_window` — cap on message identifiers pulled per interval
///   (default 64);
/// * `repair_pull_budget` — digest senders pulled from per interval
///   (default 2);
/// * `batch_max` — app messages aggregated per gossip packet (default 1:
///   legacy singleton pushes);
/// * `credit_window` — per-peer credit window for push backpressure
///   (default 0: off; requires the repair pass for the grant channel).
pub struct GossipLayer;

impl Layer for GossipLayer {
    fn name(&self) -> &str {
        GOSSIP_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<ViewInstall>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<GossipRepairDigest>(),
            EventSpec::of::<GossipRepairPull>(),
            EventSpec::of::<GossipRepairPush>(),
            EventSpec::of::<GossipRepairFloor>(),
            EventSpec::of::<GossipBatch>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec![
            "DataEvent",
            "GossipRepairDigest",
            "GossipRepairPull",
            "GossipRepairPush",
            "GossipRepairFloor",
            "GossipBatch",
            "CatchupRequest",
        ]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(GossipSession::from_params(params))
    }
}

/// Session state of the gossip layer.
#[derive(Debug)]
pub struct GossipSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    /// Set view of `members`, refreshed on every view install: the guard
    /// that keeps repair traffic (digest replies, NACK-pull answers) from
    /// flowing to expelled or crashed peers that are no longer in the view.
    // bound: <= view size; rebuilt on every view install.
    member_set: HashSet<NodeId>,
    fanout: usize,
    ttl: u32,
    seen_cap: usize,
    seen_ttl_ms: u64,
    repair_interval_ms: u64,
    repair_log_cap: usize,
    repair_log_ttl_ms: u64,
    repair_window: usize,
    repair_pull_budget: usize,
    /// The local stream incarnation (session creation time): what keeps the
    /// local sequence space distinct from any previous session of this node
    /// after a restart or stack redeployment.
    inc: u64,
    inc_ready: bool,
    next_seq: u64,
    // bound: capped at `seen_cap` and aged out after `seen_ttl_ms`, enforced via `seen_order`.
    seen: HashSet<(NodeId, u64, u64)>,
    /// Insertion-ordered `(id, remembered-at ms)` ring backing the eviction
    /// policy: bounded capacity plus age-based expiry, so the
    /// duplicate-suppression memory stays capped no matter how long the
    /// epidemic data path runs.
    // bound: the ring itself -- `seen_cap` entries, `seen_ttl_ms` age.
    seen_order: VecDeque<((NodeId, u64, u64), u64)>,
    /// Per-stream delivery record — the repair pass's ground truth. Never
    /// capacity-evicted (unlike `seen`), so a message that fell out of the
    /// seen set is still known as delivered when a late NACK pull re-streams
    /// it.
    // bound: <= TRACKED_INCS_PER_ORIGIN streams per origin (stale incarnations evicted); each entry is a contiguous floor plus a DELIVERED_GAP_CAP-capped sparse set.
    delivered: HashMap<StreamKey, Delivered>,
    /// Per-stream `(first-seen ms, advertised lo, last advertiser)` for
    /// sub-floor gaps sighted in digests (`lo` above this node's contiguous
    /// delivery floor). A breach that survives two repair-log TTLs with the
    /// gap still open escalates to a snapshot catch-up on the repair tick;
    /// a transient breach — some other peer's later-arrival retention still
    /// served the span — clears itself.
    // bound: <= one entry per `delivered` stream; cleared on closure or escalation, pruned against `delivered` each repair tick.
    floor_breaches: HashMap<StreamKey, (u64, u64, NodeId)>,
    /// The repair log: recently delivered original messages, servable on a
    /// NACK pull. Bounded by `repair_log_cap` (ring) and
    /// `repair_log_ttl_ms` (age).
    // bound: `repair_log_cap` ring + `repair_log_ttl_ms` age, enforced inside `RepairLog`.
    log: RepairLog<Message>,
    pulls_this_interval: usize,
    pushes_this_interval: usize,
    repair_timer: Option<u64>,
    /// App messages aggregated per gossip packet (1 = legacy singletons).
    batch_max: usize,
    /// Per-peer credit window (0 = no backpressure).
    credit_window: usize,
    /// Per-peer outbox cap (drop-newest beyond it).
    outbox_cap: usize,
    /// Deferred pushes per peer, flushed as aggregated batches on the
    /// zero-delay flush timer once credit allows.
    // bound: keys <= view size (pruned on view install); each queue capped at `outbox_cap` (drop-newest, counted in `outbox_shed`).
    outbox: BTreeMap<NodeId, VecDeque<(GossipHeader, Message)>>,
    /// Send-side credit remaining per peer, refilled by digest grants.
    // bound: <= view size keys, pruned on view install.
    credits: HashMap<NodeId, u32>,
    /// Receive-side remainder of the credit last granted to each peer; when
    /// it falls to half the window a fresh grant is sent.
    // bound: <= view size keys, pruned on view install.
    granted: HashMap<NodeId, u32>,
    flush_timer: Option<u64>,
    stats: GossipStats,
}

impl GossipSession {
    /// Builds a session from layer parameters — the single construction
    /// site shared by [`GossipLayer::create_session`] and the unit tests.
    fn from_params(params: &LayerParams) -> Self {
        let members = param_node_list(params, "members");
        let credit_window = param_or(params, "credit_window", DEFAULT_CREDIT_WINDOW);
        Self {
            member_set: members.iter().copied().collect(),
            members,
            fanout: param_or(params, "fanout", 3usize).max(1),
            ttl: param_or(params, "ttl", 4u32),
            seen_cap: param_or(params, "seen_cap", DEFAULT_SEEN_CAP).max(16),
            seen_ttl_ms: param_or(params, "seen_ttl_ms", DEFAULT_SEEN_TTL_MS),
            repair_interval_ms: param_or(params, "repair_interval_ms", DEFAULT_REPAIR_INTERVAL_MS),
            repair_log_cap: param_or(params, "repair_log_cap", DEFAULT_REPAIR_LOG_CAP).max(16),
            repair_log_ttl_ms: param_or(params, "repair_log_ttl_ms", DEFAULT_REPAIR_LOG_TTL_MS)
                .max(100),
            repair_window: param_or(params, "repair_window", DEFAULT_REPAIR_WINDOW).max(1),
            repair_pull_budget: param_or(params, "repair_pull_budget", DEFAULT_REPAIR_PULL_BUDGET)
                .max(1),
            inc: 0,
            inc_ready: false,
            next_seq: 0,
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            delivered: HashMap::new(),
            floor_breaches: HashMap::new(),
            log: RepairLog::new(),
            pulls_this_interval: 0,
            pushes_this_interval: 0,
            repair_timer: None,
            batch_max: param_or(params, "batch_max", DEFAULT_BATCH_MAX).max(1),
            credit_window,
            outbox_cap: if credit_window > 0 {
                credit_window * 4
            } else {
                DEFAULT_OUTBOX_CAP
            },
            outbox: BTreeMap::new(),
            credits: HashMap::new(),
            granted: HashMap::new(),
            flush_timer: None,
            stats: GossipStats::default(),
        }
    }

    /// Entries currently held for duplicate suppression.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Messages currently held in the repair log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The session's counters (push-phase and repair-pass).
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    fn repair_enabled(&self) -> bool {
        self.repair_interval_ms > 0
    }

    /// Credit backpressure needs the repair pass: grants ride on repair
    /// digests, and deferred/shed pushes rely on digest-announce + pull for
    /// eventual delivery. Without it senders would starve permanently.
    fn credit_enabled(&self) -> bool {
        self.credit_window > 0 && self.repair_enabled()
    }

    /// Whether the push path routes through per-peer outboxes (aggregated
    /// [`GossipBatch`] packets) instead of legacy singleton sends.
    fn aggregating(&self) -> bool {
        self.batch_max > 1 || self.credit_enabled()
    }

    fn ensure_inc(&mut self, ctx: &mut EventContext<'_>) {
        if !self.inc_ready {
            self.inc = ctx.now_ms();
            self.inc_ready = true;
        }
    }

    fn remember(&mut self, id: (NodeId, u64, u64), now_ms: u64) -> bool {
        // Age-based expiry first (cheap: entries are insertion-ordered).
        if self.seen_ttl_ms > 0 {
            while let Some((oldest, at)) = self.seen_order.front().copied() {
                if now_ms.saturating_sub(at) < self.seen_ttl_ms {
                    break;
                }
                self.seen_order.pop_front();
                self.seen.remove(&oldest);
            }
        }
        if !self.seen.insert(id) {
            return false;
        }
        self.seen_order.push_back((id, now_ms));
        while self.seen_order.len() > self.seen_cap {
            if let Some((oldest, _)) = self.seen_order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        true
    }

    /// Incarnations of one origin whose delivery records are retained. A
    /// node can plausibly produce several incarnations inside one repair
    /// window (pre-restart stack, rejoin boot stack, control-plane repair
    /// redeploy); pruning must never touch a stream whose messages peers'
    /// repair logs can still serve, or a late pull would re-deliver — so
    /// the cap is comfortably above that burst, and only the lowest (oldest,
    /// long past every repair log's TTL) incarnation is dropped.
    const TRACKED_INCS_PER_ORIGIN: usize = 4;

    /// Records a delivered message in the per-stream tracker; returns
    /// `false` for a late duplicate. Trackers are created only here — on an
    /// actual delivery — never on query paths, so digest contents cannot
    /// fabricate (or displace) delivery records.
    fn record_delivered(&mut self, origin: NodeId, inc: u64, seq: u64) -> bool {
        if !self.delivered.contains_key(&(origin, inc)) {
            let mut incs: Vec<u64> = self
                .delivered
                .keys()
                .filter(|(node, _)| *node == origin)
                .map(|(_, inc)| *inc)
                .collect();
            while incs.len() >= Self::TRACKED_INCS_PER_ORIGIN {
                incs.sort_unstable();
                let oldest = incs.remove(0);
                self.delivered.remove(&(origin, oldest));
                self.drop_stream_log(&(origin, oldest));
            }
        }
        self.delivered.entry((origin, inc)).or_default().record(seq)
    }

    fn drop_stream_log(&mut self, key: &StreamKey) {
        self.log.drop_stream(key);
    }

    /// Stores a delivered message in the bounded repair log.
    fn log_store(&mut self, key: StreamKey, seq: u64, message: Message, now_ms: u64) {
        if !self.repair_enabled() {
            return;
        }
        self.log
            .store(key, seq, message, now_ms, self.repair_log_cap);
    }

    /// Drops logged messages older than `repair_log_ttl_ms`.
    fn evict_log(&mut self, now_ms: u64) {
        self.log.evict(now_ms, self.repair_log_ttl_ms);
        // Breach timestamps for streams the delivery map no longer tracks
        // (stale incarnations) go with them — the map stays bounded by the
        // tracked-stream set.
        let delivered = &self.delivered;
        self.floor_breaches
            .retain(|key, _| delivered.contains_key(key));
    }

    fn random_targets(&self, exclude: &[NodeId], ctx: &mut EventContext<'_>) -> Vec<NodeId> {
        sample_peers(&self.members, exclude, self.fanout, ctx)
    }

    fn arm_repair_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.repair_timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.repair_timer = Some(ctx.set_timer(self.repair_interval_ms, REPAIR_TAG));
    }

    fn arm_flush_timer(&mut self, ctx: &mut EventContext<'_>) {
        if self.flush_timer.is_none() {
            // Zero delay: fires after the current instant's queued events,
            // so every same-instant push to one peer leaves in one batch.
            self.flush_timer = Some(ctx.set_timer(0, FLUSH_TAG));
        }
    }

    /// Queues one push into `peer`'s outbox. Shed policy: drop-newest
    /// beyond the cap — the message is already in the repair log, so
    /// digest-announce + pull recovers it. Returns `false` when shed.
    fn outbox_enqueue(&mut self, peer: NodeId, header: GossipHeader, message: Message) -> bool {
        let queue = self.outbox.entry(peer).or_default();
        if queue.len() >= self.outbox_cap {
            self.stats.outbox_shed += 1;
            return false;
        }
        queue.push_back((header, message));
        true
    }

    /// Defers one push into `peer`'s outbox and schedules the zero-delay
    /// flush that sends it out as part of an aggregated batch.
    fn enqueue_push(
        &mut self,
        peer: NodeId,
        header: GossipHeader,
        message: Message,
        ctx: &mut EventContext<'_>,
    ) {
        if self.outbox_enqueue(peer, header, message) {
            self.arm_flush_timer(ctx);
        }
    }

    /// Sends every credit-covered outbox entry as aggregated
    /// [`GossipBatch`] packets, at most `batch_max` app messages per packet.
    /// Entries beyond a peer's credit stay queued until a grant refills it.
    fn flush_outboxes(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let credit_on = self.credit_enabled();
        // Deterministic peer order: the members list, never hash order.
        let peers: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|peer| *peer != local)
            .collect();
        for peer in peers {
            let waiting = self.outbox.get(&peer).map_or(0, VecDeque::len);
            if waiting == 0 {
                continue;
            }
            let available = if credit_on {
                *self
                    .credits
                    .entry(peer)
                    .or_insert(self.credit_window as u32) as usize
            } else {
                usize::MAX
            };
            let take = waiting.min(available);
            if take < waiting {
                self.stats.deferred_pushes += (waiting - take) as u64;
            }
            if take == 0 {
                continue;
            }
            let mut entries: Vec<(GossipHeader, Message)> = {
                let queue = self.outbox.get_mut(&peer).expect("waiting > 0");
                queue.drain(..take).collect()
            };
            if self.outbox.get(&peer).is_some_and(VecDeque::is_empty) {
                self.outbox.remove(&peer);
            }
            if credit_on {
                if let Some(credit) = self.credits.get_mut(&peer) {
                    *credit = credit.saturating_sub(take as u32);
                }
            }
            while !entries.is_empty() {
                let chunk: Vec<(GossipHeader, Message)> =
                    entries.drain(..entries.len().min(self.batch_max)).collect();
                let mut message = Message::new();
                message.push(&GossipBatchBody { entries: chunk });
                ctx.dispatch(Event::down(GossipBatch::new(
                    local,
                    Dest::Node(peer),
                    message,
                )));
            }
        }
    }

    /// The spans the repair log can currently serve, in deterministic
    /// `(origin, inc)` order — the digest payload.
    fn digest_entries(&self) -> Vec<RepairRange> {
        self.log
            .spans()
            .into_iter()
            .map(|((origin, inc), lo, hi)| RepairRange {
                origin,
                inc,
                lo,
                hi,
            })
            .collect()
    }

    /// The credit value piggybacked on outgoing digests.
    fn grant_value(&self) -> u32 {
        if self.credit_enabled() {
            self.credit_window as u32
        } else {
            0
        }
    }

    /// Charges `count` push-path arrivals from `from` against the credit we
    /// granted it, re-granting once half the window is consumed.
    fn note_arrivals(&mut self, from: NodeId, count: u32, ctx: &mut EventContext<'_>) {
        if !self.credit_enabled() || !self.member_set.contains(&from) {
            return;
        }
        let window = self.credit_window as u32;
        let remaining = self.granted.entry(from).or_insert(window);
        *remaining = remaining.saturating_sub(count);
        if *remaining <= window / 2 {
            *remaining = window;
            // The re-grant is a targeted repair digest: the grant rides in
            // its credit field, and the log spans come along for free.
            let local = ctx.node_id();
            self.stats.repair_digests += 1;
            let mut message = Message::new();
            message.push(&RepairDigest {
                credit: window,
                entries: self.digest_entries(),
            });
            ctx.dispatch(Event::down(GossipRepairDigest::new(
                local,
                Dest::Node(from),
                message,
            )));
        }
    }

    /// One aggregated batch arrived: run every entry through the ordinary
    /// push-arrival path, then charge the batch against its sender's grant.
    fn on_batch(&mut self, from: NodeId, body: GossipBatchBody, ctx: &mut EventContext<'_>) {
        let arrivals = body.entries.len() as u32;
        for (header, message) in body.entries {
            self.on_push_arrival(from, header, message, ctx);
        }
        self.note_arrivals(from, arrivals, ctx);
    }

    /// A duplicate arrival is evidence the message is already circulating
    /// widely: any copy of it still waiting in an outbox (the zero-delay
    /// flush window, or a credit-starved queue) is redundant — drop it
    /// before it costs a transmission and a duplicate at the receiver.
    fn suppress_pending_relays(&mut self, origin: NodeId, inc: u64, seq: u64) {
        for queue in self.outbox.values_mut() {
            queue.retain(|(header, _)| {
                !(header.origin == origin && header.inc == inc && header.seq == seq)
            });
        }
    }

    /// The push-phase receive path for one batched message: dedup, track,
    /// log, relay while the TTL lasts, deliver upward.
    fn on_push_arrival(
        &mut self,
        from: NodeId,
        header: GossipHeader,
        message: Message,
        ctx: &mut EventContext<'_>,
    ) {
        if header.seq == 0 {
            return;
        }
        let local = ctx.node_id();
        let now = ctx.now_ms();
        if !self.remember((header.origin, header.inc, header.seq), now) {
            self.stats.duplicates += 1;
            self.suppress_pending_relays(header.origin, header.inc, header.seq);
            return;
        }
        if !self.record_delivered(header.origin, header.inc, header.seq) {
            self.stats.late_duplicates += 1;
            return;
        }
        self.log_store(
            (header.origin, header.inc),
            header.seq,
            message.clone(),
            now,
        );
        if header.ttl > 0 {
            // The sender plainly has the message too — relaying back to it
            // is a guaranteed duplicate, so it joins the exclusion list.
            let targets = self.random_targets(&[local, header.origin, from], ctx);
            if !targets.is_empty() {
                self.stats.forwarded += 1;
                let relay = GossipHeader {
                    ttl: header.ttl - 1,
                    ..header
                };
                for target in targets {
                    self.enqueue_push(target, relay, message.clone(), ctx);
                }
            }
        }
        ctx.dispatch(Event::up(DataEvent::new(
            header.origin,
            Dest::Node(local),
            message,
        )));
    }

    /// The periodic repair tick: evict the log, gossip a digest of what the
    /// log can serve, reset the per-interval pull and push budgets, retry
    /// credit-deferred outbox entries.
    fn on_repair_timer(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let now = ctx.now_ms();
        self.evict_log(now);
        self.escalate_stale_breaches(now, ctx);
        self.pulls_this_interval = 0;
        self.pushes_this_interval = 0;
        if !self.log.is_empty() {
            let entries = self.digest_entries();
            let targets = self.random_targets(&[local], ctx);
            if !targets.is_empty() {
                self.stats.repair_digests += 1;
                let mut message = Message::new();
                message.push(&RepairDigest {
                    credit: self.grant_value(),
                    entries,
                });
                ctx.dispatch(Event::down(GossipRepairDigest::new(
                    local,
                    Dest::Nodes(targets),
                    message,
                )));
            }
        }
        // Credit-starved outboxes get a periodic flush retry, so a grant
        // lost on the wire delays deferred pushes by one interval at most.
        if self.outbox.values().any(|queue| !queue.is_empty()) {
            self.arm_flush_timer(ctx);
        }
        self.arm_repair_timer(ctx);
    }

    /// Escalates every breach that has survived two repair-log TTLs with
    /// its sub-floor gap still open: the span is beyond NACK-repair reach
    /// group-wide, so the last advertiser becomes the snapshot donor. Runs
    /// on the repair tick, not on digest arrival — by the time a breach
    /// ages out, the stream's logs may have drained group-wide and digests
    /// for it stopped entirely.
    fn escalate_stale_breaches(&mut self, now: u64, ctx: &mut EventContext<'_>) {
        let grace = self.repair_log_ttl_ms.saturating_mul(2);
        let mut due: Vec<(StreamKey, u64, NodeId)> = self
            .floor_breaches
            .iter()
            .filter(|(_, (since, _, _))| now.saturating_sub(*since) >= grace)
            .map(|(key, (_, lo, donor))| (*key, *lo, *donor))
            .collect();
        // The map iterates in hash order; escalation must not.
        due.sort_unstable_by_key(|(key, ..)| (key.0 .0, key.1));
        for (key, lo, donor) in due {
            self.floor_breaches.remove(&key);
            let still_open = self
                .delivered
                .get(&key)
                .map_or(lo > 1, |tracker| tracker.floor + 1 < lo);
            if still_open {
                self.on_repair_floor(
                    donor,
                    RepairFloorBody {
                        origin: key.0,
                        inc: key.1,
                        floor: lo,
                    },
                    ctx,
                );
            }
        }
    }

    /// A peer's digest arrived: refill its push credit from the piggybacked
    /// grant, then NACK-pull the gaps it can serve, within the per-interval
    /// budget.
    fn on_repair_digest(&mut self, from: NodeId, digest: RepairDigest, ctx: &mut EventContext<'_>) {
        if !self.repair_enabled() {
            return;
        }
        // A digest from outside the installed view (an expelled member, a
        // stale incarnation) gets no pull: answering would re-open a repair
        // conversation with a peer the view agreement removed.
        if !self.member_set.contains(&from) {
            return;
        }
        if digest.credit > 0 && self.credit_enabled() {
            self.credits.insert(from, digest.credit);
            if self
                .outbox
                .get(&from)
                .is_some_and(|queue| !queue.is_empty())
            {
                self.arm_flush_timer(ctx);
            }
        }
        if self.pulls_this_interval >= self.repair_pull_budget {
            return;
        }
        let local = ctx.node_id();
        let mut wants: Vec<(NodeId, u64, Vec<u64>)> = Vec::new();
        let mut total = 0usize;
        for entry in &digest.entries {
            if entry.origin == local || entry.lo > entry.hi || total >= self.repair_window {
                continue;
            }
            // The advertised span starts above this node's contiguous
            // delivery floor: the sender's log has evicted everything below
            // `lo`, so this sender can never close that gap. Another peer
            // whose copies arrived later may still serve it (log age runs
            // from arrival, not origination), so a single sighting is not
            // proof of group-wide eviction — the breach is recorded here
            // and the repair tick escalates it only once it has survived
            // two repair-log TTLs with the gap still open. Two TTLs, not
            // one: an overload burst of TTL length leaves a backlog that
            // late retention can still repair, and escalating the whole
            // group into snapshot transfers at once is the heavier failure.
            let key = (entry.origin, entry.inc);
            let evicted_below = match self.delivered.get(&key) {
                Some(tracker) => tracker.floor + 1 < entry.lo,
                None => entry.lo > 1,
            };
            if evicted_below {
                let now = ctx.now_ms();
                let breach = self
                    .floor_breaches
                    .entry(key)
                    .or_insert((now, entry.lo, from));
                breach.1 = breach.1.max(entry.lo);
                breach.2 = from;
            } else {
                self.floor_breaches.remove(&key);
            }
            // Query only — a digest must never create (or displace) a
            // delivery record. An unknown stream is missing in its
            // entirety within the advertised span.
            let mut missing = Vec::new();
            match self.delivered.get(&(entry.origin, entry.inc)) {
                Some(tracker) => {
                    tracker.missing_in(entry.lo, entry.hi, self.repair_window - total, &mut missing)
                }
                None => {
                    let limit = self.repair_window - total;
                    missing.extend((entry.lo..=entry.hi).take(limit));
                }
            }
            if !missing.is_empty() {
                total += missing.len();
                wants.push((entry.origin, entry.inc, missing));
            }
        }
        if wants.is_empty() {
            return;
        }
        self.pulls_this_interval += 1;
        self.stats.repair_pulls += 1;
        self.stats.repair_pulled_seqs += total as u64;
        let mut message = Message::new();
        message.push(&RepairPull { wants });
        ctx.dispatch(Event::down(GossipRepairPull::new(
            local,
            Dest::Node(from),
            message,
        )));
    }

    /// A peer pulls gaps: serve them from the repair log. Wants older than
    /// the log's floor that this node once delivered are answered with a
    /// [`GossipRepairFloor`] instead — NACK repair can never close them, so
    /// the puller escalates to a snapshot catch-up.
    fn on_repair_pull(&mut self, from: NodeId, pull: RepairPull, ctx: &mut EventContext<'_>) {
        // Serve log entries only to current view members — an expelled peer
        // re-syncs through the recovery layer's state transfer, not through
        // the repair path.
        if !self.member_set.contains(&from) {
            return;
        }
        let local = ctx.node_id();
        // A malformed or adversarial pull cannot make the node stream more
        // than twice the advertised window per pull…
        let mut budget = self.repair_window * 2;
        // …nor more than four windows per repair interval across all pulls
        // (a greedy or corrupt puller cannot amplify this node's send rate).
        let interval_cap = self.repair_window * 4;
        for (origin, inc, seqs) in pull.wants {
            let stream = self.log.stream(&(origin, inc));
            let servable_floor = stream.and_then(|stream| stream.keys().next().copied());
            let delivered_floor = self
                .delivered
                .get(&(origin, inc))
                .map(|tracker| tracker.floor)
                .unwrap_or(0);
            // Retention fall-through: a wanted seq this node delivered but
            // has already evicted from its log can never be NACK-served —
            // answer with the floor so the puller stops asking and
            // escalates to the snapshot catch-up path.
            let floored = seqs
                .iter()
                .any(|seq| *seq <= delivered_floor && servable_floor.is_none_or(|lo| *seq < lo));
            if floored {
                let floor = servable_floor.unwrap_or(u64::MAX).min(delivered_floor + 1);
                let mut message = Message::new();
                message.push(&RepairFloorBody { origin, inc, floor });
                ctx.dispatch(Event::down(GossipRepairFloor::new(
                    local,
                    Dest::Node(from),
                    message,
                )));
            }
            let Some(stream) = stream else {
                continue;
            };
            for seq in seqs {
                if budget == 0 {
                    return;
                }
                if self.pushes_this_interval >= interval_cap {
                    self.stats.rate_limited_pushes += 1;
                    return;
                }
                let Some(original) = stream.get(&seq) else {
                    continue;
                };
                budget -= 1;
                self.pushes_this_interval += 1;
                self.stats.repair_pushes += 1;
                let mut message = original.clone();
                message.push(&RepairPushHeader { origin, inc, seq });
                ctx.dispatch(Event::down(GossipRepairPush::new(
                    local,
                    Dest::Node(from),
                    message,
                )));
            }
        }
    }

    /// A responder's log floored one of this node's pulls: the missed span
    /// is gone from NACK-repair reach. Abandon it in the delivery tracker
    /// (late copies must not re-deliver, pulls must stop asking) and ask the
    /// recovery layer above for a targeted state-section pull against the
    /// responder — snapshot catch-up without a view change.
    fn on_repair_floor(&mut self, from: NodeId, body: RepairFloorBody, ctx: &mut EventContext<'_>) {
        if !self.repair_enabled() || !self.member_set.contains(&from) {
            return;
        }
        if body.floor == 0 {
            return;
        }
        let tracker = self.delivered.entry((body.origin, body.inc)).or_default();
        if tracker.floor + 1 >= body.floor {
            // Nothing below the floor is missing here: either a stale
            // answer or a duplicate — no escalation.
            return;
        }
        tracker.fast_forward(body.floor - 1);
        self.stats.floor_escalations += 1;
        ctx.dispatch(Event::up(CatchupRequest { donor: from }));
    }

    /// A pulled message arrived: deliver it upward unless it is a late
    /// duplicate.
    fn on_repair_push(
        &mut self,
        header: RepairPushHeader,
        original: Message,
        ctx: &mut EventContext<'_>,
    ) {
        let now = ctx.now_ms();
        let local = ctx.node_id();
        let id = (header.origin, header.inc, header.seq);
        self.remember(id, now);
        if !self.record_delivered(header.origin, header.inc, header.seq) {
            // Already delivered — possibly long ago, with the seen-set entry
            // evicted since. The tracker is what prevents the re-delivery.
            self.stats.late_duplicates += 1;
            return;
        }
        self.log_store(
            (header.origin, header.inc),
            header.seq,
            original.clone(),
            now,
        );
        self.stats.repaired_deliveries += 1;
        ctx.dispatch(Event::up(DataEvent::new(
            header.origin,
            Dest::Node(local),
            original,
        )));
    }
}

impl Session for GossipSession {
    fn layer_name(&self) -> &str {
        GOSSIP_LAYER
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            self.ensure_inc(ctx);
            if self.repair_enabled() {
                self.arm_repair_timer(ctx);
            }
            ctx.forward(event);
            return;
        }

        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == GOSSIP_LAYER {
                if timer.tag == REPAIR_TAG && self.repair_timer == Some(timer.timer_id) {
                    self.repair_timer = None;
                    self.on_repair_timer(ctx);
                } else if timer.tag == FLUSH_TAG && self.flush_timer == Some(timer.timer_id) {
                    self.flush_timer = None;
                    self.flush_outboxes(ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }

        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            self.member_set = self.members.iter().copied().collect();
            // Per-peer backpressure state follows the membership: outboxes,
            // credits and grants of expelled peers are dropped.
            let member_set = &self.member_set;
            self.outbox.retain(|peer, _| member_set.contains(peer));
            self.credits.retain(|peer, _| member_set.contains(peer));
            self.granted.retain(|peer, _| member_set.contains(peer));
            ctx.forward(event);
            return;
        }

        if event.is::<GossipRepairDigest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(digest) = event.get_mut::<GossipRepairDigest>() else {
                return;
            };
            let from = digest.header.source;
            let Ok(body) = digest.message.pop::<RepairDigest>() else {
                return;
            };
            self.on_repair_digest(from, body, ctx);
            return;
        }

        if event.is::<GossipRepairPull>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(pull) = event.get_mut::<GossipRepairPull>() else {
                return;
            };
            let from = pull.header.source;
            let Ok(body) = pull.message.pop::<RepairPull>() else {
                return;
            };
            self.on_repair_pull(from, body, ctx);
            return;
        }

        if event.is::<GossipRepairPush>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(push) = event.get_mut::<GossipRepairPush>() else {
                return;
            };
            let Ok(header) = push.message.pop::<RepairPushHeader>() else {
                return;
            };
            let original = push.message.clone();
            self.on_repair_push(header, original, ctx);
            return;
        }

        if event.is::<GossipRepairFloor>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(floor) = event.get_mut::<GossipRepairFloor>() else {
                return;
            };
            let from = floor.header.source;
            let Ok(body) = floor.message.pop::<RepairFloorBody>() else {
                return;
            };
            self.on_repair_floor(from, body, ctx);
            return;
        }

        if event.is::<GossipBatch>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(batch) = event.get_mut::<GossipBatch>() else {
                return;
            };
            let from = batch.header.source;
            let Ok(body) = batch.message.pop::<GossipBatchBody>() else {
                return;
            };
            self.on_batch(from, body, ctx);
            return;
        }

        match event.direction {
            Direction::Down => {
                let local = ctx.node_id();
                if let Some(data) = event.get_mut::<DataEvent>() {
                    if data.header.dest == Dest::Group {
                        self.ensure_inc(ctx);
                        self.next_seq += 1;
                        let header = GossipHeader {
                            origin: data.header.source,
                            inc: self.inc,
                            seq: self.next_seq,
                            ttl: self.ttl,
                        };
                        let now = ctx.now_ms();
                        // Log the pre-header message (what receivers deliver)
                        // so the origin itself can serve repair pulls, and
                        // record the own send as delivered so the node never
                        // pulls its own messages.
                        let original = data.message.clone();
                        self.remember((header.origin, header.inc, header.seq), now);
                        self.record_delivered(header.origin, header.inc, header.seq);
                        self.log_store(
                            (header.origin, header.inc),
                            header.seq,
                            original.clone(),
                            now,
                        );
                        let targets = self.random_targets(&[local], ctx);
                        if self.aggregating() {
                            // Batched push path: the send is deferred into
                            // the per-peer outboxes and leaves this instant
                            // as aggregated packets, credit permitting.
                            for target in targets {
                                self.enqueue_push(target, header, original.clone(), ctx);
                            }
                            return;
                        }
                        data.message.push(&header);
                        event
                            .get_mut::<DataEvent>()
                            .expect("checked above")
                            .header
                            .dest = Dest::Nodes(targets);
                        ctx.forward(event);
                        return;
                    }
                    data.message.push(&GossipHeader {
                        origin: data.header.source,
                        inc: 0,
                        seq: 0,
                        ttl: 0,
                    });
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let local = ctx.node_id();
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<GossipHeader>() else {
                    return;
                };
                let now = ctx.now_ms();
                if header.seq != 0 {
                    if !self.remember((header.origin, header.inc, header.seq), now) {
                        self.stats.duplicates += 1;
                        return;
                    }
                    if !self.record_delivered(header.origin, header.inc, header.seq) {
                        // The seen-set entry was evicted but the delivery
                        // tracker still knows the message: suppress the late
                        // duplicate instead of re-delivering it.
                        self.stats.late_duplicates += 1;
                        return;
                    }
                    self.log_store(
                        (header.origin, header.inc),
                        header.seq,
                        data.message.clone(),
                        now,
                    );
                }
                if header.seq != 0 && header.ttl > 0 {
                    let relay = GossipHeader {
                        origin: header.origin,
                        inc: header.inc,
                        seq: header.seq,
                        ttl: header.ttl - 1,
                    };
                    let targets = self.random_targets(&[local, header.origin], ctx);
                    if !targets.is_empty() {
                        self.stats.forwarded += 1;
                        if self.aggregating() {
                            for target in targets {
                                self.enqueue_push(target, relay, data.message.clone(), ctx);
                            }
                        } else {
                            let mut forwarded_message = data.message.clone();
                            forwarded_message.push(&relay);
                            ctx.dispatch(Event::down(DataEvent::new(
                                header.origin,
                                Dest::Nodes(targets),
                                forwarded_message,
                            )));
                        }
                    }
                }
                data.header.source = header.origin;
                ctx.forward(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::config::{ChannelConfig, LayerSpec};
    use morpheus_appia::platform::{InPacket, PacketDest, TestPlatform};
    use morpheus_appia::testing::Harness;
    use morpheus_appia::{Kernel, Message};

    use super::*;
    use crate::repair::DELIVERED_GAP_CAP;
    use crate::suite::register_suite;

    fn gossip_config(members: &[u32], fanout: usize, ttl: u32) -> ChannelConfig {
        let members_param = members
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",");
        ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("gossip")
                    .with_param("members", members_param)
                    .with_param("fanout", fanout.to_string())
                    .with_param("ttl", ttl.to_string()),
            )
            .with_layer(LayerSpec::new("app"))
    }

    fn gossip_params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn test_session(members: &[u32]) -> GossipSession {
        // The boxed session exposes itself through the downcast hook the
        // node runtime uses to read repair statistics.
        let boxed = GossipLayer.create_session(&gossip_params(members));
        let any = boxed.as_any().expect("gossip sessions expose themselves");
        assert!(any.downcast_ref::<GossipSession>().is_some());
        // Same construction site as the layer, so tests never diverge from
        // the real parameter clamping.
        GossipSession::from_params(&gossip_params(members))
    }

    #[test]
    fn group_send_pushes_to_fanout_targets() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..20).collect();
        let id = kernel
            .create_channel(&gossip_config(&members, 4, 3), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 4);
        assert!(sent
            .iter()
            .all(|p| matches!(p.dest, PacketDest::Node(n) if n != NodeId(0))));
    }

    #[test]
    fn small_groups_push_to_everyone() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let id = kernel
            .create_channel(&gossip_config(&[0, 1, 2], 5, 3), &mut platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(platform.take_sent().len(), 2);
    }

    #[test]
    fn receivers_deliver_once_and_forward_while_ttl_lasts() {
        let mut sender = Kernel::new();
        register_suite(&mut sender);
        let mut sender_platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..10).collect();
        let sender_channel = sender
            .create_channel(&gossip_config(&members, 3, 2), &mut sender_platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(
            NodeId(0),
            Message::with_payload(&b"g"[..]),
        ));
        sender.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();
        assert!(!sent.is_empty());

        // Deliver the same packet to node 1 twice: first delivery forwards,
        // second is suppressed as a duplicate.
        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(&gossip_config(&members, 3, 2), &mut receiver_platform)
            .unwrap();

        let data_packet = sent
            .iter()
            .find(|p| p.class == morpheus_appia::PacketClass::Data)
            .expect("push-phase packet");
        let packet = InPacket {
            from: NodeId(0),
            to: NodeId(1),
            class: data_packet.class,
            channel: data_packet.channel.clone(),
            payload: data_packet.payload.clone(),
        };
        receiver
            .deliver_packet(packet.clone(), &mut receiver_platform)
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
        receiver_platform.take_deliveries();
        let forwarded = receiver_platform.take_sent();
        assert!(!forwarded.is_empty(), "first reception is forwarded onward");

        receiver
            .deliver_packet(packet, &mut receiver_platform)
            .unwrap();
        assert_eq!(
            receiver_platform.data_delivery_count(),
            0,
            "duplicate is suppressed"
        );
        assert!(receiver_platform.take_sent().is_empty());
    }

    #[test]
    fn duplicate_suppression_memory_is_capped_by_ring_and_ttl() {
        let mut gossip = test_session(&[0, 1, 2]);
        gossip.seen_cap = 16;
        gossip.seen_ttl_ms = 1000;

        // The ring caps the set no matter how many distinct ids arrive.
        for seq in 0..100u64 {
            assert!(gossip.remember((NodeId(1), 0, seq), 0));
        }
        assert_eq!(gossip.seen_len(), 16, "ring eviction bounds the memory");
        assert!(
            gossip.remember((NodeId(1), 0, 5), 10),
            "an id evicted by the ring is (correctly) treated as new again"
        );
        assert!(
            !gossip.remember((NodeId(1), 0, 99), 10),
            "recent ids suppress"
        );

        // Age-based expiry clears the set even without capacity pressure.
        assert!(!gossip.remember((NodeId(1), 0, 99), 999));
        assert!(
            gossip.remember((NodeId(1), 0, 99), 1010),
            "entries older than the TTL are evicted"
        );
        assert!(gossip.seen_len() <= 16);
    }

    #[test]
    fn ttl_zero_messages_are_not_forwarded() {
        let mut sender = Kernel::new();
        register_suite(&mut sender);
        let mut sender_platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..6).collect();
        let sender_channel = sender
            .create_channel(&gossip_config(&members, 2, 0), &mut sender_platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        sender.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();
        let data_packet = sent
            .iter()
            .find(|p| p.class == morpheus_appia::PacketClass::Data)
            .expect("push-phase packet");

        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(&gossip_config(&members, 2, 0), &mut receiver_platform)
            .unwrap();
        receiver
            .deliver_packet(
                InPacket {
                    from: NodeId(0),
                    to: NodeId(1),
                    class: data_packet.class,
                    channel: data_packet.channel.clone(),
                    payload: data_packet.payload.clone(),
                },
                &mut receiver_platform,
            )
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
        assert!(receiver_platform
            .take_sent()
            .iter()
            .all(|p| p.class != morpheus_appia::PacketClass::Data));
    }

    #[test]
    fn delivery_tracker_advances_its_floor_and_stays_bounded() {
        let mut delivered = Delivered::default();
        assert!(delivered.record(1));
        assert!(delivered.record(2));
        assert!(!delivered.record(2), "duplicates rejected");
        assert_eq!(delivered.floor, 2);
        assert!(delivered.record(5));
        assert_eq!(delivered.floor, 2, "gap at 3-4 holds the floor");
        let mut missing = Vec::new();
        delivered.missing_in(1, 6, 16, &mut missing);
        assert_eq!(missing, vec![3, 4, 6]);
        assert!(delivered.record(3));
        assert!(delivered.record(4));
        assert_eq!(delivered.floor, 5, "contiguous run folds into the floor");

        // Pathological gaps are abandoned once the sparse set exceeds the
        // cap, keeping memory bounded.
        for seq in 0..2 * DELIVERED_GAP_CAP as u64 {
            delivered.record(100 + 2 * seq);
        }
        assert!(delivered.above.len() <= DELIVERED_GAP_CAP);
    }

    #[test]
    fn repair_tick_gossips_a_digest_of_the_log() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..8).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_interval_ms".into(), "500".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // A group send seeds the log.
        gossip.run_down(
            Event::down(DataEvent::to_group(
                NodeId(0),
                Message::with_payload(&b"m1"[..]),
            )),
            &mut platform,
        );
        platform.advance(500);
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        let down = gossip.drain_down();
        let digests: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipRepairDigest>())
            .collect();
        assert_eq!(digests.len(), 1, "one digest per repair tick");
        let digest = digests[0].get::<GossipRepairDigest>().unwrap();
        let body = digest.message.clone().pop::<RepairDigest>().unwrap();
        assert_eq!(body.entries.len(), 1);
        assert_eq!(body.entries[0].origin, NodeId(0));
        assert_eq!((body.entries[0].lo, body.entries[0].hi), (1, 1));
        let Dest::Nodes(targets) = &digest.header.dest else {
            panic!("digests address a sampled node list");
        };
        assert!(targets.len() <= 3 && !targets.is_empty());
    }

    #[test]
    fn a_digest_with_gaps_triggers_a_nack_pull_and_the_push_repairs_it() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // The peer advertises seqs 1..=3 of origin 0; nothing was delivered
        // here yet, so all three are missing.
        let mut message = Message::new();
        message.push(&RepairDigest {
            credit: 0,
            entries: vec![RepairRange {
                origin: NodeId(0),
                inc: 7,
                lo: 1,
                hi: 3,
            }],
        });
        gossip.run_up(
            Event::up(GossipRepairDigest::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );
        let down = gossip.drain_down();
        let pulls: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipRepairPull>())
            .collect();
        assert_eq!(pulls.len(), 1);
        let pull = pulls[0].get::<GossipRepairPull>().unwrap();
        assert_eq!(pull.header.dest, Dest::Node(NodeId(2)));
        let body = pull.message.clone().pop::<RepairPull>().unwrap();
        assert_eq!(body.wants, vec![(NodeId(0), 7, vec![1, 2, 3])]);

        // The peer answers with one of the messages: it is delivered upward
        // exactly once.
        let mut push = Message::with_payload(&b"repaired"[..]);
        push.push(&RepairPushHeader {
            origin: NodeId(0),
            inc: 7,
            seq: 2,
        });
        let up = gossip.run_up(
            Event::up(GossipRepairPush::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                push.clone(),
            )),
            &mut platform,
        );
        let delivered: Vec<&Event> = up.iter().filter(|event| event.is::<DataEvent>()).collect();
        assert_eq!(delivered.len(), 1, "the repaired message is delivered");
        let data = delivered[0].get::<DataEvent>().unwrap();
        assert_eq!(data.header.source, NodeId(0), "origin restored");
        assert_eq!(data.message.payload().as_ref(), b"repaired");

        // A duplicate push of the same message is suppressed.
        let up = gossip.run_up(
            Event::up(GossipRepairPush::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                push,
            )),
            &mut platform,
        );
        assert!(up.iter().all(|event| !event.is::<DataEvent>()));
    }

    #[test]
    fn pulls_are_rate_limited_per_interval() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..8).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_pull_budget".into(), "1".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        let digest_from = |from: u32, hi: u64| {
            let mut message = Message::new();
            message.push(&RepairDigest {
                credit: 0,
                entries: vec![RepairRange {
                    origin: NodeId(0),
                    inc: 1,
                    lo: 1,
                    hi,
                }],
            });
            Event::up(GossipRepairDigest::new(
                NodeId(from),
                Dest::Node(NodeId(1)),
                message,
            ))
        };

        gossip.run_up(digest_from(2, 3), &mut platform);
        assert_eq!(
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPull>())
                .count(),
            1
        );
        // The budget for this interval is spent: a second digest is ignored.
        gossip.run_up(digest_from(3, 3), &mut platform);
        assert_eq!(
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPull>())
                .count(),
            0,
            "per-interval pull budget enforced"
        );
    }

    #[test]
    fn a_member_serves_pulls_from_its_log() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // Two group sends populate the log (inc = now = 0 in tests).
        for text in [&b"m1"[..], &b"m2"[..]] {
            gossip.run_down(
                Event::down(DataEvent::to_group(NodeId(0), Message::with_payload(text))),
                &mut platform,
            );
        }
        gossip.drain_down();

        let mut message = Message::new();
        message.push(&RepairPull {
            wants: vec![(NodeId(0), 0, vec![1, 2, 9])],
        });
        gossip.run_up(
            Event::up(GossipRepairPull::new(
                NodeId(2),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        let down = gossip.drain_down();
        let pushes: Vec<(RepairPushHeader, Message)> = down
            .iter()
            .filter_map(|event| {
                event.get::<GossipRepairPush>().map(|push| {
                    let mut message = push.message.clone();
                    let header = message.pop::<RepairPushHeader>().unwrap();
                    (header, message)
                })
            })
            .collect();
        assert_eq!(pushes.len(), 2, "held seqs served, unknown seq skipped");
        assert_eq!(pushes[0].0.seq, 1);
        assert_eq!(pushes[0].1.payload().as_ref(), b"m1");
        assert_eq!(pushes[1].0.seq, 2);
    }

    #[test]
    fn seen_set_eviction_does_not_cause_redelivery_on_late_pulls() {
        // The regression the repair pass must not introduce: a message whose
        // seen-set entry was evicted (ring pressure) but that is still in
        // the repair log / delivery tracker must NOT reach the application
        // again when a late NACK pull re-streams it.
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("seen_cap".into(), "16".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // Deliver (origin 0, inc 1, seq 1) through the normal push phase.
        let deliver = |seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc: 1,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        let up = gossip.run_up(deliver(1), &mut platform);
        assert_eq!(up.iter().filter(|event| event.is::<DataEvent>()).count(), 1);

        // Flood the seen set far past its cap so (0, 1, 1) is evicted.
        for seq in 100..200u64 {
            gossip.run_up(deliver(seq), &mut platform);
        }
        gossip.drain_down();

        // A late repair push re-streams seq 1: the delivery tracker — which
        // is never capacity-evicted — suppresses the re-delivery.
        let mut push = Message::with_payload(&b"x"[..]);
        push.push(&RepairPushHeader {
            origin: NodeId(0),
            inc: 1,
            seq: 1,
        });
        let up = gossip.run_up(
            Event::up(GossipRepairPush::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                push,
            )),
            &mut platform,
        );
        assert!(
            up.iter().all(|event| !event.is::<DataEvent>()),
            "an already-delivered message must never be re-delivered"
        );

        // The same holds on the push-phase path: re-receiving the evicted
        // message as a plain gossip forward is suppressed by the tracker.
        let up = gossip.run_up(deliver(1), &mut platform);
        assert!(up.iter().all(|event| !event.is::<DataEvent>()));
    }

    #[test]
    fn streams_of_different_incarnations_are_tracked_separately() {
        // A node whose gossip session was rebuilt (restart, stack
        // redeployment) restarts its seq space under a new incarnation; its
        // fresh seq 1 must not be mistaken for a duplicate of the old
        // stream's seq 1.
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        let deliver = |inc: u64, seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        let first = gossip.run_up(deliver(1, 1), &mut platform);
        assert_eq!(
            first.iter().filter(|event| event.is::<DataEvent>()).count(),
            1
        );
        let second = gossip.run_up(deliver(2, 1), &mut platform);
        assert_eq!(
            second
                .iter()
                .filter(|event| event.is::<DataEvent>())
                .count(),
            1,
            "same seq under a fresh incarnation is a new message"
        );
    }

    #[test]
    fn repair_can_be_disabled_entirely() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_interval_ms".into(), "0".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);
        assert!(
            platform.timers.is_empty(),
            "no repair timer when the pass is disabled"
        );
        gossip.run_down(
            Event::down(DataEvent::to_group(
                NodeId(0),
                Message::with_payload(&b"m"[..]),
            )),
            &mut platform,
        );
        // No log is kept, so a pull finds nothing.
        let mut message = Message::new();
        message.push(&RepairPull {
            wants: vec![(NodeId(0), 0, vec![1])],
        });
        gossip.run_up(
            Event::up(GossipRepairPull::new(
                NodeId(2),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        assert!(gossip
            .drain_down()
            .iter()
            .all(|event| !event.is::<GossipRepairPush>()));
    }
    #[test]
    fn repair_traffic_is_not_sent_to_expelled_members() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // A group send populates the repair log, then node 3 is expelled.
        gossip.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"m1"[..]),
            )),
            &mut platform,
        );
        gossip.drain_down();
        gossip.run_down(
            Event::down(ViewInstall {
                view: crate::view::View::new(2, vec![NodeId(0), NodeId(1), NodeId(2)]),
            }),
            &mut platform,
        );
        gossip.drain_down();

        // The expelled node's digest gets no NACK pull back...
        let mut message = Message::new();
        message.push(&RepairDigest {
            credit: 0,
            entries: vec![RepairRange {
                origin: NodeId(0),
                inc: 7,
                lo: 1,
                hi: 3,
            }],
        });
        gossip.run_up(
            Event::up(GossipRepairDigest::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );
        assert!(
            gossip
                .drain_down()
                .iter()
                .all(|event| !event.is::<GossipRepairPull>()),
            "no pull goes back to an expelled digest sender"
        );

        // ...and its pull is not served from the log, while a live member's
        // identical pull is.
        let pull_from = |from: u32| {
            let mut message = Message::new();
            message.push(&RepairPull {
                wants: vec![(NodeId(1), 0, vec![1])],
            });
            Event::up(GossipRepairPull::new(
                NodeId(from),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        gossip.run_up(pull_from(3), &mut platform);
        assert!(
            gossip
                .drain_down()
                .iter()
                .all(|event| !event.is::<GossipRepairPush>()),
            "the repair log is not served to expelled members"
        );
        gossip.run_up(pull_from(2), &mut platform);
        assert_eq!(
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPush>())
                .count(),
            1,
            "a current member's identical pull is served"
        );
    }
    #[test]
    fn sustained_churn_keeps_delivery_and_repair_memory_bounded() {
        let mut gossip = test_session(&[0, 1, 2, 3]);
        gossip.seen_cap = 64;
        gossip.repair_log_cap = 128;
        gossip.repair_interval_ms = 500;

        // A flapping member (node 3) rejoins fifty times; every incarnation
        // opens a fresh stream whose burst is remembered, tracked and
        // logged. All three memories must stay inside their bounds at every
        // step of the churn, not just at the end.
        for incarnation in 0..50u64 {
            let now = incarnation * 1_000;
            for seq in 1..=20u64 {
                gossip.remember((NodeId(3), incarnation, seq), now);
                assert!(gossip.record_delivered(NodeId(3), incarnation, seq));
                gossip.log_store((NodeId(3), incarnation), seq, Message::new(), now);
            }
            gossip.evict_log(now);
            assert!(gossip.seen_len() <= 64, "seen ring bound");
            assert!(gossip.log_len() <= 128, "repair log cap bound");
            let tracked = gossip
                .delivered
                .keys()
                .filter(|(node, _)| *node == NodeId(3))
                .count();
            assert!(
                tracked <= GossipSession::TRACKED_INCS_PER_ORIGIN,
                "delivery trackers per origin stay capped under churn \
                 ({tracked} incarnations tracked)"
            );
        }

        // Only the newest incarnations survive: the tracker never forgets a
        // stream the repair logs can still serve (all retained incs are
        // recent), and the TTL drains the log once the churn stops.
        let newest: Vec<u64> = gossip
            .delivered
            .keys()
            .filter(|(node, _)| *node == NodeId(3))
            .map(|(_, inc)| *inc)
            .collect();
        assert!(
            newest.iter().all(|inc| *inc >= 46),
            "oldest incs pruned first"
        );
        gossip.evict_log(50_000 + gossip.repair_log_ttl_ms + 1);
        assert_eq!(gossip.log_len(), 0, "TTL drains the log once churn stops");
    }

    #[test]
    fn same_instant_pushes_leave_as_aggregated_batches() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("batch_max".into(), "4".into());
        params.insert("repair_interval_ms".into(), "0".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        for text in [&b"m1"[..], &b"m2"[..]] {
            gossip.run_down(
                Event::down(DataEvent::to_group(NodeId(0), Message::with_payload(text))),
                &mut platform,
            );
        }
        assert!(
            gossip
                .drain_down()
                .iter()
                .all(|event| !event.is::<DataEvent>()),
            "pushes are deferred to the flush tick"
        );
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        assert_eq!(timers.len(), 1, "one zero-delay flush timer armed");
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        let down = gossip.drain_down();
        let batches: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipBatch>())
            .collect();
        // fanout 3, members 4: every peer receives both sends in one packet.
        assert_eq!(batches.len(), 3, "one aggregated packet per peer");
        for event in &batches {
            let batch = event.get::<GossipBatch>().unwrap();
            let body = batch.message.clone().pop::<GossipBatchBody>().unwrap();
            assert_eq!(body.entries.len(), 2, "same-instant sends aggregated");
            assert_eq!(body.entries[0].0.seq, 1);
            assert_eq!(body.entries[1].0.seq, 2);
        }
    }

    #[test]
    fn batch_receivers_unbatch_dedup_and_relay() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..8).collect();
        let mut params = gossip_params(&members);
        params.insert("batch_max".into(), "4".into());
        params.insert("repair_interval_ms".into(), "0".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        let entry = |seq: u64, ttl: u32| {
            (
                GossipHeader {
                    origin: NodeId(0),
                    inc: 5,
                    seq,
                    ttl,
                },
                Message::with_payload(&b"x"[..]),
            )
        };
        let make = |entries: Vec<(GossipHeader, Message)>| {
            let mut message = Message::new();
            message.push(&GossipBatchBody { entries });
            Event::up(GossipBatch::new(NodeId(3), Dest::Node(NodeId(1)), message))
        };

        let up = gossip.run_up(make(vec![entry(1, 1), entry(2, 0)]), &mut platform);
        assert_eq!(
            up.iter().filter(|event| event.is::<DataEvent>()).count(),
            2,
            "every batched entry is delivered upward"
        );
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        assert!(
            gossip
                .drain_down()
                .iter()
                .any(|event| event.is::<GossipBatch>()),
            "the ttl-bearing entry is relayed onward as a batch"
        );

        // An identical batch is fully suppressed: no deliveries, no relays.
        let up = gossip.run_up(make(vec![entry(1, 1), entry(2, 0)]), &mut platform);
        assert!(up.iter().all(|event| !event.is::<DataEvent>()));
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        assert!(gossip
            .drain_down()
            .iter()
            .all(|event| !event.is::<GossipBatch>()));
    }

    #[test]
    fn credit_exhaustion_defers_pushes_until_a_grant_refills() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members = [0u32, 1];
        let mut params = gossip_params(&members);
        params.insert("credit_window".into(), "2".into());
        params.insert("batch_max".into(), "4".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        for text in [&b"m1"[..], &b"m2"[..], &b"m3"[..]] {
            gossip.run_down(
                Event::down(DataEvent::to_group(NodeId(0), Message::with_payload(text))),
                &mut platform,
            );
        }
        // Fire only the zero-delay flush (the 1000 ms repair tick stays).
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (deadline, key) in timers {
            if deadline == 0 {
                gossip.fire_timer(key, &mut platform);
            }
        }
        let down = gossip.drain_down();
        let batches: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipBatch>())
            .collect();
        assert_eq!(batches.len(), 1);
        let body = batches[0]
            .get::<GossipBatch>()
            .unwrap()
            .message
            .clone()
            .pop::<GossipBatchBody>()
            .unwrap();
        assert_eq!(
            body.entries.len(),
            2,
            "the credit window caps what one flush may send"
        );

        // A grant digest from the peer refills the credit and re-arms the
        // flush, releasing the deferred push.
        let mut message = Message::new();
        message.push(&RepairDigest {
            credit: 2,
            entries: vec![],
        });
        gossip.run_up(
            Event::up(GossipRepairDigest::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        assert!(!timers.is_empty(), "the grant re-arms the flush timer");
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        let down = gossip.drain_down();
        let batches: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipBatch>())
            .collect();
        assert_eq!(batches.len(), 1, "the deferred push leaves after the grant");
        let body = batches[0]
            .get::<GossipBatch>()
            .unwrap()
            .message
            .clone()
            .pop::<GossipBatchBody>()
            .unwrap();
        assert_eq!(body.entries.len(), 1);
        assert_eq!(body.entries[0].0.seq, 3);
    }

    #[test]
    fn outbox_overflow_sheds_newest_and_stays_bounded() {
        let mut gossip = test_session(&[0, 1]);
        gossip.credit_window = 2;
        gossip.outbox_cap = 8;
        let header = |seq: u64| GossipHeader {
            origin: NodeId(0),
            inc: 1,
            seq,
            ttl: 2,
        };
        for seq in 1..=10u64 {
            gossip.outbox_enqueue(NodeId(1), header(seq), Message::new());
        }
        let queue = gossip.outbox.get(&NodeId(1)).unwrap();
        assert_eq!(queue.len(), 8, "the outbox never grows past its cap");
        assert_eq!(
            queue.front().unwrap().0.seq,
            1,
            "drop-newest keeps the oldest"
        );
        assert_eq!(queue.back().unwrap().0.seq, 8, "the newest pushes are shed");
        assert_eq!(gossip.stats.outbox_shed, 2);
    }

    #[test]
    fn pulls_below_the_log_floor_are_answered_with_a_repair_floor() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_interval_ms".into(), "100".into());
        params.insert("repair_log_ttl_ms".into(), "100".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // Deliver seqs 1..=6 of (origin 0, inc 1), then age them out of the
        // repair log: delivered knowledge survives, servability does not.
        let deliver = |seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc: 1,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        for seq in 1..=6u64 {
            gossip.run_up(deliver(seq), &mut platform);
        }
        platform.advance(150);
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        gossip.run_up(deliver(7), &mut platform);
        gossip.drain_down();

        // A pull for the evicted span gets a floor answer; the still-logged
        // seq is served normally alongside it.
        let mut message = Message::new();
        message.push(&RepairPull {
            wants: vec![(NodeId(0), 1, vec![1, 2, 7])],
        });
        gossip.run_up(
            Event::up(GossipRepairPull::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );
        let down = gossip.drain_down();
        let floors: Vec<RepairFloorBody> = down
            .iter()
            .filter_map(|event| {
                event
                    .get::<GossipRepairFloor>()
                    .map(|floor| floor.message.clone().pop::<RepairFloorBody>().unwrap())
            })
            .collect();
        assert_eq!(floors.len(), 1, "one floor answer per floored stream");
        assert_eq!(floors[0].origin, NodeId(0));
        assert_eq!(floors[0].inc, 1);
        assert_eq!(floors[0].floor, 7, "the log's floor is reported");
        assert_eq!(
            down.iter()
                .filter(|event| event.is::<GossipRepairPush>())
                .count(),
            1,
            "the still-servable want is pushed normally"
        );
    }

    #[test]
    fn a_repair_floor_fast_forwards_and_escalates_to_catchup() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // Seqs 1..=2 of (origin 0, inc 1) were delivered before the
        // partition; 3..=6 are gone from every reachable repair log.
        let deliver = |seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc: 1,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        gossip.run_up(deliver(1), &mut platform);
        gossip.run_up(deliver(2), &mut platform);
        gossip.drain_down();

        let floor_answer = || {
            let mut message = Message::new();
            message.push(&RepairFloorBody {
                origin: NodeId(0),
                inc: 1,
                floor: 7,
            });
            Event::up(GossipRepairFloor::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        let up = gossip.run_up(floor_answer(), &mut platform);
        let catchups: Vec<&Event> = up
            .iter()
            .filter(|event| event.is::<CatchupRequest>())
            .collect();
        assert_eq!(catchups.len(), 1, "the floor escalates to a catch-up");
        assert_eq!(
            catchups[0].get::<CatchupRequest>().unwrap().donor,
            NodeId(2),
            "the floor's sender becomes the snapshot donor"
        );

        // The abandoned span stops being pulled: a digest advertising it
        // finds nothing missing below the floor...
        let digest = |lo: u64, hi: u64| {
            let mut message = Message::new();
            message.push(&RepairDigest {
                credit: 0,
                entries: vec![RepairRange {
                    origin: NodeId(0),
                    inc: 1,
                    lo,
                    hi,
                }],
            });
            Event::up(GossipRepairDigest::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        gossip.run_up(digest(1, 6), &mut platform);
        assert!(
            gossip
                .drain_down()
                .iter()
                .all(|event| !event.is::<GossipRepairPull>()),
            "the fast-forwarded span is never pulled again"
        );
        // ...while newer seqs above the floor still repair normally.
        gossip.run_up(digest(1, 8), &mut platform);
        let down = gossip.drain_down();
        let pulls: Vec<RepairPull> = down
            .iter()
            .filter_map(|event| {
                event
                    .get::<GossipRepairPull>()
                    .map(|pull| pull.message.clone().pop::<RepairPull>().unwrap())
            })
            .collect();
        assert_eq!(pulls.len(), 1);
        assert_eq!(pulls[0].wants, vec![(NodeId(0), 1, vec![7, 8])]);

        // A duplicate floor answer does not re-escalate.
        let up = gossip.run_up(floor_answer(), &mut platform);
        assert!(up.iter().all(|event| !event.is::<CatchupRequest>()));
    }

    #[test]
    fn a_digest_advertising_an_evicted_span_escalates_without_a_pull_round_trip() {
        // A member that was cut off for longer than the repair-log TTL sees,
        // on reconnection, digests whose `lo` sits above its own delivery
        // floor. Pulling below `lo` is futile by construction — but a
        // single sighting may be transient (another peer's later-arrival
        // retention can still serve the span), so the breach must persist
        // for a full repair-log TTL before the digest becomes the floor
        // answer and escalates to a snapshot catch-up.
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_pull_budget".into(), "16".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // Seqs 1..=2 delivered before the cut; the advertiser's log now
        // starts at 9.
        let deliver = |seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc: 1,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        gossip.run_up(deliver(1), &mut platform);
        gossip.run_up(deliver(2), &mut platform);
        gossip.drain_down();

        let digest = |lo: u64, hi: u64| {
            let mut message = Message::new();
            message.push(&RepairDigest {
                credit: 0,
                entries: vec![RepairRange {
                    origin: NodeId(0),
                    inc: 1,
                    lo,
                    hi,
                }],
            });
            Event::up(GossipRepairDigest::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        // First sighting: the breach is recorded but nothing escalates —
        // the advertised span is still pulled normally.
        let up = gossip.run_up(digest(9, 10), &mut platform);
        assert!(
            up.iter().all(|event| !event.is::<CatchupRequest>()),
            "a fresh breach must not escalate immediately"
        );
        let pulls: Vec<RepairPull> = gossip
            .drain_down()
            .iter()
            .filter_map(|event| {
                event
                    .get::<GossipRepairPull>()
                    .map(|pull| pull.message.clone().pop::<RepairPull>().unwrap())
            })
            .collect();
        assert_eq!(pulls.len(), 1);
        assert_eq!(pulls[0].wants, vec![(NodeId(0), 1, vec![9, 10])]);

        // The breach survives two full repair-log TTLs with the gap still
        // open: the next repair tick escalates it — even though no further
        // digest for the stream ever arrives (its logs may have drained
        // group-wide by then).
        platform.advance(DEFAULT_REPAIR_LOG_TTL_MS * 2);
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        let up = gossip.drain_up();
        let catchups: Vec<&Event> = up
            .iter()
            .filter(|event| event.is::<CatchupRequest>())
            .collect();
        assert_eq!(catchups.len(), 1, "the aged breach triggers the catch-up");
        assert_eq!(
            catchups[0].get::<CatchupRequest>().unwrap().donor,
            NodeId(2),
            "the digest's sender becomes the snapshot donor"
        );

        // A repeat of the same digest does not re-escalate: the span was
        // fast-forwarded past.
        let up = gossip.run_up(digest(9, 10), &mut platform);
        assert!(up.iter().all(|event| !event.is::<CatchupRequest>()));

        // A digest whose span starts at the delivery floor (nothing evicted
        // from this node's point of view) never escalates.
        let up = gossip.run_up(digest(1, 12), &mut platform);
        assert!(up.iter().all(|event| !event.is::<CatchupRequest>()));
    }

    #[test]
    fn repair_push_responses_are_rate_limited_per_interval() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_window".into(), "2".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // Twenty logged messages of (origin 0, inc 1).
        let deliver = |seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc: 1,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        for seq in 1..=20u64 {
            gossip.run_up(deliver(seq), &mut platform);
        }
        gossip.drain_down();

        let pull = |seqs: Vec<u64>| {
            let mut message = Message::new();
            message.push(&RepairPull {
                wants: vec![(NodeId(0), 1, seqs)],
            });
            Event::up(GossipRepairPull::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        let pushes = |gossip: &mut Harness| {
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPush>())
                .count()
        };

        // Per-pull budget: 2 × window = 4 of the 6 asked-for seqs.
        gossip.run_up(pull((1..=6).collect()), &mut platform);
        assert_eq!(pushes(&mut gossip), 4, "per-pull budget of 2x window");
        // The interval cap (4 × window = 8) lets one more pull through...
        gossip.run_up(pull((7..=10).collect()), &mut platform);
        assert_eq!(pushes(&mut gossip), 4);
        // ...then cuts every further response until the next repair tick.
        gossip.run_up(pull(vec![11, 12]), &mut platform);
        assert_eq!(
            pushes(&mut gossip),
            0,
            "a greedy puller cannot amplify the responder's send rate"
        );

        platform.advance(1_000);
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        gossip.drain_down();
        gossip.run_up(pull(vec![11, 12]), &mut platform);
        assert_eq!(pushes(&mut gossip), 2, "the tick resets the push budget");
    }
}
