//! Epidemic (gossip) multicast for large, geographically distributed groups.
//!
//! The paper's motivation section points out that when "participants are in
//! large numbers and distributed geographically over a large-scale network,
//! it can be preferable to rely on epidemic protocols to implement the
//! multicast". This layer implements a push-based epidemic: a sender pushes
//! the message to `fanout` random members; every receiver that sees the
//! message for the first time delivers it and pushes it to another `fanout`
//! random members while the TTL lasts.

use std::collections::{HashSet, VecDeque};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::ViewInstall;
use crate::headers::GossipHeader;

/// Registered name of the gossip multicast layer.
pub const GOSSIP_LAYER: &str = "gossip";

/// Default cap on message identifiers remembered for duplicate suppression.
const DEFAULT_SEEN_CAP: usize = 65_536;

/// Default age after which a remembered identifier is evicted. Far beyond
/// any realistic propagation delay of an epidemic round, so eviction can
/// only re-admit a duplicate that stopped circulating long ago — while a
/// long-running chat no longer pins one entry per message ever seen.
const DEFAULT_SEEN_TTL_MS: u64 = 60_000;

/// Picks up to `limit` distinct members uniformly at random, excluding
/// `exclude` — the peer-sampling primitive shared by every gossip mechanism
/// (epidemic multicast, liveness-digest failure detection, context
/// anti-entropy). A partial Fisher-Yates driven by the platform's
/// deterministic RNG, so simulation runs stay reproducible.
pub fn sample_peers(
    members: &[NodeId],
    exclude: &[NodeId],
    limit: usize,
    ctx: &mut EventContext<'_>,
) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|member| !exclude.contains(member))
        .collect();
    if pool.len() <= limit {
        return pool;
    }
    for index in 0..limit {
        let remaining = pool.len() - index;
        let pick = index + (ctx.random_u64() % remaining as u64) as usize;
        pool.swap(index, pick);
    }
    pool.truncate(limit);
    pool
}

/// The epidemic multicast layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial membership;
/// * `fanout` — number of random targets per push (default 3);
/// * `ttl` — number of forwarding rounds a message survives (default 4);
/// * `seen_cap` — ring-buffer cap on the duplicate-suppression set
///   (default 65536);
/// * `seen_ttl_ms` — age-based eviction of suppression entries (default
///   60000 ms; `0` disables age eviction).
pub struct GossipLayer;

impl Layer for GossipLayer {
    fn name(&self) -> &str {
        GOSSIP_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>(), EventSpec::of::<ViewInstall>()]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["DataEvent"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(GossipSession {
            members: param_node_list(params, "members"),
            fanout: param_or(params, "fanout", 3usize).max(1),
            ttl: param_or(params, "ttl", 4u32),
            seen_cap: param_or(params, "seen_cap", DEFAULT_SEEN_CAP).max(16),
            seen_ttl_ms: param_or(params, "seen_ttl_ms", DEFAULT_SEEN_TTL_MS),
            next_seq: 0,
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            forwarded: 0,
            duplicates: 0,
        })
    }
}

/// Session state of the gossip layer.
#[derive(Debug)]
pub struct GossipSession {
    members: Vec<NodeId>,
    fanout: usize,
    ttl: u32,
    seen_cap: usize,
    seen_ttl_ms: u64,
    next_seq: u64,
    seen: HashSet<(NodeId, u64)>,
    /// Insertion-ordered `(id, remembered-at ms)` ring backing the eviction
    /// policy: bounded capacity plus age-based expiry, so the
    /// duplicate-suppression memory stays capped no matter how long the
    /// epidemic data path runs.
    seen_order: VecDeque<((NodeId, u64), u64)>,
    forwarded: u64,
    duplicates: u64,
}

impl GossipSession {
    /// Entries currently held for duplicate suppression.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    fn remember(&mut self, id: (NodeId, u64), now_ms: u64) -> bool {
        // Age-based expiry first (cheap: entries are insertion-ordered).
        if self.seen_ttl_ms > 0 {
            while let Some((oldest, at)) = self.seen_order.front().copied() {
                if now_ms.saturating_sub(at) < self.seen_ttl_ms {
                    break;
                }
                self.seen_order.pop_front();
                self.seen.remove(&oldest);
            }
        }
        if !self.seen.insert(id) {
            return false;
        }
        self.seen_order.push_back((id, now_ms));
        while self.seen_order.len() > self.seen_cap {
            if let Some((oldest, _)) = self.seen_order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        true
    }

    fn random_targets(&self, exclude: &[NodeId], ctx: &mut EventContext<'_>) -> Vec<NodeId> {
        sample_peers(&self.members, exclude, self.fanout, ctx)
    }
}

impl Session for GossipSession {
    fn layer_name(&self) -> &str {
        GOSSIP_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            ctx.forward(event);
            return;
        }

        match event.direction {
            Direction::Down => {
                let local = ctx.node_id();
                if let Some(data) = event.get_mut::<DataEvent>() {
                    if data.header.dest == Dest::Group {
                        self.next_seq += 1;
                        let header = GossipHeader {
                            origin: data.header.source,
                            seq: self.next_seq,
                            ttl: self.ttl,
                        };
                        let now = ctx.now_ms();
                        self.remember((header.origin, header.seq), now);
                        data.message.push(&header);
                        let targets = self.random_targets(&[local], ctx);
                        event
                            .get_mut::<DataEvent>()
                            .expect("checked above")
                            .header
                            .dest = Dest::Nodes(targets);
                        ctx.forward(event);
                        return;
                    }
                    data.message.push(&GossipHeader {
                        origin: data.header.source,
                        seq: 0,
                        ttl: 0,
                    });
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let local = ctx.node_id();
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<GossipHeader>() else {
                    return;
                };
                let now = ctx.now_ms();
                if header.seq != 0 && !self.remember((header.origin, header.seq), now) {
                    self.duplicates += 1;
                    return;
                }
                if header.seq != 0 && header.ttl > 0 {
                    let mut forwarded_message = data.message.clone();
                    forwarded_message.push(&GossipHeader {
                        origin: header.origin,
                        seq: header.seq,
                        ttl: header.ttl - 1,
                    });
                    let targets = self.random_targets(&[local, header.origin], ctx);
                    if !targets.is_empty() {
                        self.forwarded += 1;
                        ctx.dispatch(Event::down(DataEvent::new(
                            header.origin,
                            Dest::Nodes(targets),
                            forwarded_message,
                        )));
                    }
                }
                data.header.source = header.origin;
                ctx.forward(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::config::{ChannelConfig, LayerSpec};
    use morpheus_appia::platform::{InPacket, PacketDest, TestPlatform};
    use morpheus_appia::{Kernel, Message};

    use super::*;
    use crate::suite::register_suite;

    fn gossip_config(members: &[u32], fanout: usize, ttl: u32) -> ChannelConfig {
        let members_param = members
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",");
        ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("gossip")
                    .with_param("members", members_param)
                    .with_param("fanout", fanout.to_string())
                    .with_param("ttl", ttl.to_string()),
            )
            .with_layer(LayerSpec::new("app"))
    }

    #[test]
    fn group_send_pushes_to_fanout_targets() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..20).collect();
        let id = kernel
            .create_channel(&gossip_config(&members, 4, 3), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 4);
        assert!(sent
            .iter()
            .all(|p| matches!(p.dest, PacketDest::Node(n) if n != NodeId(0))));
    }

    #[test]
    fn small_groups_push_to_everyone() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let id = kernel
            .create_channel(&gossip_config(&[0, 1, 2], 5, 3), &mut platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(platform.take_sent().len(), 2);
    }

    #[test]
    fn receivers_deliver_once_and_forward_while_ttl_lasts() {
        let mut sender = Kernel::new();
        register_suite(&mut sender);
        let mut sender_platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..10).collect();
        let sender_channel = sender
            .create_channel(&gossip_config(&members, 3, 2), &mut sender_platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(
            NodeId(0),
            Message::with_payload(&b"g"[..]),
        ));
        sender.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();
        assert!(!sent.is_empty());

        // Deliver the same packet to node 1 twice: first delivery forwards,
        // second is suppressed as a duplicate.
        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(&gossip_config(&members, 3, 2), &mut receiver_platform)
            .unwrap();

        let packet = InPacket {
            from: NodeId(0),
            to: NodeId(1),
            class: sent[0].class,
            channel: sent[0].channel.clone(),
            payload: sent[0].payload.clone(),
        };
        receiver
            .deliver_packet(packet.clone(), &mut receiver_platform)
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
        receiver_platform.take_deliveries();
        let forwarded = receiver_platform.take_sent();
        assert!(!forwarded.is_empty(), "first reception is forwarded onward");

        receiver
            .deliver_packet(packet, &mut receiver_platform)
            .unwrap();
        assert_eq!(
            receiver_platform.data_delivery_count(),
            0,
            "duplicate is suppressed"
        );
        assert!(receiver_platform.take_sent().is_empty());
    }

    #[test]
    fn duplicate_suppression_memory_is_capped_by_ring_and_ttl() {
        let mut gossip = GossipSession {
            members: vec![NodeId(0), NodeId(1), NodeId(2)],
            fanout: 3,
            ttl: 4,
            seen_cap: 16,
            seen_ttl_ms: 1000,
            next_seq: 0,
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            forwarded: 0,
            duplicates: 0,
        };

        // The ring caps the set no matter how many distinct ids arrive.
        for seq in 0..100u64 {
            assert!(gossip.remember((NodeId(1), seq), 0));
        }
        assert_eq!(gossip.seen_len(), 16, "ring eviction bounds the memory");
        assert!(
            gossip.remember((NodeId(1), 5), 10),
            "an id evicted by the ring is (correctly) treated as new again"
        );
        assert!(!gossip.remember((NodeId(1), 99), 10), "recent ids suppress");

        // Age-based expiry clears the set even without capacity pressure.
        assert!(!gossip.remember((NodeId(1), 99), 999));
        assert!(
            gossip.remember((NodeId(1), 99), 1010),
            "entries older than the TTL are evicted"
        );
        assert!(gossip.seen_len() <= 16);
    }

    #[test]
    fn ttl_zero_messages_are_not_forwarded() {
        let mut sender = Kernel::new();
        register_suite(&mut sender);
        let mut sender_platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..6).collect();
        let sender_channel = sender
            .create_channel(&gossip_config(&members, 2, 0), &mut sender_platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        sender.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();

        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(&gossip_config(&members, 2, 0), &mut receiver_platform)
            .unwrap();
        receiver
            .deliver_packet(
                InPacket {
                    from: NodeId(0),
                    to: NodeId(1),
                    class: sent[0].class,
                    channel: sent[0].channel.clone(),
                    payload: sent[0].payload.clone(),
                },
                &mut receiver_platform,
            )
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
        assert!(receiver_platform.take_sent().is_empty());
    }
}
