//! Epidemic (gossip) multicast for large, geographically distributed groups.
//!
//! The paper's motivation section points out that when "participants are in
//! large numbers and distributed geographically over a large-scale network,
//! it can be preferable to rely on epidemic protocols to implement the
//! multicast". This layer implements the two-phase design of bimodal
//! multicast (Birman et al.):
//!
//! 1. **Push phase** — a sender pushes the message to `fanout` random
//!    members; every receiver that sees the message for the first time
//!    delivers it and pushes it to another `fanout` random members while the
//!    TTL lasts. Coverage is probabilistic: at realistic fan-outs a few
//!    percent of the group misses any given message.
//! 2. **Repair phase (NACK / anti-entropy)** — every member keeps a bounded
//!    log of recently delivered messages keyed by `(origin, inc, seq)`.
//!    Each `repair_interval_ms` it gossips a [`RepairDigest`] — the message
//!    spans its log can serve — to `fanout` random peers. A receiver
//!    compares the spans against its own per-stream delivery record and
//!    NACK-pulls the gaps ([`RepairPull`], rate-limited to
//!    `repair_pull_budget` digest senders and `repair_window` messages per
//!    interval); the peer answers with the logged originals
//!    ([`GossipRepairPush`]). Late duplicates — including messages already
//!    evicted from the push-phase suppression set but still recorded in the
//!    delivery tracker — are suppressed, so coverage converges to 100%
//!    shortly after the push phase tops out without ever re-delivering.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::{GossipRepairDigest, GossipRepairPull, GossipRepairPush, ViewInstall};
use crate::headers::{GossipHeader, RepairDigest, RepairPull, RepairPushHeader, RepairRange};

/// Registered name of the gossip multicast layer.
pub const GOSSIP_LAYER: &str = "gossip";

/// Timer tag of the periodic repair tick.
const REPAIR_TAG: u32 = 1;

/// Default cap on message identifiers remembered for duplicate suppression.
const DEFAULT_SEEN_CAP: usize = 65_536;

/// Default age after which a remembered identifier is evicted. Far beyond
/// any realistic propagation delay of an epidemic round, so eviction can
/// only re-admit a duplicate that stopped circulating long ago — while a
/// long-running chat no longer pins one entry per message ever seen.
const DEFAULT_SEEN_TTL_MS: u64 = 60_000;

/// Default cadence of the repair digest gossip (`0` disables the repair
/// pass entirely, leaving the pure push-phase protocol).
const DEFAULT_REPAIR_INTERVAL_MS: u64 = 1_000;

/// Default cap on messages held in the repair log.
const DEFAULT_REPAIR_LOG_CAP: usize = 4_096;

/// Default age after which a logged message is no longer served.
const DEFAULT_REPAIR_LOG_TTL_MS: u64 = 10_000;

/// Default cap on message identifiers NACK-pulled per repair interval.
const DEFAULT_REPAIR_WINDOW: usize = 64;

/// Default number of digest senders pulled from per repair interval (one
/// redundant pull, mirroring the context anti-entropy budget, so a single
/// lost push batch does not cost a whole extra interval).
const DEFAULT_REPAIR_PULL_BUDGET: usize = 2;

/// Sparse-set cap of the per-stream delivery tracker: when more than this
/// many delivered sequence numbers sit above the contiguous floor, the
/// oldest gaps are abandoned (treated as delivered) so the tracker's memory
/// stays bounded even for gaps no repair log can serve any more.
const DELIVERED_GAP_CAP: usize = 512;

/// Picks up to `limit` distinct members uniformly at random, excluding
/// `exclude` — the peer-sampling primitive shared by every gossip mechanism
/// (epidemic multicast, liveness-digest failure detection, context
/// anti-entropy). A partial Fisher-Yates driven by the platform's
/// deterministic RNG, so simulation runs stay reproducible.
pub fn sample_peers(
    members: &[NodeId],
    exclude: &[NodeId],
    limit: usize,
    ctx: &mut EventContext<'_>,
) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|member| !exclude.contains(member))
        .collect();
    if pool.len() <= limit {
        return pool;
    }
    for index in 0..limit {
        let remaining = pool.len() - index;
        let pick = index + (ctx.random_u64() % remaining as u64) as usize;
        pool.swap(index, pick);
    }
    pool.truncate(limit);
    pool
}

/// Counters of one gossip session, exposed to the node runtime (and from
/// there to testbed reports) via the session downcast hook.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Push-phase forwards performed (first receptions re-pushed while the
    /// TTL lasted).
    pub forwarded: u64,
    /// Push-phase duplicates suppressed by the seen set.
    pub duplicates: u64,
    /// Repair digests gossiped.
    pub repair_digests: u64,
    /// NACK pulls sent (requests, not message identifiers).
    pub repair_pulls: u64,
    /// Message identifiers requested across all pulls.
    pub repair_pulled_seqs: u64,
    /// Logged messages served in answer to pulls.
    pub repair_pushes: u64,
    /// Messages delivered to the application through the repair pass (gaps
    /// the push phase missed).
    pub repaired_deliveries: u64,
    /// Late duplicates suppressed by the delivery tracker — arrivals (push
    /// or repair) of messages already delivered, including ones whose seen
    /// set entry had been evicted.
    pub late_duplicates: u64,
}

/// Per-`(origin, inc)` record of delivered sequence numbers: a contiguous
/// floor (everything at or below it was delivered or abandoned) plus a
/// sparse set above it. Sequence numbers are dense within a stream, so the
/// floor advances and the sparse set stays small; unlike the seen set this
/// record is never evicted by capacity pressure, which is what makes the
/// repair pass safe against re-delivery.
#[derive(Debug, Default)]
struct Delivered {
    floor: u64,
    above: BTreeSet<u64>,
}

impl Delivered {
    fn contains(&self, seq: u64) -> bool {
        seq <= self.floor || self.above.contains(&seq)
    }

    /// Records a delivered sequence number; returns `false` when it was
    /// already recorded (a late duplicate).
    fn record(&mut self, seq: u64) -> bool {
        if self.contains(seq) {
            return false;
        }
        self.above.insert(seq);
        while self.above.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
        // Bounded memory: when too many delivered seqs sit above the floor,
        // the oldest gaps are abandoned — no repair log still holds them.
        while self.above.len() > DELIVERED_GAP_CAP {
            let Some(lowest) = self.above.iter().next().copied() else {
                break;
            };
            self.floor = lowest;
            while {
                let drained = self.above.remove(&self.floor);
                let next = self.above.remove(&(self.floor + 1));
                if next {
                    self.floor += 1;
                }
                drained || next
            } {}
        }
        true
    }

    /// Appends the sequence numbers in `[lo, hi]` not yet delivered, up to
    /// `limit` entries.
    fn missing_in(&self, lo: u64, hi: u64, limit: usize, out: &mut Vec<u64>) {
        let start = lo.max(self.floor + 1);
        for seq in start..=hi {
            if out.len() >= limit {
                return;
            }
            if !self.above.contains(&seq) {
                out.push(seq);
            }
        }
    }
}

/// The epidemic multicast layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial membership;
/// * `fanout` — number of random targets per push (default 3);
/// * `ttl` — number of forwarding rounds a message survives (default 4);
/// * `seen_cap` — ring-buffer cap on the duplicate-suppression set
///   (default 65536);
/// * `seen_ttl_ms` — age-based eviction of suppression entries (default
///   60000 ms; `0` disables age eviction);
/// * `repair_interval_ms` — cadence of the repair digest gossip (default
///   1000 ms; `0` disables the repair pass);
/// * `repair_log_cap` — cap on messages held in the repair log (default
///   4096);
/// * `repair_log_ttl_ms` — age after which a logged message is dropped
///   (default 10000 ms);
/// * `repair_window` — cap on message identifiers pulled per interval
///   (default 64);
/// * `repair_pull_budget` — digest senders pulled from per interval
///   (default 2).
pub struct GossipLayer;

impl Layer for GossipLayer {
    fn name(&self) -> &str {
        GOSSIP_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<ViewInstall>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<GossipRepairDigest>(),
            EventSpec::of::<GossipRepairPull>(),
            EventSpec::of::<GossipRepairPush>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec![
            "DataEvent",
            "GossipRepairDigest",
            "GossipRepairPull",
            "GossipRepairPush",
        ]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(GossipSession::from_params(params))
    }
}

/// One stream of messages: an origin node plus its session incarnation.
type StreamKey = (NodeId, u64);

/// Session state of the gossip layer.
#[derive(Debug)]
pub struct GossipSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    /// Set view of `members`, refreshed on every view install: the guard
    /// that keeps repair traffic (digest replies, NACK-pull answers) from
    /// flowing to expelled or crashed peers that are no longer in the view.
    // bound: <= view size; rebuilt on every view install.
    member_set: HashSet<NodeId>,
    fanout: usize,
    ttl: u32,
    seen_cap: usize,
    seen_ttl_ms: u64,
    repair_interval_ms: u64,
    repair_log_cap: usize,
    repair_log_ttl_ms: u64,
    repair_window: usize,
    repair_pull_budget: usize,
    /// The local stream incarnation (session creation time): what keeps the
    /// local sequence space distinct from any previous session of this node
    /// after a restart or stack redeployment.
    inc: u64,
    inc_ready: bool,
    next_seq: u64,
    // bound: capped at `seen_cap` and aged out after `seen_ttl_ms`, enforced via `seen_order`.
    seen: HashSet<(NodeId, u64, u64)>,
    /// Insertion-ordered `(id, remembered-at ms)` ring backing the eviction
    /// policy: bounded capacity plus age-based expiry, so the
    /// duplicate-suppression memory stays capped no matter how long the
    /// epidemic data path runs.
    // bound: the ring itself -- `seen_cap` entries, `seen_ttl_ms` age.
    seen_order: VecDeque<((NodeId, u64, u64), u64)>,
    /// Per-stream delivery record — the repair pass's ground truth. Never
    /// capacity-evicted (unlike `seen`), so a message that fell out of the
    /// seen set is still known as delivered when a late NACK pull re-streams
    /// it.
    // bound: <= TRACKED_INCS_PER_ORIGIN streams per origin (stale incarnations evicted); each entry is a contiguous floor plus a DELIVERED_GAP_CAP-capped sparse set.
    delivered: HashMap<StreamKey, Delivered>,
    /// The repair log: recently delivered original messages, servable on a
    /// NACK pull. Bounded by `repair_log_cap` (ring) and
    /// `repair_log_ttl_ms` (age).
    // bound: `repair_log_cap` ring + `repair_log_ttl_ms` age, enforced via `log_order`.
    log: HashMap<StreamKey, BTreeMap<u64, Message>>,
    // bound: same ring as `log` -- `repair_log_cap` entries, `repair_log_ttl_ms` age.
    log_order: VecDeque<(StreamKey, u64, u64)>,
    pulls_this_interval: usize,
    repair_timer: Option<u64>,
    stats: GossipStats,
}

impl GossipSession {
    /// Builds a session from layer parameters — the single construction
    /// site shared by [`GossipLayer::create_session`] and the unit tests.
    fn from_params(params: &LayerParams) -> Self {
        let members = param_node_list(params, "members");
        Self {
            member_set: members.iter().copied().collect(),
            members,
            fanout: param_or(params, "fanout", 3usize).max(1),
            ttl: param_or(params, "ttl", 4u32),
            seen_cap: param_or(params, "seen_cap", DEFAULT_SEEN_CAP).max(16),
            seen_ttl_ms: param_or(params, "seen_ttl_ms", DEFAULT_SEEN_TTL_MS),
            repair_interval_ms: param_or(params, "repair_interval_ms", DEFAULT_REPAIR_INTERVAL_MS),
            repair_log_cap: param_or(params, "repair_log_cap", DEFAULT_REPAIR_LOG_CAP).max(16),
            repair_log_ttl_ms: param_or(params, "repair_log_ttl_ms", DEFAULT_REPAIR_LOG_TTL_MS)
                .max(100),
            repair_window: param_or(params, "repair_window", DEFAULT_REPAIR_WINDOW).max(1),
            repair_pull_budget: param_or(params, "repair_pull_budget", DEFAULT_REPAIR_PULL_BUDGET)
                .max(1),
            inc: 0,
            inc_ready: false,
            next_seq: 0,
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            delivered: HashMap::new(),
            log: HashMap::new(),
            log_order: VecDeque::new(),
            pulls_this_interval: 0,
            repair_timer: None,
            stats: GossipStats::default(),
        }
    }

    /// Entries currently held for duplicate suppression.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Messages currently held in the repair log.
    pub fn log_len(&self) -> usize {
        self.log.values().map(BTreeMap::len).sum()
    }

    /// The session's counters (push-phase and repair-pass).
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    fn repair_enabled(&self) -> bool {
        self.repair_interval_ms > 0
    }

    fn ensure_inc(&mut self, ctx: &mut EventContext<'_>) {
        if !self.inc_ready {
            self.inc = ctx.now_ms();
            self.inc_ready = true;
        }
    }

    fn remember(&mut self, id: (NodeId, u64, u64), now_ms: u64) -> bool {
        // Age-based expiry first (cheap: entries are insertion-ordered).
        if self.seen_ttl_ms > 0 {
            while let Some((oldest, at)) = self.seen_order.front().copied() {
                if now_ms.saturating_sub(at) < self.seen_ttl_ms {
                    break;
                }
                self.seen_order.pop_front();
                self.seen.remove(&oldest);
            }
        }
        if !self.seen.insert(id) {
            return false;
        }
        self.seen_order.push_back((id, now_ms));
        while self.seen_order.len() > self.seen_cap {
            if let Some((oldest, _)) = self.seen_order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        true
    }

    /// Incarnations of one origin whose delivery records are retained. A
    /// node can plausibly produce several incarnations inside one repair
    /// window (pre-restart stack, rejoin boot stack, control-plane repair
    /// redeploy); pruning must never touch a stream whose messages peers'
    /// repair logs can still serve, or a late pull would re-deliver — so
    /// the cap is comfortably above that burst, and only the lowest (oldest,
    /// long past every repair log's TTL) incarnation is dropped.
    const TRACKED_INCS_PER_ORIGIN: usize = 4;

    /// Records a delivered message in the per-stream tracker; returns
    /// `false` for a late duplicate. Trackers are created only here — on an
    /// actual delivery — never on query paths, so digest contents cannot
    /// fabricate (or displace) delivery records.
    fn record_delivered(&mut self, origin: NodeId, inc: u64, seq: u64) -> bool {
        if !self.delivered.contains_key(&(origin, inc)) {
            let mut incs: Vec<u64> = self
                .delivered
                .keys()
                .filter(|(node, _)| *node == origin)
                .map(|(_, inc)| *inc)
                .collect();
            while incs.len() >= Self::TRACKED_INCS_PER_ORIGIN {
                incs.sort_unstable();
                let oldest = incs.remove(0);
                self.delivered.remove(&(origin, oldest));
                self.drop_stream_log(&(origin, oldest));
            }
        }
        self.delivered.entry((origin, inc)).or_default().record(seq)
    }

    fn drop_stream_log(&mut self, key: &StreamKey) {
        self.log.remove(key);
        // The ring keeps its (now dangling) entries; they are skipped on
        // eviction because the map lookup fails.
    }

    /// Stores a delivered message in the bounded repair log.
    fn log_store(&mut self, key: StreamKey, seq: u64, message: Message, now_ms: u64) {
        if !self.repair_enabled() {
            return;
        }
        let stream = self.log.entry(key).or_default();
        if stream.insert(seq, message).is_none() {
            self.log_order.push_back((key, seq, now_ms));
        }
        while self.log_order.len() > self.repair_log_cap {
            let Some((old_key, old_seq, _)) = self.log_order.pop_front() else {
                break;
            };
            if let Some(stream) = self.log.get_mut(&old_key) {
                stream.remove(&old_seq);
                if stream.is_empty() {
                    self.log.remove(&old_key);
                }
            }
        }
    }

    /// Drops logged messages older than `repair_log_ttl_ms`.
    fn evict_log(&mut self, now_ms: u64) {
        while let Some((key, seq, at)) = self.log_order.front().copied() {
            if now_ms.saturating_sub(at) < self.repair_log_ttl_ms {
                break;
            }
            self.log_order.pop_front();
            if let Some(stream) = self.log.get_mut(&key) {
                stream.remove(&seq);
                if stream.is_empty() {
                    self.log.remove(&key);
                }
            }
        }
    }

    fn random_targets(&self, exclude: &[NodeId], ctx: &mut EventContext<'_>) -> Vec<NodeId> {
        sample_peers(&self.members, exclude, self.fanout, ctx)
    }

    fn arm_repair_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.repair_timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.repair_timer = Some(ctx.set_timer(self.repair_interval_ms, REPAIR_TAG));
    }

    /// The periodic repair tick: evict the log, gossip a digest of what the
    /// log can serve, reset the per-interval pull budget.
    fn on_repair_timer(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let now = ctx.now_ms();
        self.evict_log(now);
        self.pulls_this_interval = 0;
        if !self.log.is_empty() {
            let mut entries: Vec<RepairRange> = self
                .log
                .iter()
                .filter_map(|((origin, inc), stream)| {
                    let lo = *stream.keys().next()?;
                    let hi = *stream.keys().next_back()?;
                    Some(RepairRange {
                        origin: *origin,
                        inc: *inc,
                        lo,
                        hi,
                    })
                })
                .collect();
            entries.sort_unstable_by_key(|entry| (entry.origin.0, entry.inc));
            let targets = self.random_targets(&[local], ctx);
            if !targets.is_empty() {
                self.stats.repair_digests += 1;
                let mut message = Message::new();
                message.push(&RepairDigest { entries });
                ctx.dispatch(Event::down(GossipRepairDigest::new(
                    local,
                    Dest::Nodes(targets),
                    message,
                )));
            }
        }
        self.arm_repair_timer(ctx);
    }

    /// A peer's digest arrived: NACK-pull the gaps it can serve, within the
    /// per-interval budget.
    fn on_repair_digest(&mut self, from: NodeId, digest: RepairDigest, ctx: &mut EventContext<'_>) {
        if !self.repair_enabled() || self.pulls_this_interval >= self.repair_pull_budget {
            return;
        }
        // A digest from outside the installed view (an expelled member, a
        // stale incarnation) gets no pull: answering would re-open a repair
        // conversation with a peer the view agreement removed.
        if !self.member_set.contains(&from) {
            return;
        }
        let local = ctx.node_id();
        let mut wants: Vec<(NodeId, u64, Vec<u64>)> = Vec::new();
        let mut total = 0usize;
        for entry in &digest.entries {
            if entry.origin == local || entry.lo > entry.hi || total >= self.repair_window {
                continue;
            }
            // Query only — a digest must never create (or displace) a
            // delivery record. An unknown stream is missing in its
            // entirety within the advertised span.
            let mut missing = Vec::new();
            match self.delivered.get(&(entry.origin, entry.inc)) {
                Some(tracker) => {
                    tracker.missing_in(entry.lo, entry.hi, self.repair_window - total, &mut missing)
                }
                None => {
                    let limit = self.repair_window - total;
                    missing.extend((entry.lo..=entry.hi).take(limit));
                }
            }
            if !missing.is_empty() {
                total += missing.len();
                wants.push((entry.origin, entry.inc, missing));
            }
        }
        if wants.is_empty() {
            return;
        }
        self.pulls_this_interval += 1;
        self.stats.repair_pulls += 1;
        self.stats.repair_pulled_seqs += total as u64;
        let mut message = Message::new();
        message.push(&RepairPull { wants });
        ctx.dispatch(Event::down(GossipRepairPull::new(
            local,
            Dest::Node(from),
            message,
        )));
    }

    /// A peer pulls gaps: serve them from the repair log.
    fn on_repair_pull(&mut self, from: NodeId, pull: RepairPull, ctx: &mut EventContext<'_>) {
        // Serve log entries only to current view members — an expelled peer
        // re-syncs through the recovery layer's state transfer, not through
        // the repair path.
        if !self.member_set.contains(&from) {
            return;
        }
        let local = ctx.node_id();
        // A malformed or adversarial pull cannot make the node stream more
        // than twice the advertised window.
        let mut budget = self.repair_window * 2;
        for (origin, inc, seqs) in pull.wants {
            let Some(stream) = self.log.get(&(origin, inc)) else {
                continue;
            };
            for seq in seqs {
                if budget == 0 {
                    return;
                }
                let Some(original) = stream.get(&seq) else {
                    continue;
                };
                budget -= 1;
                self.stats.repair_pushes += 1;
                let mut message = original.clone();
                message.push(&RepairPushHeader { origin, inc, seq });
                ctx.dispatch(Event::down(GossipRepairPush::new(
                    local,
                    Dest::Node(from),
                    message,
                )));
            }
        }
    }

    /// A pulled message arrived: deliver it upward unless it is a late
    /// duplicate.
    fn on_repair_push(
        &mut self,
        header: RepairPushHeader,
        original: Message,
        ctx: &mut EventContext<'_>,
    ) {
        let now = ctx.now_ms();
        let local = ctx.node_id();
        let id = (header.origin, header.inc, header.seq);
        self.remember(id, now);
        if !self.record_delivered(header.origin, header.inc, header.seq) {
            // Already delivered — possibly long ago, with the seen-set entry
            // evicted since. The tracker is what prevents the re-delivery.
            self.stats.late_duplicates += 1;
            return;
        }
        self.log_store(
            (header.origin, header.inc),
            header.seq,
            original.clone(),
            now,
        );
        self.stats.repaired_deliveries += 1;
        ctx.dispatch(Event::up(DataEvent::new(
            header.origin,
            Dest::Node(local),
            original,
        )));
    }
}

impl Session for GossipSession {
    fn layer_name(&self) -> &str {
        GOSSIP_LAYER
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            self.ensure_inc(ctx);
            if self.repair_enabled() {
                self.arm_repair_timer(ctx);
            }
            ctx.forward(event);
            return;
        }

        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == GOSSIP_LAYER {
                if timer.tag == REPAIR_TAG && self.repair_timer == Some(timer.timer_id) {
                    self.repair_timer = None;
                    self.on_repair_timer(ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }

        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            self.member_set = self.members.iter().copied().collect();
            ctx.forward(event);
            return;
        }

        if event.is::<GossipRepairDigest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(digest) = event.get_mut::<GossipRepairDigest>() else {
                return;
            };
            let from = digest.header.source;
            let Ok(body) = digest.message.pop::<RepairDigest>() else {
                return;
            };
            self.on_repair_digest(from, body, ctx);
            return;
        }

        if event.is::<GossipRepairPull>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(pull) = event.get_mut::<GossipRepairPull>() else {
                return;
            };
            let from = pull.header.source;
            let Ok(body) = pull.message.pop::<RepairPull>() else {
                return;
            };
            self.on_repair_pull(from, body, ctx);
            return;
        }

        if event.is::<GossipRepairPush>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(push) = event.get_mut::<GossipRepairPush>() else {
                return;
            };
            let Ok(header) = push.message.pop::<RepairPushHeader>() else {
                return;
            };
            let original = push.message.clone();
            self.on_repair_push(header, original, ctx);
            return;
        }

        match event.direction {
            Direction::Down => {
                let local = ctx.node_id();
                if let Some(data) = event.get_mut::<DataEvent>() {
                    if data.header.dest == Dest::Group {
                        self.ensure_inc(ctx);
                        self.next_seq += 1;
                        let header = GossipHeader {
                            origin: data.header.source,
                            inc: self.inc,
                            seq: self.next_seq,
                            ttl: self.ttl,
                        };
                        let now = ctx.now_ms();
                        // Log the pre-header message (what receivers deliver)
                        // so the origin itself can serve repair pulls, and
                        // record the own send as delivered so the node never
                        // pulls its own messages.
                        let original = data.message.clone();
                        self.remember((header.origin, header.inc, header.seq), now);
                        self.record_delivered(header.origin, header.inc, header.seq);
                        self.log_store((header.origin, header.inc), header.seq, original, now);
                        data.message.push(&header);
                        let targets = self.random_targets(&[local], ctx);
                        event
                            .get_mut::<DataEvent>()
                            .expect("checked above")
                            .header
                            .dest = Dest::Nodes(targets);
                        ctx.forward(event);
                        return;
                    }
                    data.message.push(&GossipHeader {
                        origin: data.header.source,
                        inc: 0,
                        seq: 0,
                        ttl: 0,
                    });
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let local = ctx.node_id();
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<GossipHeader>() else {
                    return;
                };
                let now = ctx.now_ms();
                if header.seq != 0 {
                    if !self.remember((header.origin, header.inc, header.seq), now) {
                        self.stats.duplicates += 1;
                        return;
                    }
                    if !self.record_delivered(header.origin, header.inc, header.seq) {
                        // The seen-set entry was evicted but the delivery
                        // tracker still knows the message: suppress the late
                        // duplicate instead of re-delivering it.
                        self.stats.late_duplicates += 1;
                        return;
                    }
                    self.log_store(
                        (header.origin, header.inc),
                        header.seq,
                        data.message.clone(),
                        now,
                    );
                }
                if header.seq != 0 && header.ttl > 0 {
                    let mut forwarded_message = data.message.clone();
                    forwarded_message.push(&GossipHeader {
                        origin: header.origin,
                        inc: header.inc,
                        seq: header.seq,
                        ttl: header.ttl - 1,
                    });
                    let targets = self.random_targets(&[local, header.origin], ctx);
                    if !targets.is_empty() {
                        self.stats.forwarded += 1;
                        ctx.dispatch(Event::down(DataEvent::new(
                            header.origin,
                            Dest::Nodes(targets),
                            forwarded_message,
                        )));
                    }
                }
                data.header.source = header.origin;
                ctx.forward(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::config::{ChannelConfig, LayerSpec};
    use morpheus_appia::platform::{InPacket, PacketDest, TestPlatform};
    use morpheus_appia::testing::Harness;
    use morpheus_appia::{Kernel, Message};

    use super::*;
    use crate::suite::register_suite;

    fn gossip_config(members: &[u32], fanout: usize, ttl: u32) -> ChannelConfig {
        let members_param = members
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",");
        ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("gossip")
                    .with_param("members", members_param)
                    .with_param("fanout", fanout.to_string())
                    .with_param("ttl", ttl.to_string()),
            )
            .with_layer(LayerSpec::new("app"))
    }

    fn gossip_params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn test_session(members: &[u32]) -> GossipSession {
        // The boxed session exposes itself through the downcast hook the
        // node runtime uses to read repair statistics.
        let boxed = GossipLayer.create_session(&gossip_params(members));
        let any = boxed.as_any().expect("gossip sessions expose themselves");
        assert!(any.downcast_ref::<GossipSession>().is_some());
        // Same construction site as the layer, so tests never diverge from
        // the real parameter clamping.
        GossipSession::from_params(&gossip_params(members))
    }

    #[test]
    fn group_send_pushes_to_fanout_targets() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..20).collect();
        let id = kernel
            .create_channel(&gossip_config(&members, 4, 3), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 4);
        assert!(sent
            .iter()
            .all(|p| matches!(p.dest, PacketDest::Node(n) if n != NodeId(0))));
    }

    #[test]
    fn small_groups_push_to_everyone() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        let id = kernel
            .create_channel(&gossip_config(&[0, 1, 2], 5, 3), &mut platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(platform.take_sent().len(), 2);
    }

    #[test]
    fn receivers_deliver_once_and_forward_while_ttl_lasts() {
        let mut sender = Kernel::new();
        register_suite(&mut sender);
        let mut sender_platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..10).collect();
        let sender_channel = sender
            .create_channel(&gossip_config(&members, 3, 2), &mut sender_platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(
            NodeId(0),
            Message::with_payload(&b"g"[..]),
        ));
        sender.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();
        assert!(!sent.is_empty());

        // Deliver the same packet to node 1 twice: first delivery forwards,
        // second is suppressed as a duplicate.
        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(&gossip_config(&members, 3, 2), &mut receiver_platform)
            .unwrap();

        let data_packet = sent
            .iter()
            .find(|p| p.class == morpheus_appia::PacketClass::Data)
            .expect("push-phase packet");
        let packet = InPacket {
            from: NodeId(0),
            to: NodeId(1),
            class: data_packet.class,
            channel: data_packet.channel.clone(),
            payload: data_packet.payload.clone(),
        };
        receiver
            .deliver_packet(packet.clone(), &mut receiver_platform)
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
        receiver_platform.take_deliveries();
        let forwarded = receiver_platform.take_sent();
        assert!(!forwarded.is_empty(), "first reception is forwarded onward");

        receiver
            .deliver_packet(packet, &mut receiver_platform)
            .unwrap();
        assert_eq!(
            receiver_platform.data_delivery_count(),
            0,
            "duplicate is suppressed"
        );
        assert!(receiver_platform.take_sent().is_empty());
    }

    #[test]
    fn duplicate_suppression_memory_is_capped_by_ring_and_ttl() {
        let mut gossip = test_session(&[0, 1, 2]);
        gossip.seen_cap = 16;
        gossip.seen_ttl_ms = 1000;

        // The ring caps the set no matter how many distinct ids arrive.
        for seq in 0..100u64 {
            assert!(gossip.remember((NodeId(1), 0, seq), 0));
        }
        assert_eq!(gossip.seen_len(), 16, "ring eviction bounds the memory");
        assert!(
            gossip.remember((NodeId(1), 0, 5), 10),
            "an id evicted by the ring is (correctly) treated as new again"
        );
        assert!(
            !gossip.remember((NodeId(1), 0, 99), 10),
            "recent ids suppress"
        );

        // Age-based expiry clears the set even without capacity pressure.
        assert!(!gossip.remember((NodeId(1), 0, 99), 999));
        assert!(
            gossip.remember((NodeId(1), 0, 99), 1010),
            "entries older than the TTL are evicted"
        );
        assert!(gossip.seen_len() <= 16);
    }

    #[test]
    fn ttl_zero_messages_are_not_forwarded() {
        let mut sender = Kernel::new();
        register_suite(&mut sender);
        let mut sender_platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..6).collect();
        let sender_channel = sender
            .create_channel(&gossip_config(&members, 2, 0), &mut sender_platform)
            .unwrap();
        let event = Event::down(DataEvent::to_group(NodeId(0), Message::new()));
        sender.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();
        let data_packet = sent
            .iter()
            .find(|p| p.class == morpheus_appia::PacketClass::Data)
            .expect("push-phase packet");

        let mut receiver = Kernel::new();
        register_suite(&mut receiver);
        let mut receiver_platform = TestPlatform::new(NodeId(1));
        receiver
            .create_channel(&gossip_config(&members, 2, 0), &mut receiver_platform)
            .unwrap();
        receiver
            .deliver_packet(
                InPacket {
                    from: NodeId(0),
                    to: NodeId(1),
                    class: data_packet.class,
                    channel: data_packet.channel.clone(),
                    payload: data_packet.payload.clone(),
                },
                &mut receiver_platform,
            )
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
        assert!(receiver_platform
            .take_sent()
            .iter()
            .all(|p| p.class != morpheus_appia::PacketClass::Data));
    }

    #[test]
    fn delivery_tracker_advances_its_floor_and_stays_bounded() {
        let mut delivered = Delivered::default();
        assert!(delivered.record(1));
        assert!(delivered.record(2));
        assert!(!delivered.record(2), "duplicates rejected");
        assert_eq!(delivered.floor, 2);
        assert!(delivered.record(5));
        assert_eq!(delivered.floor, 2, "gap at 3-4 holds the floor");
        let mut missing = Vec::new();
        delivered.missing_in(1, 6, 16, &mut missing);
        assert_eq!(missing, vec![3, 4, 6]);
        assert!(delivered.record(3));
        assert!(delivered.record(4));
        assert_eq!(delivered.floor, 5, "contiguous run folds into the floor");

        // Pathological gaps are abandoned once the sparse set exceeds the
        // cap, keeping memory bounded.
        for seq in 0..2 * DELIVERED_GAP_CAP as u64 {
            delivered.record(100 + 2 * seq);
        }
        assert!(delivered.above.len() <= DELIVERED_GAP_CAP);
    }

    #[test]
    fn repair_tick_gossips_a_digest_of_the_log() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..8).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_interval_ms".into(), "500".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // A group send seeds the log.
        gossip.run_down(
            Event::down(DataEvent::to_group(
                NodeId(0),
                Message::with_payload(&b"m1"[..]),
            )),
            &mut platform,
        );
        platform.advance(500);
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            gossip.fire_timer(key, &mut platform);
        }
        let down = gossip.drain_down();
        let digests: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipRepairDigest>())
            .collect();
        assert_eq!(digests.len(), 1, "one digest per repair tick");
        let digest = digests[0].get::<GossipRepairDigest>().unwrap();
        let body = digest.message.clone().pop::<RepairDigest>().unwrap();
        assert_eq!(body.entries.len(), 1);
        assert_eq!(body.entries[0].origin, NodeId(0));
        assert_eq!((body.entries[0].lo, body.entries[0].hi), (1, 1));
        let Dest::Nodes(targets) = &digest.header.dest else {
            panic!("digests address a sampled node list");
        };
        assert!(targets.len() <= 3 && !targets.is_empty());
    }

    #[test]
    fn a_digest_with_gaps_triggers_a_nack_pull_and_the_push_repairs_it() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // The peer advertises seqs 1..=3 of origin 0; nothing was delivered
        // here yet, so all three are missing.
        let mut message = Message::new();
        message.push(&RepairDigest {
            entries: vec![RepairRange {
                origin: NodeId(0),
                inc: 7,
                lo: 1,
                hi: 3,
            }],
        });
        gossip.run_up(
            Event::up(GossipRepairDigest::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );
        let down = gossip.drain_down();
        let pulls: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<GossipRepairPull>())
            .collect();
        assert_eq!(pulls.len(), 1);
        let pull = pulls[0].get::<GossipRepairPull>().unwrap();
        assert_eq!(pull.header.dest, Dest::Node(NodeId(2)));
        let body = pull.message.clone().pop::<RepairPull>().unwrap();
        assert_eq!(body.wants, vec![(NodeId(0), 7, vec![1, 2, 3])]);

        // The peer answers with one of the messages: it is delivered upward
        // exactly once.
        let mut push = Message::with_payload(&b"repaired"[..]);
        push.push(&RepairPushHeader {
            origin: NodeId(0),
            inc: 7,
            seq: 2,
        });
        let up = gossip.run_up(
            Event::up(GossipRepairPush::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                push.clone(),
            )),
            &mut platform,
        );
        let delivered: Vec<&Event> = up.iter().filter(|event| event.is::<DataEvent>()).collect();
        assert_eq!(delivered.len(), 1, "the repaired message is delivered");
        let data = delivered[0].get::<DataEvent>().unwrap();
        assert_eq!(data.header.source, NodeId(0), "origin restored");
        assert_eq!(data.message.payload().as_ref(), b"repaired");

        // A duplicate push of the same message is suppressed.
        let up = gossip.run_up(
            Event::up(GossipRepairPush::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                push,
            )),
            &mut platform,
        );
        assert!(up.iter().all(|event| !event.is::<DataEvent>()));
    }

    #[test]
    fn pulls_are_rate_limited_per_interval() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..8).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_pull_budget".into(), "1".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        let digest_from = |from: u32, hi: u64| {
            let mut message = Message::new();
            message.push(&RepairDigest {
                entries: vec![RepairRange {
                    origin: NodeId(0),
                    inc: 1,
                    lo: 1,
                    hi,
                }],
            });
            Event::up(GossipRepairDigest::new(
                NodeId(from),
                Dest::Node(NodeId(1)),
                message,
            ))
        };

        gossip.run_up(digest_from(2, 3), &mut platform);
        assert_eq!(
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPull>())
                .count(),
            1
        );
        // The budget for this interval is spent: a second digest is ignored.
        gossip.run_up(digest_from(3, 3), &mut platform);
        assert_eq!(
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPull>())
                .count(),
            0,
            "per-interval pull budget enforced"
        );
    }

    #[test]
    fn a_member_serves_pulls_from_its_log() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // Two group sends populate the log (inc = now = 0 in tests).
        for text in [&b"m1"[..], &b"m2"[..]] {
            gossip.run_down(
                Event::down(DataEvent::to_group(NodeId(0), Message::with_payload(text))),
                &mut platform,
            );
        }
        gossip.drain_down();

        let mut message = Message::new();
        message.push(&RepairPull {
            wants: vec![(NodeId(0), 0, vec![1, 2, 9])],
        });
        gossip.run_up(
            Event::up(GossipRepairPull::new(
                NodeId(2),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        let down = gossip.drain_down();
        let pushes: Vec<(RepairPushHeader, Message)> = down
            .iter()
            .filter_map(|event| {
                event.get::<GossipRepairPush>().map(|push| {
                    let mut message = push.message.clone();
                    let header = message.pop::<RepairPushHeader>().unwrap();
                    (header, message)
                })
            })
            .collect();
        assert_eq!(pushes.len(), 2, "held seqs served, unknown seq skipped");
        assert_eq!(pushes[0].0.seq, 1);
        assert_eq!(pushes[0].1.payload().as_ref(), b"m1");
        assert_eq!(pushes[1].0.seq, 2);
    }

    #[test]
    fn seen_set_eviction_does_not_cause_redelivery_on_late_pulls() {
        // The regression the repair pass must not introduce: a message whose
        // seen-set entry was evicted (ring pressure) but that is still in
        // the repair log / delivery tracker must NOT reach the application
        // again when a late NACK pull re-streams it.
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("seen_cap".into(), "16".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);

        // Deliver (origin 0, inc 1, seq 1) through the normal push phase.
        let deliver = |seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc: 1,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        let up = gossip.run_up(deliver(1), &mut platform);
        assert_eq!(up.iter().filter(|event| event.is::<DataEvent>()).count(), 1);

        // Flood the seen set far past its cap so (0, 1, 1) is evicted.
        for seq in 100..200u64 {
            gossip.run_up(deliver(seq), &mut platform);
        }
        gossip.drain_down();

        // A late repair push re-streams seq 1: the delivery tracker — which
        // is never capacity-evicted — suppresses the re-delivery.
        let mut push = Message::with_payload(&b"x"[..]);
        push.push(&RepairPushHeader {
            origin: NodeId(0),
            inc: 1,
            seq: 1,
        });
        let up = gossip.run_up(
            Event::up(GossipRepairPush::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                push,
            )),
            &mut platform,
        );
        assert!(
            up.iter().all(|event| !event.is::<DataEvent>()),
            "an already-delivered message must never be re-delivered"
        );

        // The same holds on the push-phase path: re-receiving the evicted
        // message as a plain gossip forward is suppressed by the tracker.
        let up = gossip.run_up(deliver(1), &mut platform);
        assert!(up.iter().all(|event| !event.is::<DataEvent>()));
    }

    #[test]
    fn streams_of_different_incarnations_are_tracked_separately() {
        // A node whose gossip session was rebuilt (restart, stack
        // redeployment) restarts its seq space under a new incarnation; its
        // fresh seq 1 must not be mistaken for a duplicate of the old
        // stream's seq 1.
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        let deliver = |inc: u64, seq: u64| {
            let mut message = Message::with_payload(&b"x"[..]);
            message.push(&GossipHeader {
                origin: NodeId(0),
                inc,
                seq,
                ttl: 0,
            });
            Event::up(DataEvent::new(NodeId(0), Dest::Node(NodeId(1)), message))
        };
        let first = gossip.run_up(deliver(1, 1), &mut platform);
        assert_eq!(
            first.iter().filter(|event| event.is::<DataEvent>()).count(),
            1
        );
        let second = gossip.run_up(deliver(2, 1), &mut platform);
        assert_eq!(
            second
                .iter()
                .filter(|event| event.is::<DataEvent>())
                .count(),
            1,
            "same seq under a fresh incarnation is a new message"
        );
    }

    #[test]
    fn repair_can_be_disabled_entirely() {
        let mut platform = TestPlatform::new(NodeId(0));
        let members: Vec<u32> = (0..4).collect();
        let mut params = gossip_params(&members);
        params.insert("repair_interval_ms".into(), "0".into());
        let mut gossip = Harness::new(GossipLayer, &params, &mut platform);
        assert!(
            platform.timers.is_empty(),
            "no repair timer when the pass is disabled"
        );
        gossip.run_down(
            Event::down(DataEvent::to_group(
                NodeId(0),
                Message::with_payload(&b"m"[..]),
            )),
            &mut platform,
        );
        // No log is kept, so a pull finds nothing.
        let mut message = Message::new();
        message.push(&RepairPull {
            wants: vec![(NodeId(0), 0, vec![1])],
        });
        gossip.run_up(
            Event::up(GossipRepairPull::new(
                NodeId(2),
                Dest::Node(NodeId(0)),
                message,
            )),
            &mut platform,
        );
        assert!(gossip
            .drain_down()
            .iter()
            .all(|event| !event.is::<GossipRepairPush>()));
    }
    #[test]
    fn repair_traffic_is_not_sent_to_expelled_members() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (0..4).collect();
        let mut gossip = Harness::new(GossipLayer, &gossip_params(&members), &mut platform);

        // A group send populates the repair log, then node 3 is expelled.
        gossip.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"m1"[..]),
            )),
            &mut platform,
        );
        gossip.drain_down();
        gossip.run_down(
            Event::down(ViewInstall {
                view: crate::view::View::new(2, vec![NodeId(0), NodeId(1), NodeId(2)]),
            }),
            &mut platform,
        );
        gossip.drain_down();

        // The expelled node's digest gets no NACK pull back...
        let mut message = Message::new();
        message.push(&RepairDigest {
            entries: vec![RepairRange {
                origin: NodeId(0),
                inc: 7,
                lo: 1,
                hi: 3,
            }],
        });
        gossip.run_up(
            Event::up(GossipRepairDigest::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );
        assert!(
            gossip
                .drain_down()
                .iter()
                .all(|event| !event.is::<GossipRepairPull>()),
            "no pull goes back to an expelled digest sender"
        );

        // ...and its pull is not served from the log, while a live member's
        // identical pull is.
        let pull_from = |from: u32| {
            let mut message = Message::new();
            message.push(&RepairPull {
                wants: vec![(NodeId(1), 0, vec![1])],
            });
            Event::up(GossipRepairPull::new(
                NodeId(from),
                Dest::Node(NodeId(1)),
                message,
            ))
        };
        gossip.run_up(pull_from(3), &mut platform);
        assert!(
            gossip
                .drain_down()
                .iter()
                .all(|event| !event.is::<GossipRepairPush>()),
            "the repair log is not served to expelled members"
        );
        gossip.run_up(pull_from(2), &mut platform);
        assert_eq!(
            gossip
                .drain_down()
                .iter()
                .filter(|event| event.is::<GossipRepairPush>())
                .count(),
            1,
            "a current member's identical pull is served"
        );
    }
    #[test]
    fn sustained_churn_keeps_delivery_and_repair_memory_bounded() {
        let mut gossip = test_session(&[0, 1, 2, 3]);
        gossip.seen_cap = 64;
        gossip.repair_log_cap = 128;
        gossip.repair_interval_ms = 500;

        // A flapping member (node 3) rejoins fifty times; every incarnation
        // opens a fresh stream whose burst is remembered, tracked and
        // logged. All three memories must stay inside their bounds at every
        // step of the churn, not just at the end.
        for incarnation in 0..50u64 {
            let now = incarnation * 1_000;
            for seq in 1..=20u64 {
                gossip.remember((NodeId(3), incarnation, seq), now);
                assert!(gossip.record_delivered(NodeId(3), incarnation, seq));
                gossip.log_store((NodeId(3), incarnation), seq, Message::new(), now);
            }
            gossip.evict_log(now);
            assert!(gossip.seen_len() <= 64, "seen ring bound");
            assert!(gossip.log_len() <= 128, "repair log cap bound");
            let tracked = gossip
                .delivered
                .keys()
                .filter(|(node, _)| *node == NodeId(3))
                .count();
            assert!(
                tracked <= GossipSession::TRACKED_INCS_PER_ORIGIN,
                "delivery trackers per origin stay capped under churn \
                 ({tracked} incarnations tracked)"
            );
        }

        // Only the newest incarnations survive: the tracker never forgets a
        // stream the repair logs can still serve (all retained incs are
        // recent), and the TTL drains the log once the churn stops.
        let newest: Vec<u64> = gossip
            .delivered
            .keys()
            .filter(|(node, _)| *node == NodeId(3))
            .map(|(_, inc)| *inc)
            .collect();
        assert!(
            newest.iter().all(|inc| *inc >= 46),
            "oldest incs pruned first"
        );
        gossip.evict_log(50_000 + gossip.repair_log_ttl_ms + 1);
        assert_eq!(gossip.log_len(), 0, "TTL drains the log once churn stops");
    }
}
