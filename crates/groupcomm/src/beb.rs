//! Best-effort multicast: the paper's non-adaptive baseline.
//!
//! A group send is implemented as a sequence of point-to-point messages, one
//! per group member (excluding the sender), or as a single native multicast
//! when the platform offers it and the layer is configured to use it. This is
//! exactly the behaviour the paper describes for the original Appia
//! best-effort multicast, and it is what makes the mobile node's send count
//! grow with the group size in the non-adapted configuration of Figure 3.

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::ViewInstall;
use crate::headers::{McastHeader, McastMode};

/// Registered name of the best-effort multicast layer.
pub const BEB_LAYER: &str = "beb";

/// The non-adaptive best-effort multicast layer.
///
/// Parameters:
///
/// * `members` — comma-separated list of node ids forming the initial group;
/// * `use_native` — use native multicast when the platform supports it
///   (default `false`, matching the paper's evaluation).
pub struct BebLayer;

impl Layer for BebLayer {
    fn name(&self) -> &str {
        BEB_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>(), EventSpec::of::<ViewInstall>()]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["DataEvent"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(BebSession {
            members: param_node_list(params, "members"),
            use_native: param_or(params, "use_native", false),
            group_sends: 0,
        })
    }
}

/// Session state of the best-effort multicast layer.
#[derive(Debug)]
pub struct BebSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    use_native: bool,
    group_sends: u64,
}

impl BebSession {
    /// Current membership the layer expands group sends over.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }
}

impl Session for BebSession {
    fn layer_name(&self) -> &str {
        BEB_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            ctx.forward(event);
            return;
        }

        match event.direction {
            Direction::Down => {
                let local = ctx.node_id();
                let native = self.use_native && ctx.profile().has_native_multicast;
                if let Some(data) = event.get_mut::<DataEvent>() {
                    data.message.push(&McastHeader {
                        mode: McastMode::Direct,
                        origin: data.header.source,
                    });
                    if data.header.dest == Dest::Group {
                        self.group_sends += 1;
                        if !native {
                            let others: Vec<NodeId> = self
                                .members
                                .iter()
                                .copied()
                                .filter(|member| *member != local)
                                .collect();
                            data.header.dest = Dest::Nodes(others);
                        }
                    }
                }
                ctx.forward(event);
            }
            Direction::Up => {
                if let Some(data) = event.get_mut::<DataEvent>() {
                    if data.message.pop::<McastHeader>().is_err() {
                        // Malformed or mismatched stack: drop rather than
                        // corrupt the header discipline of upper layers.
                        return;
                    }
                }
                ctx.forward(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::config::{ChannelConfig, LayerSpec};
    use morpheus_appia::platform::{NodeProfile, PacketDest, TestPlatform};
    use morpheus_appia::{Kernel, Message};

    use super::*;
    use crate::suite::register_suite;

    fn members_param(ids: &[u32]) -> String {
        ids.iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    fn beb_config(members: &[u32], use_native: bool) -> ChannelConfig {
        ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("beb")
                    .with_param("members", members_param(members))
                    .with_param("use_native", use_native.to_string()),
            )
            .with_layer(LayerSpec::new("app"))
    }

    #[test]
    fn group_send_becomes_one_message_per_member() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(1));
        let id = kernel
            .create_channel(&beb_config(&[1, 2, 3, 4], false), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(
            NodeId(1),
            Message::with_payload(&b"hi"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);

        let sent = platform.take_sent();
        assert_eq!(sent.len(), 3, "one point-to-point message per other member");
        assert!(sent.iter().all(|p| matches!(p.dest, PacketDest::Node(_))));
    }

    #[test]
    fn native_multicast_sends_once_when_available() {
        let mut profile = NodeProfile::fixed_pc(NodeId(1));
        profile.has_native_multicast = true;
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::with_profile(profile);
        let id = kernel
            .create_channel(&beb_config(&[1, 2, 3, 4], true), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(NodeId(1), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].dest, PacketDest::Broadcast);
    }

    #[test]
    fn received_messages_are_delivered_upward() {
        let mut sender_kernel = Kernel::new();
        let mut receiver_kernel = Kernel::new();
        register_suite(&mut sender_kernel);
        register_suite(&mut receiver_kernel);
        let mut sender_platform = TestPlatform::new(NodeId(1));
        let mut receiver_platform = TestPlatform::new(NodeId(2));
        let config = beb_config(&[1, 2], false);
        let sender_channel = sender_kernel
            .create_channel(&config, &mut sender_platform)
            .unwrap();
        receiver_kernel
            .create_channel(&config, &mut receiver_platform)
            .unwrap();

        let event = Event::down(DataEvent::to_group(
            NodeId(1),
            Message::with_payload(&b"msg"[..]),
        ));
        sender_kernel.dispatch_and_process(sender_channel, event, &mut sender_platform);
        let sent = sender_platform.take_sent();
        assert_eq!(sent.len(), 1);

        receiver_kernel
            .deliver_packet(
                morpheus_appia::platform::InPacket {
                    from: NodeId(1),
                    to: NodeId(2),
                    class: sent[0].class,
                    channel: sent[0].channel.clone(),
                    payload: sent[0].payload.clone(),
                },
                &mut receiver_platform,
            )
            .unwrap();
        assert_eq!(receiver_platform.data_delivery_count(), 1);
    }

    #[test]
    fn view_install_updates_membership() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(1));
        let id = kernel
            .create_channel(&beb_config(&[1, 2], false), &mut platform)
            .unwrap();

        // Install a larger view, then check that a group send fans out to it.
        let view = crate::view::View::new(1, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        kernel.dispatch_and_process(id, Event::down(ViewInstall { view }), &mut platform);
        let event = Event::down(DataEvent::to_group(NodeId(1), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(platform.take_sent().len(), 3);
    }

    #[test]
    fn point_to_point_sends_are_left_untouched() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(1));
        let id = kernel
            .create_channel(&beb_config(&[1, 2, 3], false), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::new(
            NodeId(1),
            Dest::Node(NodeId(3)),
            Message::new(),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].dest, PacketDest::Node(NodeId(3)));
    }
}
