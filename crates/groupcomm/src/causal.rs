//! Causal ordering of group messages using vector clocks.
//!
//! Each sender stamps outgoing messages with its vector clock; receivers
//! delay delivery of a message until every message that causally precedes it
//! has been delivered.

use morpheus_appia::event::{Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, Layer, LayerParams};
use morpheus_appia::session::Session;

use crate::events::ViewInstall;
use crate::headers::CausalHeader;
use crate::view::View;

/// Registered name of the causal ordering layer.
pub const CAUSAL_LAYER: &str = "causal";

/// The causal ordering layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership (defines the vector
///   clock dimensions and each member's rank).
pub struct CausalLayer;

impl Layer for CausalLayer {
    fn name(&self) -> &str {
        CAUSAL_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>(), EventSpec::of::<ViewInstall>()]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let view = View::initial(param_node_list(params, "members"));
        let clock = vec![0; view.len()];
        Box::new(CausalSession {
            view,
            clock,
            pending: Vec::new(),
            delayed: 0,
        })
    }
}

/// Session state of the causal ordering layer.
#[derive(Debug)]
pub struct CausalSession {
    view: View,
    // bound: one entry per view member; reallocated on view install.
    clock: Vec<u64>,
    // bound: drained as the vector clock advances; flushed wholesale on view install.
    pending: Vec<(CausalHeader, Event)>,
    delayed: u64,
}

impl CausalSession {
    fn deliverable(&self, header: &CausalHeader) -> bool {
        let sender = header.sender_rank as usize;
        if sender >= self.clock.len() || header.clock.len() != self.clock.len() {
            return true; // malformed or from an old view: deliver best effort
        }
        if header.clock[sender] != self.clock[sender] + 1 {
            return false;
        }
        header
            .clock
            .iter()
            .enumerate()
            .all(|(rank, &value)| rank == sender || value <= self.clock[rank])
    }

    fn record_delivery(&mut self, header: &CausalHeader) {
        let sender = header.sender_rank as usize;
        if sender < self.clock.len() {
            self.clock[sender] = self.clock[sender].max(header.clock[sender]);
        }
    }

    fn drain_pending(&mut self, ctx: &mut EventContext<'_>) {
        loop {
            let Some(position) = self
                .pending
                .iter()
                .position(|(header, _)| self.deliverable(header))
            else {
                return;
            };
            let (header, event) = self.pending.remove(position);
            self.record_delivery(&header);
            ctx.forward(event);
        }
    }
}

impl Session for CausalSession {
    fn layer_name(&self) -> &str {
        CAUSAL_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if let Some(install) = event.get::<ViewInstall>() {
            // New view: reset the clock dimensions. Messages from the old view
            // still buffered are delivered best effort.
            self.view = install.view.clone();
            self.clock = vec![0; self.view.len()];
            let leftovers = std::mem::take(&mut self.pending);
            for (_, leftover) in leftovers {
                ctx.forward(leftover);
            }
            ctx.forward(event);
            return;
        }

        match event.direction {
            Direction::Down => {
                let local = ctx.node_id();
                if let (Some(rank), Some(data)) =
                    (self.view.rank_of(local), event.get_mut::<DataEvent>())
                {
                    self.clock[rank] += 1;
                    data.message.push(&CausalHeader {
                        sender_rank: rank as u32,
                        clock: self.clock.clone(),
                    });
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<CausalHeader>() else {
                    return;
                };
                if self.deliverable(&header) {
                    self.record_delivery(&header);
                    ctx.forward(event);
                    self.drain_pending(ctx);
                } else {
                    self.delayed += 1;
                    self.pending.push((header, event));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::event::Dest;
    use morpheus_appia::platform::{NodeId, TestPlatform};
    use morpheus_appia::testing::Harness;
    use morpheus_appia::Message;

    use super::*;

    fn params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn message_from(rank: u32, clock: &[u64], payload: &[u8]) -> Event {
        let mut message = Message::with_payload(payload.to_vec());
        message.push(&CausalHeader {
            sender_rank: rank,
            clock: clock.to_vec(),
        });
        Event::up(DataEvent::new(NodeId(rank), Dest::Node(NodeId(0)), message))
    }

    #[test]
    fn sends_are_stamped_with_the_local_clock() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut causal = Harness::new(CausalLayer, &params(&[0, 1, 2]), &mut platform);
        let out = causal.run_down(
            Event::down(DataEvent::to_group(NodeId(0), Message::new())),
            &mut platform,
        );
        let header: CausalHeader = out[0]
            .get::<DataEvent>()
            .unwrap()
            .message
            .peek()
            .expect("causal header");
        assert_eq!(header.sender_rank, 0);
        assert_eq!(header.clock, vec![1, 0, 0]);
    }

    #[test]
    fn causally_ready_messages_are_delivered_immediately() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut causal = Harness::new(CausalLayer, &params(&[0, 1, 2]), &mut platform);
        let delivered = causal.run_up(message_from(1, &[0, 1, 0], b"a"), &mut platform);
        assert_eq!(delivered.len(), 1);
    }

    #[test]
    fn messages_missing_a_causal_dependency_are_delayed() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut causal = Harness::new(CausalLayer, &params(&[0, 1, 2]), &mut platform);

        // Node 2's message depends on node 1's first message, which has not
        // been delivered yet.
        let delayed = causal.run_up(message_from(2, &[0, 1, 1], b"reply"), &mut platform);
        assert!(delayed.is_empty());

        // Delivering node 1's message releases both, in causal order.
        let released = causal.run_up(message_from(1, &[0, 1, 0], b"original"), &mut platform);
        assert_eq!(released.len(), 2);
        let first = released[0].get::<DataEvent>().unwrap();
        let second = released[1].get::<DataEvent>().unwrap();
        assert_eq!(first.message.payload().as_ref(), b"original");
        assert_eq!(second.message.payload().as_ref(), b"reply");
    }

    #[test]
    fn successive_messages_from_one_sender_stay_in_order() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut causal = Harness::new(CausalLayer, &params(&[0, 1]), &mut platform);
        assert!(causal
            .run_up(message_from(1, &[0, 2], b"second"), &mut platform)
            .is_empty());
        let released = causal.run_up(message_from(1, &[0, 1], b"first"), &mut platform);
        assert_eq!(released.len(), 2);
        assert_eq!(
            released[0]
                .get::<DataEvent>()
                .unwrap()
                .message
                .payload()
                .as_ref(),
            b"first"
        );
    }

    #[test]
    fn view_install_resets_the_clock_and_flushes_pending() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut causal = Harness::new(CausalLayer, &params(&[0, 1]), &mut platform);
        assert!(causal
            .run_up(message_from(1, &[0, 5], b"future"), &mut platform)
            .is_empty());

        let released = causal.run_down(
            Event::down(ViewInstall {
                view: View::new(1, vec![NodeId(0), NodeId(1)]),
            }),
            &mut platform,
        );
        // ViewInstall continues downward; the flushed pending message goes up.
        assert!(released.iter().any(|event| event.is::<ViewInstall>()));
        let up = causal.drain_up();
        assert_eq!(up.len(), 1, "pending message flushed on view change");
    }
}
