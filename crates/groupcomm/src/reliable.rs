//! NACK-based reliable multicast with FIFO delivery.
//!
//! This is the "detect and recover" strategy the paper recommends for small
//! error rates: receivers detect sequence gaps and request retransmission
//! from the original sender with a negative acknowledgement; the sender keeps
//! a bounded buffer of recently sent messages to serve those requests.
//! Delivery is per-sender FIFO (the layer subsumes [`crate::fifo`]).

use std::collections::BTreeMap;

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::NackRequest;
use crate::headers::{NackHeader, SeqHeader};

/// Registered name of the reliable multicast layer.
pub const RELIABLE_LAYER: &str = "reliable";

/// Timer tag used for the periodic gap check.
const GAP_CHECK_TAG: u32 = 1;

/// The NACK-based reliable multicast layer.
///
/// Parameters:
///
/// * `retention` — number of sent messages kept for retransmission
///   (default 2048);
/// * `nack_interval_ms` — how often gaps are re-examined and NACKed
///   (default 200 ms).
pub struct ReliableLayer;

impl Layer for ReliableLayer {
    fn name(&self) -> &str {
        RELIABLE_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<NackRequest>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["NackRequest"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(ReliableSession {
            retention: param_or(params, "retention", 2048usize).max(16),
            nack_interval_ms: param_or(params, "nack_interval_ms", 200u64).max(10),
            next_seq: 0,
            sent: BTreeMap::new(),
            incoming: BTreeMap::new(),
            retransmissions: 0,
            nacks_sent: 0,
        })
    }
}

#[derive(Debug, Default)]
struct IncomingState {
    expected: u64,
    pending: BTreeMap<u64, Event>,
}

/// Session state of the reliable multicast layer.
#[derive(Debug)]
pub struct ReliableSession {
    retention: usize,
    nack_interval_ms: u64,
    next_seq: u64,
    /// Recently sent messages (with the sequence header already pushed).
    // bound: capped at `retention` -- the oldest entry is evicted on overflow.
    sent: BTreeMap<u64, Message>,
    // A BTreeMap, not a HashMap: `send_nacks` iterates per-origin state and
    // emits NACK packets — their on-wire order must not depend on hash
    // state (det:map-iter).
    // bound: one entry per origin in the group; each per-origin reorder buffer drains as NACK repair fills its gaps.
    incoming: BTreeMap<NodeId, IncomingState>,
    retransmissions: u64,
    nacks_sent: u64,
}

impl ReliableSession {
    fn send_nacks(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let mut requests: Vec<(NodeId, Vec<u64>)> = Vec::new();
        for (origin, state) in &self.incoming {
            let Some(highest) = state.pending.keys().next_back().copied() else {
                continue;
            };
            let missing: Vec<u64> = (state.expected..highest)
                .filter(|seq| !state.pending.contains_key(seq))
                .take(64)
                .collect();
            if !missing.is_empty() {
                requests.push((*origin, missing));
            }
        }
        for (origin, missing) in requests {
            if origin == local {
                continue;
            }
            let mut message = Message::new();
            message.push(&NackHeader {
                origin: local,
                missing,
            });
            self.nacks_sent += 1;
            ctx.dispatch(Event::down(NackRequest::new(
                local,
                Dest::Node(origin),
                message,
            )));
        }
    }

    fn deliver_ready(&mut self, origin: NodeId, ctx: &mut EventContext<'_>) {
        let Some(state) = self.incoming.get_mut(&origin) else {
            return;
        };
        while let Some(event) = state.pending.remove(&state.expected) {
            state.expected += 1;
            ctx.forward(event);
        }
    }
}

impl Session for ReliableSession {
    fn layer_name(&self) -> &str {
        RELIABLE_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        // Periodic gap check.
        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == RELIABLE_LAYER {
                if timer.tag == GAP_CHECK_TAG {
                    self.send_nacks(ctx);
                    ctx.set_timer(self.nack_interval_ms, GAP_CHECK_TAG);
                }
                return;
            }
            ctx.forward(event);
            return;
        }
        if event.is::<ChannelInit>() {
            ctx.set_timer(self.nack_interval_ms, GAP_CHECK_TAG);
            ctx.forward(event);
            return;
        }
        // Retransmission requests addressed to this node.
        if event.is::<NackRequest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(nack) = event.get_mut::<NackRequest>() else {
                return;
            };
            let requester = nack.header.source;
            let Ok(header) = nack.message.pop::<NackHeader>() else {
                return;
            };
            let local = ctx.node_id();
            for seq in header.missing {
                if let Some(stored) = self.sent.get(&seq) {
                    self.retransmissions += 1;
                    ctx.dispatch(Event::down(DataEvent::new(
                        local,
                        Dest::Node(requester),
                        stored.clone(),
                    )));
                }
            }
            return;
        }

        match event.direction {
            Direction::Down => {
                if let Some(data) = event.get_mut::<DataEvent>() {
                    self.next_seq += 1;
                    data.message.push(&SeqHeader { seq: self.next_seq });
                    self.sent.insert(self.next_seq, data.message.clone());
                    if self.sent.len() > self.retention {
                        let oldest = *self.sent.keys().next().expect("non-empty");
                        self.sent.remove(&oldest);
                    }
                }
                ctx.forward(event);
            }
            Direction::Up => {
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(header) = data.message.pop::<SeqHeader>() else {
                    return;
                };
                let origin = data.header.source;
                let state = self
                    .incoming
                    .entry(origin)
                    .or_insert_with(|| IncomingState {
                        expected: 1,
                        pending: BTreeMap::new(),
                    });
                if header.seq < state.expected || state.pending.contains_key(&header.seq) {
                    return; // duplicate
                }
                if header.seq == state.expected {
                    state.expected += 1;
                    ctx.forward(event);
                    self.deliver_ready(origin, ctx);
                } else {
                    state.pending.insert(header.seq, event);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn harness(platform: &mut TestPlatform) -> Harness {
        Harness::new(ReliableLayer, &LayerParams::new(), platform)
    }

    fn incoming(origin: u32, seq: u64, payload: &[u8]) -> Event {
        let mut message = Message::with_payload(payload.to_vec());
        message.push(&SeqHeader { seq });
        Event::up(DataEvent::new(
            NodeId(origin),
            Dest::Node(NodeId(9)),
            message,
        ))
    }

    #[test]
    fn sender_assigns_sequence_numbers_and_retains_messages() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut reliable = harness(&mut platform);
        let out = reliable.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"a"[..]),
            )),
            &mut platform,
        );
        assert_eq!(out.len(), 1);
        let seq: SeqHeader = out[0]
            .get::<DataEvent>()
            .unwrap()
            .message
            .peek()
            .expect("sequence header present");
        assert_eq!(seq.seq, 1);
    }

    #[test]
    fn in_order_messages_are_delivered_and_gaps_are_buffered() {
        let mut platform = TestPlatform::new(NodeId(9));
        let mut reliable = harness(&mut platform);
        assert_eq!(
            reliable.run_up(incoming(1, 1, b"a"), &mut platform).len(),
            1
        );
        assert!(reliable
            .run_up(incoming(1, 3, b"c"), &mut platform)
            .is_empty());
        let released = reliable.run_up(incoming(1, 2, b"b"), &mut platform);
        assert_eq!(
            released.len(),
            2,
            "filling the gap releases both buffered messages"
        );
    }

    #[test]
    fn gap_check_timer_sends_a_nack_for_missing_messages() {
        let mut platform = TestPlatform::new(NodeId(9));
        let mut reliable = harness(&mut platform);
        reliable.run_up(incoming(1, 1, b"a"), &mut platform);
        reliable.run_up(incoming(1, 4, b"d"), &mut platform);

        // The ChannelInit timer was armed at harness construction; fire it.
        let timers: Vec<_> = platform.timers.clone();
        assert!(!timers.is_empty(), "gap-check timer armed at init");
        reliable.fire_timer(timers[0].1, &mut platform);

        let down = reliable.drain_down();
        let nacks: Vec<&Event> = down.iter().filter(|e| e.is::<NackRequest>()).collect();
        assert_eq!(nacks.len(), 1);
        let nack = nacks[0].get::<NackRequest>().unwrap();
        assert_eq!(nack.header.dest, Dest::Node(NodeId(1)));
        let header: NackHeader = nack.message.peek().unwrap();
        assert_eq!(header.missing, vec![2, 3]);
    }

    #[test]
    fn nack_requests_trigger_retransmissions_from_the_sent_buffer() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut reliable = harness(&mut platform);
        for payload in [&b"a"[..], &b"b"[..], &b"c"[..]] {
            reliable.run_down(
                Event::down(DataEvent::to_group(
                    NodeId(1),
                    Message::with_payload(payload.to_vec()),
                )),
                &mut platform,
            );
        }

        let mut message = Message::new();
        message.push(&NackHeader {
            origin: NodeId(5),
            missing: vec![2, 3],
        });
        let nack = Event::up(NackRequest::new(NodeId(5), Dest::Node(NodeId(1)), message));
        reliable.run_up(nack, &mut platform);

        let down = reliable.drain_down();
        let retransmitted: Vec<&Event> = down.iter().filter(|e| e.is::<DataEvent>()).collect();
        assert_eq!(retransmitted.len(), 2);
        assert!(retransmitted
            .iter()
            .all(|e| e.get::<DataEvent>().unwrap().header.dest == Dest::Node(NodeId(5))));
    }

    #[test]
    fn nacks_for_unknown_sequences_are_ignored() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut reliable = harness(&mut platform);
        let mut message = Message::new();
        message.push(&NackHeader {
            origin: NodeId(5),
            missing: vec![100],
        });
        reliable.run_up(
            Event::up(NackRequest::new(NodeId(5), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        assert!(reliable.drain_down().is_empty());
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut platform = TestPlatform::new(NodeId(9));
        let mut reliable = harness(&mut platform);
        assert_eq!(
            reliable.run_up(incoming(1, 1, b"a"), &mut platform).len(),
            1
        );
        assert!(reliable
            .run_up(incoming(1, 1, b"a"), &mut platform)
            .is_empty());
        // Duplicate of a buffered (not yet delivered) message.
        assert!(reliable
            .run_up(incoming(1, 3, b"c"), &mut platform)
            .is_empty());
        assert!(reliable
            .run_up(incoming(1, 3, b"c"), &mut platform)
            .is_empty());
    }

    #[test]
    fn retention_is_bounded() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut params = LayerParams::new();
        params.insert("retention".into(), "16".into());
        let mut reliable = Harness::new(ReliableLayer, &params, &mut platform);
        for _ in 0..64 {
            reliable.run_down(
                Event::down(DataEvent::to_group(
                    NodeId(1),
                    Message::with_payload(&b"x"[..]),
                )),
                &mut platform,
            );
        }
        // Requesting an evicted sequence number yields nothing; a recent one works.
        let mut message = Message::new();
        message.push(&NackHeader {
            origin: NodeId(5),
            missing: vec![1, 64],
        });
        reliable.run_up(
            Event::up(NackRequest::new(NodeId(5), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        let retransmitted = reliable.drain_down();
        assert_eq!(
            retransmitted.iter().filter(|e| e.is::<DataEvent>()).count(),
            1
        );
    }
}
