//! A gossip-based failure detector.
//!
//! Every `hb_interval_ms` the layer increments its own heartbeat counter and
//! pushes a compact [`LivenessDigest`] — every member's highest known counter
//! — to `fanout` random peers. Receivers merge entries that are newer than
//! their own, so counters spread epidemically in `O(log n)` rounds while each
//! node sends only `fanout` control messages per interval (instead of the
//! `n - 1` of an all-to-all heartbeat multicast). Suspicion is derived from
//! *digest age*: a member whose counter has not advanced (and that has not
//! been heard from directly) for `suspect_timeout_ms` is suspected, and a
//! [`Suspect`] event travels up the stack so the membership layer can propose
//! a new view. When a suspected member's counter advances again, an [`Alive`]
//! event heals the false suspicion.
//!
//! Because counter propagation takes roughly `log_fanout(n)` intervals,
//! `suspect_timeout_ms` should be at least `(log_fanout(n) + 2)` heartbeat
//! intervals for large groups.
//!
//! Setting `fanout` to `0` restores the legacy all-to-all heartbeat multicast
//! (used by benchmarks as the O(n²) baseline).

use std::collections::{HashMap, HashSet};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::{Alive, Heartbeat, Suspect, ViewInstall};
use crate::headers::LivenessDigest;

/// Registered name of the failure detector layer.
pub const FD_LAYER: &str = "fd";

/// Timer tag for the heartbeat/suspicion check.
const TICK_TAG: u32 = 1;

/// The gossip failure detector layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership;
/// * `hb_interval_ms` — gossip period (default 500 ms);
/// * `suspect_timeout_ms` — digest-age threshold before suspicion
///   (default 2000 ms);
/// * `fanout` — random peers each digest is pushed to per interval
///   (default 3; `0` selects the legacy all-to-all heartbeat multicast).
pub struct FailureDetectorLayer;

impl Layer for FailureDetectorLayer {
    fn name(&self) -> &str {
        FD_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<Heartbeat>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["Heartbeat", "Suspect", "Alive"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let members = param_node_list(params, "members");
        Box::new(FailureDetectorSession {
            member_set: members.iter().copied().collect(),
            members,
            hb_interval_ms: param_or(params, "hb_interval_ms", 500u64).max(10),
            suspect_timeout_ms: param_or(params, "suspect_timeout_ms", 2000u64).max(50),
            fanout: param_or(params, "fanout", 3usize),
            counters: HashMap::new(),
            last_advance: HashMap::new(),
            suspected: HashSet::new(),
            heartbeats_sent: 0,
        })
    }
}

/// Session state of the failure detector.
#[derive(Debug)]
pub struct FailureDetectorSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    /// Same membership as `members`, indexed for the per-digest-entry check
    /// (a `Vec::contains` per entry would make every received digest O(n²)).
    // bound: mirrors `members` -- rebuilt on view install, <= view size.
    member_set: HashSet<NodeId>,
    hb_interval_ms: u64,
    suspect_timeout_ms: u64,
    /// Digest push fan-out; `0` selects the legacy all-to-all heartbeat.
    fanout: usize,
    /// Highest known heartbeat counter per member (the local node's own
    /// entry is advanced on every tick).
    // bound: retained against the membership on every view install.
    counters: HashMap<NodeId, u64>,
    /// Local time at which each member's counter last advanced (or the
    /// member was last heard from directly).
    // bound: retained against the membership on every view install.
    last_advance: HashMap<NodeId, u64>,
    // bound: subset of `members`; retained on view install.
    suspected: HashSet<NodeId>,
    heartbeats_sent: u64,
}

impl FailureDetectorSession {
    fn heard_from(&mut self, node: NodeId, now: u64, ctx: &mut EventContext<'_>) {
        self.last_advance.insert(node, now);
        if self.suspected.remove(&node) {
            // The suspicion was false: announce the recovery so upper layers
            // (e.g. the Core control layer's ack quorum) can re-admit the node.
            ctx.dispatch(Event::up(Alive { node }));
        }
    }

    /// Merges a received digest: entries with a higher counter than the local
    /// view count as fresh liveness evidence for that member.
    fn merge_digest(&mut self, digest: &LivenessDigest, now: u64, ctx: &mut EventContext<'_>) {
        for (node, counter) in &digest.entries {
            if !self.member_set.contains(node) {
                continue;
            }
            let known = self.counters.entry(*node).or_insert(0);
            if *counter > *known {
                *known = *counter;
                self.heard_from(*node, now, ctx);
            }
        }
    }

    fn tick(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let now = ctx.now_ms();

        // Advance the local counter and push the digest (or, in legacy mode,
        // a plain heartbeat to everybody). The counter is floored at the
        // local tick count (`now / interval`) so it stays monotonic across a
        // stack replacement: a freshly recreated session restarting from 1
        // would look *stale* to peers still holding the pre-replacement
        // counter, and the node would silently lose its third-party liveness
        // evidence until the counter caught up.
        let tick_floor = now / self.hb_interval_ms;
        let counter = self.counters.entry(local).or_insert(0);
        *counter = (*counter + 1).max(tick_floor);
        self.last_advance.insert(local, now);
        let targets = if self.fanout == 0 {
            self.members
                .iter()
                .copied()
                .filter(|member| *member != local)
                .collect()
        } else {
            crate::gossip::sample_peers(&self.members, &[local], self.fanout, ctx)
        };
        if !targets.is_empty() {
            let mut message = Message::new();
            if self.fanout != 0 {
                let mut entries: Vec<(NodeId, u64)> = self
                    .members
                    .iter()
                    .filter_map(|member| {
                        self.counters.get(member).map(|counter| (*member, *counter))
                    })
                    .collect();
                entries.sort_unstable_by_key(|(node, _)| node.0);
                message.push(&LivenessDigest { entries });
            }
            self.heartbeats_sent += 1;
            ctx.dispatch(Event::down(Heartbeat::new(
                local,
                Dest::Nodes(targets),
                message,
            )));
        }

        // Raise suspicions for members whose counter went stale.
        let mut newly_suspected = Vec::new();
        for member in &self.members {
            if *member == local || self.suspected.contains(member) {
                continue;
            }
            let last = self.last_advance.get(member).copied().unwrap_or(0);
            if now.saturating_sub(last) >= self.suspect_timeout_ms {
                newly_suspected.push(*member);
            }
        }
        for member in newly_suspected {
            self.suspected.insert(member);
            ctx.dispatch(Event::up(Suspect { node: member }));
        }

        ctx.set_timer(self.hb_interval_ms, TICK_TAG);
    }
}

impl Session for FailureDetectorSession {
    fn layer_name(&self) -> &str {
        FD_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            let now = ctx.now_ms();
            for member in self.members.clone() {
                self.last_advance.insert(member, now);
            }
            ctx.set_timer(self.hb_interval_ms, TICK_TAG);
            ctx.forward(event);
            return;
        }
        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == FD_LAYER {
                if timer.tag == TICK_TAG {
                    self.tick(ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            self.member_set = self.members.iter().copied().collect();
            self.suspected.retain(|node| self.members.contains(node));
            self.counters.retain(|node, _| self.members.contains(node));
            // Drop expelled members' timestamps too: a member expelled and
            // later re-admitted by a join must get a fresh grace period, not
            // be instantly re-suspected off its stale pre-expulsion age.
            self.last_advance
                .retain(|node, _| self.members.contains(node));
            let now = ctx.now_ms();
            for member in self.members.clone() {
                self.last_advance.entry(member).or_insert(now);
            }
            ctx.forward(event);
            return;
        }
        if event.is::<Heartbeat>() {
            if event.direction == Direction::Up {
                let now = ctx.now_ms();
                let Some(hb) = event.get_mut::<Heartbeat>() else {
                    return;
                };
                let source = hb.header.source;
                // A gossip heartbeat carries a digest; a legacy heartbeat is
                // bare. Either way the sender itself is demonstrably alive.
                let digest = hb.message.pop::<LivenessDigest>().ok();
                if let Some(digest) = digest {
                    self.merge_digest(&digest, now, ctx);
                }
                self.heard_from(source, now, ctx);
                // Heartbeats are absorbed; they carry no application meaning.
                return;
            }
            ctx.forward(event);
            return;
        }
        if event.direction == Direction::Up {
            if let Some(data) = event.get_mut::<DataEvent>() {
                let source = data.header.source;
                self.heard_from(source, ctx.now_ms(), ctx);
            }
        }
        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn fd_params(members: &[u32], interval: u64, timeout: u64) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("hb_interval_ms".into(), interval.to_string());
        params.insert("suspect_timeout_ms".into(), timeout.to_string());
        params
    }

    fn fd_params_with_fanout(
        members: &[u32],
        interval: u64,
        timeout: u64,
        fanout: usize,
    ) -> LayerParams {
        let mut params = fd_params(members, interval, timeout);
        params.insert("fanout".into(), fanout.to_string());
        params
    }

    fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            harness.fire_timer(key, platform);
        }
    }

    /// A digest-carrying heartbeat as a peer's fd layer would emit it.
    fn digest_heartbeat(from: u32, to: u32, entries: &[(u32, u64)]) -> Event {
        let mut message = Message::new();
        message.push(&LivenessDigest {
            entries: entries
                .iter()
                .map(|(node, counter)| (NodeId(*node), *counter))
                .collect(),
        });
        Event::up(Heartbeat::new(
            NodeId(from),
            Dest::Node(NodeId(to)),
            message,
        ))
    }

    #[test]
    fn each_tick_pushes_one_digest_to_at_most_fanout_peers() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (1..=8).collect();
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params_with_fanout(&members, 100, 1000, 3),
            &mut platform,
        );

        fire_pending_timers(&mut fd, &mut platform);
        let down = fd.drain_down();
        let heartbeats: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<Heartbeat>())
            .collect();
        assert_eq!(heartbeats.len(), 1, "one digest push per tick");
        let hb = heartbeats[0].get::<Heartbeat>().unwrap();
        let Dest::Nodes(targets) = &hb.header.dest else {
            panic!("gossip heartbeat must address a node list");
        };
        assert_eq!(targets.len(), 3, "fan-out bounds the per-tick traffic");
        assert!(targets.iter().all(|node| *node != NodeId(1)));

        // The carried digest lists the local node's advanced counter.
        let digest = hb.message.clone().pop::<LivenessDigest>().unwrap();
        assert!(digest.entries.contains(&(NodeId(1), 1)));
    }

    #[test]
    fn small_groups_are_covered_entirely() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 1000),
            &mut platform,
        );
        fire_pending_timers(&mut fd, &mut platform);
        let down = fd.drain_down();
        let hb = down.iter().find(|event| event.is::<Heartbeat>()).unwrap();
        assert_eq!(
            hb.get::<Heartbeat>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2), NodeId(3)])
        );
    }

    #[test]
    fn fanout_zero_restores_the_all_to_all_heartbeat() {
        let mut platform = TestPlatform::new(NodeId(1));
        let members: Vec<u32> = (1..=6).collect();
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params_with_fanout(&members, 100, 1000, 0),
            &mut platform,
        );
        fire_pending_timers(&mut fd, &mut platform);
        let down = fd.drain_down();
        let hb = down.iter().find(|event| event.is::<Heartbeat>()).unwrap();
        let Dest::Nodes(targets) = &hb.get::<Heartbeat>().unwrap().header.dest else {
            panic!("heartbeat must address a node list");
        };
        assert_eq!(targets.len(), 5, "legacy mode addresses every other member");
        // Legacy heartbeats carry no digest.
        assert!(hb
            .get::<Heartbeat>()
            .unwrap()
            .message
            .clone()
            .pop::<LivenessDigest>()
            .is_err());
    }

    #[test]
    fn silent_members_are_eventually_suspected() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );

        let mut suspects = Vec::new();
        for _ in 0..5 {
            platform.advance(100);
            fire_pending_timers(&mut fd, &mut platform);
            suspects.extend(
                fd.drain_up()
                    .into_iter()
                    .filter(|event| event.is::<Suspect>()),
            );
        }
        assert_eq!(suspects.len(), 1, "member 2 suspected exactly once");
        assert_eq!(suspects[0].get::<Suspect>().unwrap().node, NodeId(2));
    }

    #[test]
    fn advancing_counters_keep_members_alive() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );

        let mut suspects = 0;
        for round in 0..6u64 {
            platform.advance(100);
            // Node 2's digest arrives with a freshly advanced counter.
            fd.run_up(digest_heartbeat(2, 1, &[(2, round + 1)]), &mut platform);
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 0);
    }

    #[test]
    fn third_party_digests_count_as_liveness_evidence() {
        // Node 1 never hears node 3 directly — only through node 2's digests.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 250),
            &mut platform,
        );

        let mut suspects = 0;
        for round in 0..6u64 {
            platform.advance(100);
            fd.run_up(
                digest_heartbeat(2, 1, &[(2, round + 1), (3, round + 1)]),
                &mut platform,
            );
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 0, "relayed counters prove node 3 alive");
    }

    #[test]
    fn stale_counters_do_not_refresh_liveness() {
        // Node 3 crashed at counter 5; node 2 keeps gossiping the stale
        // value, which must not prevent node 3's suspicion.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 250),
            &mut platform,
        );
        fd.run_up(digest_heartbeat(2, 1, &[(2, 1), (3, 5)]), &mut platform);

        let mut suspected = Vec::new();
        for round in 0..6u64 {
            platform.advance(100);
            fd.run_up(
                digest_heartbeat(2, 1, &[(2, round + 2), (3, 5)]),
                &mut platform,
            );
            fire_pending_timers(&mut fd, &mut platform);
            suspected.extend(
                fd.drain_up()
                    .into_iter()
                    .filter_map(|event| event.get::<Suspect>().map(|s| s.node)),
            );
        }
        assert_eq!(suspected, vec![NodeId(3)]);
    }

    #[test]
    fn an_advancing_counter_heals_a_false_suspicion() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 250),
            &mut platform,
        );
        fd.run_up(digest_heartbeat(2, 1, &[(2, 1), (3, 1)]), &mut platform);

        // Node 3 goes silent long enough to be suspected.
        let mut suspects = 0;
        for round in 0..4u64 {
            platform.advance(100);
            suspects += fd
                .run_up(
                    digest_heartbeat(2, 1, &[(2, round + 2), (3, 1)]),
                    &mut platform,
                )
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 1);

        // Its counter advances again (relayed by node 2): Alive is raised.
        let alive: Vec<NodeId> = fd
            .run_up(digest_heartbeat(2, 1, &[(2, 9), (3, 2)]), &mut platform)
            .into_iter()
            .filter_map(|event| event.get::<Alive>().map(|alive| alive.node))
            .collect();
        assert_eq!(alive, vec![NodeId(3)]);
    }

    #[test]
    fn data_traffic_also_counts_as_liveness() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );

        let mut suspects = 0;
        for _ in 0..6 {
            platform.advance(100);
            let delivered = fd.run_up(
                Event::up(DataEvent::new(
                    NodeId(2),
                    Dest::Node(NodeId(1)),
                    Message::with_payload(&b"still here"[..]),
                )),
                &mut platform,
            );
            assert_eq!(delivered.len(), 1, "data is forwarded, not absorbed");
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 0);
    }

    #[test]
    fn heartbeats_are_absorbed_and_not_delivered_upward() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 1000),
            &mut platform,
        );
        let delivered = fd.run_up(digest_heartbeat(2, 1, &[(2, 1)]), &mut platform);
        assert!(delivered.is_empty());
    }

    #[test]
    fn digest_entries_for_unknown_nodes_are_ignored() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );
        // An entry for node 9 (not a member) must not create tracking state.
        fd.run_up(digest_heartbeat(2, 1, &[(2, 1), (9, 44)]), &mut platform);
        platform.advance(300);
        fire_pending_timers(&mut fd, &mut platform);
        let suspected: Vec<NodeId> = fd
            .drain_up()
            .into_iter()
            .filter_map(|event| event.get::<Suspect>().map(|s| s.node))
            .collect();
        assert_eq!(suspected, vec![NodeId(2)], "node 9 is never tracked");
    }

    #[test]
    fn a_readmitted_member_gets_a_fresh_grace_period() {
        // Regression: expulsion must drop the member's last-advance
        // timestamp — a member expelled and later re-admitted by a join
        // used to be re-suspected off its stale pre-expulsion age on the
        // very next tick, before its first digest could possibly arrive.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 300),
            &mut platform,
        );

        // Node 2 is expelled, then stays away far past the suspect timeout.
        let solo = crate::view::View::new(1, vec![NodeId(1)]);
        fd.run_down(Event::down(ViewInstall { view: solo }), &mut platform);
        platform.advance(5000);

        // Node 2 rejoins; the next tick must not suspect it instantly.
        let rejoined = crate::view::View::new(2, vec![NodeId(1), NodeId(2)]);
        fd.run_down(Event::down(ViewInstall { view: rejoined }), &mut platform);
        fire_pending_timers(&mut fd, &mut platform);
        assert!(
            fd.drain_up().iter().all(|event| !event.is::<Suspect>()),
            "a rejoiner gets the same grace period as a fresh member"
        );

        // The grace period is a grace period, not immunity: staying silent
        // past the timeout still raises the suspicion.
        let mut suspects = 0;
        for _ in 0..4 {
            platform.advance(100);
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 1);
    }

    #[test]
    fn view_install_clears_suspicions_of_removed_members() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 150),
            &mut platform,
        );

        platform.advance(200);
        fire_pending_timers(&mut fd, &mut platform);
        let suspects = fd
            .drain_up()
            .iter()
            .filter(|event| event.is::<Suspect>())
            .count();
        assert_eq!(suspects, 2);

        // Install a view that removes node 3; only nodes 1 and 2 remain.
        let view = crate::view::View::new(1, vec![NodeId(1), NodeId(2)]);
        fd.run_down(Event::down(ViewInstall { view }), &mut platform);

        // Node 2 resumes gossiping and is therefore never re-suspected.
        for round in 0..3u64 {
            platform.advance(100);
            fd.run_up(digest_heartbeat(2, 1, &[(2, round + 1)]), &mut platform);
            fire_pending_timers(&mut fd, &mut platform);
        }
        let late_suspects = fd
            .drain_up()
            .iter()
            .filter(|event| event.is::<Suspect>())
            .count();
        assert_eq!(late_suspects, 0);
    }
}
