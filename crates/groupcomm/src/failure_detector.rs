//! A heartbeat-based failure detector.
//!
//! Every `hb_interval_ms` the layer multicasts a small heartbeat to the other
//! group members; a member that has not been heard from (heartbeat or data)
//! for `suspect_timeout_ms` is suspected, and a [`Suspect`] event travels up
//! the stack so the membership layer can propose a new view.

use std::collections::{HashMap, HashSet};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::{Alive, Heartbeat, Suspect, ViewInstall};

/// Registered name of the failure detector layer.
pub const FD_LAYER: &str = "fd";

/// Timer tag for the heartbeat/suspicion check.
const TICK_TAG: u32 = 1;

/// The heartbeat failure detector layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership;
/// * `hb_interval_ms` — heartbeat period (default 500 ms);
/// * `suspect_timeout_ms` — silence threshold before suspicion (default 2000 ms).
pub struct FailureDetectorLayer;

impl Layer for FailureDetectorLayer {
    fn name(&self) -> &str {
        FD_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<Heartbeat>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["Heartbeat", "Suspect", "Alive"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(FailureDetectorSession {
            members: param_node_list(params, "members"),
            hb_interval_ms: param_or(params, "hb_interval_ms", 500u64).max(10),
            suspect_timeout_ms: param_or(params, "suspect_timeout_ms", 2000u64).max(50),
            last_heard: HashMap::new(),
            suspected: HashSet::new(),
            heartbeats_sent: 0,
        })
    }
}

/// Session state of the failure detector.
#[derive(Debug)]
pub struct FailureDetectorSession {
    members: Vec<NodeId>,
    hb_interval_ms: u64,
    suspect_timeout_ms: u64,
    last_heard: HashMap<NodeId, u64>,
    suspected: HashSet<NodeId>,
    heartbeats_sent: u64,
}

impl FailureDetectorSession {
    fn heard_from(&mut self, node: NodeId, now: u64, ctx: &mut EventContext<'_>) {
        self.last_heard.insert(node, now);
        if self.suspected.remove(&node) {
            // The suspicion was false: announce the recovery so upper layers
            // (e.g. the Core control layer's ack quorum) can re-admit the node.
            ctx.dispatch(Event::up(Alive { node }));
        }
    }

    fn tick(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let now = ctx.now_ms();

        // Send a heartbeat to everybody else.
        let others: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|member| *member != local)
            .collect();
        if !others.is_empty() {
            self.heartbeats_sent += 1;
            ctx.dispatch(Event::down(Heartbeat::new(
                local,
                Dest::Nodes(others),
                Message::new(),
            )));
        }

        // Raise suspicions for silent members.
        let mut newly_suspected = Vec::new();
        for member in &self.members {
            if *member == local || self.suspected.contains(member) {
                continue;
            }
            let last = self.last_heard.get(member).copied().unwrap_or(0);
            if now.saturating_sub(last) >= self.suspect_timeout_ms {
                newly_suspected.push(*member);
            }
        }
        for member in newly_suspected {
            self.suspected.insert(member);
            ctx.dispatch(Event::up(Suspect { node: member }));
        }

        ctx.set_timer(self.hb_interval_ms, TICK_TAG);
    }
}

impl Session for FailureDetectorSession {
    fn layer_name(&self) -> &str {
        FD_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            let now = ctx.now_ms();
            for member in self.members.clone() {
                self.last_heard.insert(member, now);
            }
            ctx.set_timer(self.hb_interval_ms, TICK_TAG);
            ctx.forward(event);
            return;
        }
        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == FD_LAYER {
                if timer.tag == TICK_TAG {
                    self.tick(ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            self.suspected.retain(|node| self.members.contains(node));
            let now = ctx.now_ms();
            for member in self.members.clone() {
                self.last_heard.entry(member).or_insert(now);
            }
            ctx.forward(event);
            return;
        }
        if event.is::<Heartbeat>() {
            if event.direction == Direction::Up {
                let source = event.get::<Heartbeat>().map(|hb| hb.header.source);
                if let Some(source) = source {
                    self.heard_from(source, ctx.now_ms(), ctx);
                }
                // Heartbeats are absorbed; they carry no application meaning.
                return;
            }
            ctx.forward(event);
            return;
        }
        if event.direction == Direction::Up {
            if let Some(data) = event.get_mut::<DataEvent>() {
                let source = data.header.source;
                self.heard_from(source, ctx.now_ms(), ctx);
            }
        }
        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn fd_params(members: &[u32], interval: u64, timeout: u64) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("hb_interval_ms".into(), interval.to_string());
        params.insert("suspect_timeout_ms".into(), timeout.to_string());
        params
    }

    fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        for (_, key) in timers {
            harness.fire_timer(key, platform);
        }
    }

    #[test]
    fn heartbeats_are_sent_on_every_tick() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 1000),
            &mut platform,
        );

        fire_pending_timers(&mut fd, &mut platform);
        let down = fd.drain_down();
        let heartbeats = down.iter().filter(|event| event.is::<Heartbeat>()).count();
        assert_eq!(heartbeats, 1);
        let hb = down.iter().find(|event| event.is::<Heartbeat>()).unwrap();
        assert_eq!(
            hb.get::<Heartbeat>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2), NodeId(3)])
        );
    }

    #[test]
    fn silent_members_are_eventually_suspected() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );

        let mut suspects = Vec::new();
        for _ in 0..5 {
            platform.advance(100);
            fire_pending_timers(&mut fd, &mut platform);
            suspects.extend(
                fd.drain_up()
                    .into_iter()
                    .filter(|event| event.is::<Suspect>()),
            );
        }
        assert_eq!(suspects.len(), 1, "member 2 suspected exactly once");
        assert_eq!(suspects[0].get::<Suspect>().unwrap().node, NodeId(2));
    }

    #[test]
    fn heartbeats_keep_members_alive() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );

        let mut suspects = 0;
        for _ in 0..6 {
            platform.advance(100);
            // Node 2 keeps sending heartbeats.
            fd.run_up(
                Event::up(Heartbeat::new(
                    NodeId(2),
                    Dest::Node(NodeId(1)),
                    Message::new(),
                )),
                &mut platform,
            );
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 0);
    }

    #[test]
    fn data_traffic_also_counts_as_liveness() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 250),
            &mut platform,
        );

        let mut suspects = 0;
        for _ in 0..6 {
            platform.advance(100);
            let delivered = fd.run_up(
                Event::up(DataEvent::new(
                    NodeId(2),
                    Dest::Node(NodeId(1)),
                    Message::with_payload(&b"still here"[..]),
                )),
                &mut platform,
            );
            assert_eq!(delivered.len(), 1, "data is forwarded, not absorbed");
            fire_pending_timers(&mut fd, &mut platform);
            suspects += fd
                .drain_up()
                .iter()
                .filter(|event| event.is::<Suspect>())
                .count();
        }
        assert_eq!(suspects, 0);
    }

    #[test]
    fn heartbeats_are_absorbed_and_not_delivered_upward() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2], 100, 1000),
            &mut platform,
        );
        let delivered = fd.run_up(
            Event::up(Heartbeat::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        assert!(delivered.is_empty());
    }

    #[test]
    fn view_install_clears_suspicions_of_removed_members() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fd = Harness::new(
            FailureDetectorLayer,
            &fd_params(&[1, 2, 3], 100, 150),
            &mut platform,
        );

        platform.advance(200);
        fire_pending_timers(&mut fd, &mut platform);
        let suspects = fd
            .drain_up()
            .iter()
            .filter(|event| event.is::<Suspect>())
            .count();
        assert_eq!(suspects, 2);

        // Install a view that removes node 3; only nodes 1 and 2 remain.
        let view = crate::view::View::new(1, vec![NodeId(1), NodeId(2)]);
        fd.run_down(Event::down(ViewInstall { view }), &mut platform);

        // Node 2 resumes heartbeating and is therefore never re-suspected.
        for _ in 0..3 {
            platform.advance(100);
            fd.run_up(
                Event::up(Heartbeat::new(
                    NodeId(2),
                    Dest::Node(NodeId(1)),
                    Message::new(),
                )),
                &mut platform,
            );
            fire_pending_timers(&mut fd, &mut platform);
        }
        let late_suspects = fd
            .drain_up()
            .iter()
            .filter(|event| event.is::<Suspect>())
            .count();
        assert_eq!(late_suspects, 0);
    }
}
