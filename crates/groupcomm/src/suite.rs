//! Suite registration and standard stack compositions.
//!
//! [`register_suite`] makes every layer and sendable event type of the group
//! communication suite available to a kernel. [`StackBuilder`] produces the
//! declarative channel descriptions ([`ChannelConfig`]) for the standard
//! compositions the Morpheus Core subsystem switches between: plain
//! best-effort multicast, Mecho (hybrid scenarios), gossip (large groups),
//! NACK-based reliability, FEC, and causal or total ordering on top of view
//! synchrony.

use morpheus_appia::config::{ChannelConfig, LayerSpec};
use morpheus_appia::kernel::Kernel;
use morpheus_appia::platform::NodeId;

use crate::beb::BebLayer;
use crate::causal::CausalLayer;
use crate::events::{
    FecParity, FlushAck, GossipBatch, GossipRepairDigest, GossipRepairFloor, GossipRepairPull,
    GossipRepairPush, Heartbeat, JoinRequest, NackRequest, OrderInfo, StaleBallot, ViewCommit,
    ViewPrepare,
};
use crate::failure_detector::FailureDetectorLayer;
use crate::fec::FecLayer;
use crate::fifo::FifoLayer;
use crate::gossip::GossipLayer;
use crate::mecho::MechoLayer;
use crate::recovery::{RecoveryLayer, StateChunk, StateRequest};
use crate::reliable::ReliableLayer;
use crate::total::TotalLayer;
use crate::vsync::VsyncLayer;

/// Registers every layer and sendable event of the suite with the kernel.
///
/// The registered [`RecoveryLayer`] carries no state sections; a node
/// runtime that wants rejoin state transfer re-registers it with its
/// sections (see [`RecoveryLayer::with_sections`]) — registration replaces
/// the previous entry by name.
pub fn register_suite(kernel: &mut Kernel) {
    let layers = kernel.layers_mut();
    layers.register(BebLayer);
    layers.register(MechoLayer);
    layers.register(GossipLayer);
    layers.register(FifoLayer);
    layers.register(ReliableLayer);
    layers.register(FecLayer);
    layers.register(FailureDetectorLayer);
    layers.register(RecoveryLayer::new());
    layers.register(VsyncLayer);
    layers.register(CausalLayer);
    layers.register(TotalLayer);

    let events = kernel.events_mut();
    Heartbeat::register(events);
    NackRequest::register(events);
    GossipRepairDigest::register(events);
    GossipRepairPull::register(events);
    GossipRepairPush::register(events);
    GossipRepairFloor::register(events);
    GossipBatch::register(events);
    ViewPrepare::register(events);
    FlushAck::register(events);
    ViewCommit::register(events);
    JoinRequest::register(events);
    StaleBallot::register(events);
    StateRequest::register(events);
    StateChunk::register(events);
    FecParity::register(events);
    OrderInfo::register(events);
}

/// Which multicast micro-protocol sits at the base of the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Multicast {
    /// Plain best-effort multicast (one point-to-point send per member).
    Beb {
        /// Use native multicast when the platform offers it.
        use_native: bool,
    },
    /// The Mecho adaptive multicast.
    Mecho {
        /// Operational mode: `"wired"`, `"wireless"` or `"auto"`.
        mode: String,
        /// The fixed relay mobile nodes send to.
        relay: Option<NodeId>,
    },
    /// Epidemic multicast.
    Gossip {
        /// Number of random targets per push.
        fanout: usize,
        /// Number of forwarding rounds.
        ttl: u32,
    },
}

/// Which loss-handling micro-protocol the stack includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reliability {
    /// No recovery: best-effort delivery only.
    None,
    /// Per-sender FIFO ordering without recovery.
    Fifo,
    /// NACK-based retransmission (detect and recover).
    Reliable,
    /// XOR-parity forward error correction (mask the errors).
    Fec {
        /// Block size: one parity message per `k` data messages.
        k: usize,
    },
}

/// Which group ordering guarantee the stack provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// No inter-member ordering guarantee.
    None,
    /// Causal order (vector clocks).
    Causal,
    /// Total order (sequencer).
    Total,
}

/// Builder for the suite's standard channel compositions.
#[derive(Debug, Clone)]
pub struct StackBuilder {
    channel_name: String,
    members: Vec<NodeId>,
    multicast: Multicast,
    reliability: Reliability,
    ordering: Ordering,
    membership: bool,
    vsync_share: Option<String>,
    hb_interval_ms: u64,
    suspect_timeout_ms: u64,
    fd_fanout: usize,
    retransmit_interval_ms: u64,
    round_timeout_ms: u64,
    vsync_gossip_threshold: usize,
    transfer_chunk_bytes: usize,
    gossip_repair_interval_ms: u64,
    gossip_credit_window: usize,
    gossip_batch_max: usize,
    joining: bool,
}

impl StackBuilder {
    /// Starts a builder for a channel with the given name and membership.
    pub fn new(channel_name: impl Into<String>, members: Vec<NodeId>) -> Self {
        Self {
            channel_name: channel_name.into(),
            members,
            multicast: Multicast::Beb { use_native: false },
            reliability: Reliability::None,
            ordering: Ordering::None,
            membership: true,
            vsync_share: None,
            hb_interval_ms: 500,
            suspect_timeout_ms: 2000,
            fd_fanout: 3,
            retransmit_interval_ms: 500,
            round_timeout_ms: 4000,
            vsync_gossip_threshold: 50,
            transfer_chunk_bytes: 1024,
            gossip_repair_interval_ms: 1000,
            gossip_credit_window: 128,
            gossip_batch_max: 4,
            joining: false,
        }
    }

    /// Uses plain best-effort multicast.
    pub fn beb(mut self, use_native: bool) -> Self {
        self.multicast = Multicast::Beb { use_native };
        self
    }

    /// Uses the Mecho adaptive multicast.
    pub fn mecho(mut self, mode: impl Into<String>, relay: Option<NodeId>) -> Self {
        self.multicast = Multicast::Mecho {
            mode: mode.into(),
            relay,
        };
        self
    }

    /// Uses epidemic multicast.
    pub fn gossip(mut self, fanout: usize, ttl: u32) -> Self {
        self.multicast = Multicast::Gossip { fanout, ttl };
        self
    }

    /// Adds per-sender FIFO ordering.
    pub fn fifo(mut self) -> Self {
        self.reliability = Reliability::Fifo;
        self
    }

    /// Adds NACK-based reliable multicast.
    pub fn reliable(mut self) -> Self {
        self.reliability = Reliability::Reliable;
        self
    }

    /// Adds XOR-parity forward error correction.
    pub fn fec(mut self, k: usize) -> Self {
        self.reliability = Reliability::Fec { k };
        self
    }

    /// Adds causal ordering.
    pub fn causal(mut self) -> Self {
        self.ordering = Ordering::Causal;
        self
    }

    /// Adds sequencer-based total ordering.
    pub fn total(mut self) -> Self {
        self.ordering = Ordering::Total;
        self
    }

    /// Removes the failure detector and view-synchrony layers (bare stacks
    /// for micro-benchmarks).
    pub fn without_membership(mut self) -> Self {
        self.membership = false;
        self
    }

    /// Shares the view-synchrony session under the given key so it survives
    /// stack replacements (and can be shared across channels).
    pub fn share_vsync(mut self, key: impl Into<String>) -> Self {
        self.vsync_share = Some(key.into());
        self
    }

    /// Overrides the failure-detector timing.
    pub fn failure_detection(mut self, hb_interval_ms: u64, suspect_timeout_ms: u64) -> Self {
        self.hb_interval_ms = hb_interval_ms;
        self.suspect_timeout_ms = suspect_timeout_ms;
        self
    }

    /// Overrides the failure detector's gossip fan-out (`0` selects the
    /// legacy all-to-all heartbeat multicast).
    pub fn fd_fanout(mut self, fanout: usize) -> Self {
        self.fd_fanout = fanout;
        self
    }

    /// Overrides the view-change round timing (retransmission cadence and
    /// round timeout) — also used as the recovery layer's join-retry cadence
    /// and transfer failover timeout.
    pub fn view_change_timing(mut self, retransmit_ms: u64, round_timeout_ms: u64) -> Self {
        self.retransmit_interval_ms = retransmit_ms;
        self.round_timeout_ms = round_timeout_ms;
        self
    }

    /// Overrides the view size at which vsync flush collection switches to
    /// gossip aggregation.
    pub fn vsync_gossip_threshold(mut self, threshold: usize) -> Self {
        self.vsync_gossip_threshold = threshold;
        self
    }

    /// Overrides the state-transfer chunk size.
    pub fn transfer_chunk_bytes(mut self, bytes: usize) -> Self {
        self.transfer_chunk_bytes = bytes;
        self
    }

    /// Overrides the epidemic repair-pass cadence of gossip stacks (`0`
    /// disables the NACK/anti-entropy repair, leaving the pure push phase).
    pub fn gossip_repair_interval_ms(mut self, interval_ms: u64) -> Self {
        self.gossip_repair_interval_ms = interval_ms;
        self
    }

    /// Overrides the per-peer gossip credit window (`0` disables the credit
    /// backpressure, restoring unthrottled pushes).
    pub fn gossip_credit_window(mut self, window: usize) -> Self {
        self.gossip_credit_window = window;
        self
    }

    /// Overrides how many app messages one gossip packet may aggregate
    /// (`1` restores singleton pushes).
    pub fn gossip_batch_max(mut self, batch_max: usize) -> Self {
        self.gossip_batch_max = batch_max.max(1);
        self
    }

    /// Marks the stack as belonging to a restarted node re-entering the
    /// group: vsync starts with an empty view (blocked) and the recovery
    /// layer drives re-admission plus state transfer.
    pub fn rejoining(mut self, joining: bool) -> Self {
        self.joining = joining;
        self
    }

    fn members_param(&self) -> String {
        self.members
            .iter()
            .map(|m| m.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Builds the declarative channel description, bottom-first.
    pub fn build(&self) -> ChannelConfig {
        let members = self.members_param();
        let mut config = ChannelConfig::new(self.channel_name.clone());
        config = config.with_layer(LayerSpec::new("network"));

        config = config.with_layer(match &self.multicast {
            Multicast::Beb { use_native } => LayerSpec::new("beb")
                .with_param("members", &members)
                .with_param("use_native", use_native.to_string()),
            Multicast::Mecho { mode, relay } => {
                let mut spec = LayerSpec::new("mecho")
                    .with_param("members", &members)
                    .with_param("mode", mode);
                if let Some(relay) = relay {
                    spec = spec.with_param("relay", relay.0.to_string());
                }
                spec
            }
            Multicast::Gossip { fanout, ttl } => LayerSpec::new("gossip")
                .with_param("members", &members)
                .with_param("fanout", fanout.to_string())
                .with_param("ttl", ttl.to_string())
                .with_param(
                    "repair_interval_ms",
                    self.gossip_repair_interval_ms.to_string(),
                )
                .with_param("credit_window", self.gossip_credit_window.to_string())
                .with_param("batch_max", self.gossip_batch_max.to_string()),
        });

        match self.reliability {
            Reliability::None => {}
            Reliability::Fifo => {
                config = config.with_layer(LayerSpec::new("fifo"));
            }
            Reliability::Reliable => {
                config = config.with_layer(LayerSpec::new("reliable"));
            }
            Reliability::Fec { k } => {
                config = config.with_layer(
                    LayerSpec::new("fec")
                        .with_param("k", k.to_string())
                        .with_param("members", &members),
                );
            }
        }

        if self.membership {
            config = config.with_layer(
                LayerSpec::new("fd")
                    .with_param("members", &members)
                    .with_param("hb_interval_ms", self.hb_interval_ms.to_string())
                    .with_param("suspect_timeout_ms", self.suspect_timeout_ms.to_string())
                    .with_param("fanout", self.fd_fanout.to_string()),
            );
            // The recovery layer sits between the failure detector and view
            // synchrony: it sees Suspects (donor failover) and ViewInstalls
            // (admission) and buffers join-view data below vsync. Shared so
            // an in-flight transfer survives a stack replacement.
            config = config.with_layer(
                LayerSpec::new("recovery")
                    .with_param("members", &members)
                    .with_param("retry_ms", self.retransmit_interval_ms.to_string())
                    .with_param("transfer_timeout_ms", self.round_timeout_ms.to_string())
                    .with_param("chunk_bytes", self.transfer_chunk_bytes.to_string())
                    .with_param("joining", self.joining.to_string())
                    .shared("recovery"),
            );
            let mut vsync = LayerSpec::new("vsync")
                .with_param("members", &members)
                .with_param(
                    "retransmit_interval_ms",
                    self.retransmit_interval_ms.to_string(),
                )
                .with_param("round_timeout_ms", self.round_timeout_ms.to_string())
                .with_param("gossip_threshold", self.vsync_gossip_threshold.to_string())
                .with_param("fanout", self.fd_fanout.max(1).to_string())
                .with_param("joining", self.joining.to_string());
            if let Some(key) = &self.vsync_share {
                vsync = vsync.shared(key.clone());
            }
            config = config.with_layer(vsync);
        }

        match self.ordering {
            Ordering::None => {}
            Ordering::Causal => {
                config =
                    config.with_layer(LayerSpec::new("causal").with_param("members", &members));
            }
            Ordering::Total => {
                config = config.with_layer(LayerSpec::new("total").with_param("members", &members));
            }
        }

        config.with_layer(LayerSpec::new("app"))
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;

    use super::*;

    fn members(count: u32) -> Vec<NodeId> {
        (0..count).map(NodeId).collect()
    }

    #[test]
    fn suite_registers_all_layers_and_events() {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        for layer in [
            "beb", "mecho", "gossip", "fifo", "reliable", "fec", "fd", "recovery", "vsync",
            "causal", "total",
        ] {
            assert!(kernel.layers().contains(layer), "layer `{layer}` missing");
        }
        for event in [
            "Heartbeat",
            "NackRequest",
            "GossipRepairFloor",
            "GossipBatch",
            "ViewPrepare",
            "FlushAck",
            "ViewCommit",
            "StateRequest",
            "StateChunk",
            "FecParity",
            "OrderInfo",
        ] {
            assert!(kernel.events().contains(event), "event `{event}` missing");
        }
    }

    #[test]
    fn default_stack_is_best_effort_with_membership() {
        let config = StackBuilder::new("data", members(3)).build();
        assert_eq!(
            config.layer_names(),
            vec!["network", "beb", "fd", "recovery", "vsync", "app"]
        );
    }

    #[test]
    fn hybrid_stack_uses_mecho_with_relay() {
        let config = StackBuilder::new("data", members(4))
            .mecho("wireless", Some(NodeId(0)))
            .reliable()
            .total()
            .build();
        assert_eq!(
            config.layer_names(),
            vec!["network", "mecho", "reliable", "fd", "recovery", "vsync", "total", "app"]
        );
        let mecho = &config.layers[1];
        assert_eq!(mecho.params.get("relay").map(String::as_str), Some("0"));
        assert_eq!(
            mecho.params.get("mode").map(String::as_str),
            Some("wireless")
        );
    }

    #[test]
    fn gossip_and_fec_stacks_compose() {
        let config = StackBuilder::new("data", members(16))
            .gossip(4, 3)
            .fec(8)
            .causal()
            .without_membership()
            .build();
        assert_eq!(
            config.layer_names(),
            vec!["network", "gossip", "fec", "causal", "app"]
        );
    }

    #[test]
    fn every_standard_stack_instantiates_on_a_kernel() {
        let builders = vec![
            StackBuilder::new("a", members(3)),
            StackBuilder::new("b", members(3))
                .mecho("auto", Some(NodeId(0)))
                .reliable(),
            StackBuilder::new("c", members(3))
                .gossip(2, 2)
                .fifo()
                .causal(),
            StackBuilder::new("d", members(3)).beb(true).fec(4).total(),
            StackBuilder::new("e", members(3))
                .reliable()
                .share_vsync("group"),
        ];
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let mut platform = TestPlatform::new(NodeId(0));
        for builder in builders {
            let config = builder.build();
            kernel
                .create_channel(&config, &mut platform)
                .unwrap_or_else(|err| panic!("stack `{}` failed: {err}", config.name));
        }
    }

    #[test]
    fn stack_descriptions_roundtrip_through_xml() {
        let config = StackBuilder::new("data", members(5))
            .mecho("wired", Some(NodeId(0)))
            .reliable()
            .share_vsync("group")
            .total()
            .build();
        let text = config.to_xml();
        let parsed = ChannelConfig::from_xml(&text).unwrap();
        assert_eq!(parsed, config);
    }
}
