//! Group membership and view synchrony.
//!
//! The layer maintains the current group [`View`], coordinates view changes
//! (driven by failure-detector suspicions or join requests) through a
//! two-phase prepare/commit exchange led by the deterministically elected
//! coordinator (the lowest node id, exactly as the paper's Core subsystem
//! assumes), and provides the *blocking* primitive the Morpheus
//! reconfiguration procedure relies on: while a channel is blocked,
//! application sends are buffered and re-emitted once the channel resumes, so
//! no application message is lost across a stack replacement.

use std::collections::BTreeSet;

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId};
use morpheus_appia::session::Session;

use crate::events::{
    BlockRequest, FlushAck, JoinRequest, ResumeRequest, Suspect, ViewCommit, ViewInstall,
    ViewPrepare,
};
use crate::view::View;

/// Registered name of the view-synchrony / membership layer.
pub const VSYNC_LAYER: &str = "vsync";

/// Timer tag of the view-change round timeout.
const ROUND_TAG: u32 = 1;

/// The view-synchrony and group membership layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership;
/// * `round_timeout_ms` — time budget of one prepare/flush/commit round
///   before it is abandoned (default 4000 ms). A round that loses a message
///   used to leave `proposed` set forever, wedging every future view change;
///   the timeout aborts the round, unblocks the channel and lets the next
///   membership event propose again.
pub struct VsyncLayer;

impl Layer for VsyncLayer {
    fn name(&self) -> &str {
        VSYNC_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<Suspect>(),
            EventSpec::of::<ViewPrepare>(),
            EventSpec::of::<FlushAck>(),
            EventSpec::of::<ViewCommit>(),
            EventSpec::of::<JoinRequest>(),
            EventSpec::of::<BlockRequest>(),
            EventSpec::of::<ResumeRequest>(),
            EventSpec::of::<TimerExpired>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["ViewPrepare", "FlushAck", "ViewCommit", "ViewInstall"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(VsyncSession {
            view: View::initial(param_node_list(params, "members")),
            blocked: false,
            buffered: Vec::new(),
            proposed: None,
            acks: BTreeSet::new(),
            view_changes: 0,
            round_timeout_ms: param_or(params, "round_timeout_ms", 4000u64).max(100),
            round_timer: None,
        })
    }
}

/// Session state of the view-synchrony layer.
#[derive(Debug)]
pub struct VsyncSession {
    view: View,
    blocked: bool,
    buffered: Vec<Event>,
    proposed: Option<View>,
    acks: BTreeSet<NodeId>,
    view_changes: u64,
    round_timeout_ms: u64,
    round_timer: Option<u64>,
}

impl VsyncSession {
    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether the channel is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    fn arm_round_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.round_timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.round_timer = Some(ctx.set_timer(self.round_timeout_ms, ROUND_TAG));
    }

    /// Abandons the in-flight round: `proposed` is cleared (so the next
    /// membership event can start a fresh round) and the channel resumes in
    /// the still-installed view, releasing any buffered sends.
    fn abort_round(&mut self, ctx: &mut EventContext<'_>) {
        self.proposed = None;
        self.acks.clear();
        if let Some(timer_id) = self.round_timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.blocked = false;
        self.flush_buffered(ctx);
    }

    fn install(&mut self, view: View, ctx: &mut EventContext<'_>) {
        self.view = view.clone();
        self.proposed = None;
        self.acks.clear();
        if let Some(timer_id) = self.round_timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.blocked = false;
        self.view_changes += 1;

        ctx.dispatch(Event::down(ViewInstall { view: view.clone() }));
        ctx.deliver(DeliveryKind::ViewChange {
            view_id: view.id,
            members: view.members.clone(),
        });
        self.flush_buffered(ctx);
    }

    fn flush_buffered(&mut self, ctx: &mut EventContext<'_>) {
        for event in std::mem::take(&mut self.buffered) {
            ctx.dispatch(event);
        }
    }

    fn start_view_change(&mut self, new_view: View, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        self.blocked = true;
        self.acks.clear();
        self.acks.insert(local);
        self.proposed = Some(new_view.clone());
        self.arm_round_timer(ctx);

        let others = new_view.others(local);
        if others.is_empty() {
            // Degenerate single-member view: install immediately.
            self.install(new_view, ctx);
            return;
        }
        let mut message = Message::new();
        message.push(&new_view);
        ctx.dispatch(Event::down(ViewPrepare::new(
            local,
            Dest::Nodes(others),
            message,
        )));
        self.maybe_commit(ctx);
    }

    fn maybe_commit(&mut self, ctx: &mut EventContext<'_>) {
        let Some(proposed) = self.proposed.clone() else {
            return;
        };
        let everyone_acked = proposed
            .members
            .iter()
            .all(|member| self.acks.contains(member));
        if !everyone_acked {
            return;
        }
        let local = ctx.node_id();
        let others = proposed.others(local);
        if !others.is_empty() {
            let mut message = Message::new();
            message.push(&proposed);
            ctx.dispatch(Event::down(ViewCommit::new(
                local,
                Dest::Nodes(others),
                message,
            )));
        }
        self.install(proposed, ctx);
    }
}

impl Session for VsyncSession {
    fn layer_name(&self) -> &str {
        VSYNC_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();

        if event.is::<ChannelInit>() {
            // Announce the initial view so lower layers learn the membership
            // and the application sees view 0.
            if !self.view.is_empty() {
                ctx.dispatch(Event::down(ViewInstall {
                    view: self.view.clone(),
                }));
                ctx.deliver(DeliveryKind::ViewChange {
                    view_id: self.view.id,
                    members: self.view.members.clone(),
                });
            }
            ctx.forward(event);
            return;
        }

        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == VSYNC_LAYER {
                if timer.tag == ROUND_TAG && self.round_timer == Some(timer.timer_id) {
                    self.round_timer = None;
                    if self.proposed.is_some() {
                        // The round lost a message (prepare, flush or commit
                        // never arrived): give up so the next view change is
                        // not blocked behind the dead round.
                        self.abort_round(ctx);
                    }
                }
                return;
            }
            ctx.forward(event);
            return;
        }

        if event.is::<BlockRequest>() {
            self.blocked = true;
            return;
        }
        if event.is::<ResumeRequest>() {
            self.blocked = false;
            // Prime (possibly freshly installed) lower layers with the
            // current membership before releasing buffered traffic.
            ctx.dispatch(Event::down(ViewInstall {
                view: self.view.clone(),
            }));
            self.flush_buffered(ctx);
            return;
        }

        if let Some(suspect) = event.get::<Suspect>() {
            let node = suspect.node;
            if !self.view.contains(node) || self.proposed.is_some() {
                return;
            }
            let new_view = self.view.without(node);
            if new_view.coordinator() == Some(local) {
                self.start_view_change(new_view, ctx);
            }
            return;
        }

        if event.is::<JoinRequest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(join) = event.get::<JoinRequest>() else {
                return;
            };
            let joiner = join.header.source;
            if self.view.coordinator() == Some(local)
                && !self.view.contains(joiner)
                && self.proposed.is_none()
            {
                let new_view = self.view.with_member(joiner);
                self.start_view_change(new_view, ctx);
            }
            return;
        }

        if event.is::<ViewPrepare>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(prepare) = event.get_mut::<ViewPrepare>() else {
                return;
            };
            let proposer = prepare.header.source;
            let Ok(proposed) = prepare.message.pop::<View>() else {
                return;
            };
            if proposed.id <= self.view.id {
                return;
            }
            self.blocked = true;
            self.proposed = Some(proposed.clone());
            self.arm_round_timer(ctx);
            let mut message = Message::new();
            message.push(&proposed.id);
            ctx.dispatch(Event::down(FlushAck::new(
                local,
                Dest::Node(proposer),
                message,
            )));
            return;
        }

        if event.is::<FlushAck>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(ack) = event.get_mut::<FlushAck>() else {
                return;
            };
            let source = ack.header.source;
            let Ok(view_id) = ack.message.pop::<u64>() else {
                return;
            };
            if self.proposed.as_ref().map(|view| view.id) == Some(view_id) {
                self.acks.insert(source);
                self.maybe_commit(ctx);
            }
            return;
        }

        if event.is::<ViewCommit>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(commit) = event.get_mut::<ViewCommit>() else {
                return;
            };
            let Ok(view) = commit.message.pop::<View>() else {
                return;
            };
            if view.id > self.view.id {
                self.install(view, ctx);
            }
            return;
        }

        // Application data.
        match event.direction {
            Direction::Down => {
                if self.blocked {
                    self.buffered.push(event);
                } else {
                    ctx.forward(event);
                }
            }
            Direction::Up => ctx.forward(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn vsync_params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn view_changes(platform: &mut TestPlatform) -> Vec<(u64, Vec<NodeId>)> {
        platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::ViewChange { view_id, members } => Some((view_id, members)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_view_is_announced_on_channel_init() {
        let mut platform = TestPlatform::new(NodeId(1));
        let _vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, 0);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn block_buffers_sends_and_resume_releases_them() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);

        vsync.run_down(Event::down(BlockRequest {}), &mut platform);
        let blocked = vsync.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"x"[..]),
            )),
            &mut platform,
        );
        assert!(
            blocked.iter().all(|event| !event.is::<DataEvent>()),
            "data is held back while blocked"
        );

        let released = vsync.run_down(Event::down(ResumeRequest {}), &mut platform);
        let data: Vec<&Event> = released
            .iter()
            .filter(|event| event.is::<DataEvent>())
            .collect();
        assert_eq!(data.len(), 1, "buffered send released on resume");
        assert!(
            released.iter().any(|event| event.is::<ViewInstall>()),
            "resume re-announces the membership downward"
        );
    }

    #[test]
    fn coordinator_runs_the_two_phase_view_change() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // The failure detector suspects node 3; node 1 is the coordinator.
        let out = vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        assert!(out.is_empty(), "suspicion is absorbed");
        let down = vsync.drain_down();
        let prepares: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ViewPrepare>())
            .collect();
        assert_eq!(prepares.len(), 1);
        assert_eq!(
            prepares[0].get::<ViewPrepare>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2)])
        );

        // Node 2 acknowledges the flush; the coordinator commits and installs.
        let mut ack_message = Message::new();
        ack_message.push(&1u64);
        vsync.run_up(
            Event::up(FlushAck::new(NodeId(2), Dest::Node(NodeId(1)), ack_message)),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(down.iter().any(|event| event.is::<ViewCommit>()));
        assert!(down.iter().any(|event| event.is::<ViewInstall>()));
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn non_coordinator_participates_via_prepare_and_commit() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // The coordinator (node 1) proposes a view without node 3.
        let proposed = View::new(1, vec![NodeId(1), NodeId(2)]);
        let mut message = Message::new();
        message.push(&proposed);
        vsync.run_up(
            Event::up(ViewPrepare::new(NodeId(1), Dest::Node(NodeId(2)), message)),
            &mut platform,
        );
        let down = vsync.drain_down();
        let acks: Vec<&Event> = down.iter().filter(|event| event.is::<FlushAck>()).collect();
        assert_eq!(acks.len(), 1);
        assert_eq!(
            acks[0].get::<FlushAck>().unwrap().header.dest,
            Dest::Node(NodeId(1))
        );

        // While the view change is in progress the channel is blocked.
        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(2), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The commit installs the view and releases the buffered send.
        let mut commit_message = Message::new();
        commit_message.push(&proposed);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                commit_message,
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(
            down.iter().any(|event| event.is::<DataEvent>()),
            "buffered send released"
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn join_requests_grow_the_view() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(7),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let prepare = down
            .iter()
            .find(|event| event.is::<ViewPrepare>())
            .expect("coordinator proposes the larger view");
        assert_eq!(
            prepare.get::<ViewPrepare>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2), NodeId(7)])
        );
    }

    fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        let cancelled: Vec<_> = std::mem::take(&mut platform.cancelled);
        for (_, key) in timers {
            if !cancelled.contains(&key) {
                harness.fire_timer(key, platform);
            }
        }
    }

    #[test]
    fn a_lost_flush_no_longer_wedges_the_next_view_change() {
        // Regression: the coordinator proposes a view, every FlushAck is
        // lost, and `proposed` used to stay set forever — the next suspicion
        // could never start its view change.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        assert_eq!(
            vsync
                .drain_down()
                .iter()
                .filter(|event| event.is::<ViewPrepare>())
                .count(),
            1
        );

        // No ack ever arrives; the round times out and is abandoned.
        platform.advance(4000);
        fire_pending_timers(&mut vsync, &mut platform);

        // A later suspicion proposes again instead of being silently dropped.
        vsync.run_up(Event::up(Suspect { node: NodeId(2) }), &mut platform);
        assert_eq!(
            vsync
                .drain_down()
                .iter()
                .filter(|event| event.is::<ViewPrepare>())
                .count(),
            1,
            "the abandoned round must not block the next view change"
        );
    }

    #[test]
    fn a_lost_commit_unblocks_the_participant_after_the_round_timeout() {
        // Regression: a member that flushed for a proposal whose commit was
        // lost stayed blocked forever, holding its buffered sends hostage.
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        let proposed = View::new(1, vec![NodeId(1), NodeId(2)]);
        let mut message = Message::new();
        message.push(&proposed);
        vsync.run_up(
            Event::up(ViewPrepare::new(NodeId(1), Dest::Node(NodeId(2)), message)),
            &mut platform,
        );
        vsync.drain_down();

        // A send while the (doomed) round is in flight is buffered.
        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(2), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The commit never arrives: past the round timeout the member gives
        // up, resumes in its current view and releases the buffered send.
        platform.advance(4000);
        fire_pending_timers(&mut vsync, &mut platform);
        assert!(vsync
            .drain_down()
            .iter()
            .any(|event| event.is::<DataEvent>()));

        // A retried proposal is accepted afresh (proposed was cleared).
        let mut message = Message::new();
        message.push(&proposed);
        vsync.run_up(
            Event::up(ViewPrepare::new(NodeId(1), Dest::Node(NodeId(2)), message)),
            &mut platform,
        );
        assert!(vsync
            .drain_down()
            .iter()
            .any(|event| event.is::<FlushAck>()));
    }

    #[test]
    fn stale_commits_and_duplicate_suspicions_are_ignored() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        // A stale commit for view 0 must not reinstall anything.
        let stale = View::new(0, vec![NodeId(1), NodeId(2)]);
        let mut message = Message::new();
        message.push(&stale);
        vsync.run_up(
            Event::up(ViewCommit::new(NodeId(2), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        assert!(view_changes(&mut platform).is_empty());

        // Suspecting an unknown node does nothing.
        vsync.run_up(Event::up(Suspect { node: NodeId(99) }), &mut platform);
        assert!(vsync
            .drain_down()
            .iter()
            .all(|event| !event.is::<ViewPrepare>()));
    }
}
