//! Group membership and view synchrony.
//!
//! The layer maintains the current group [`View`], coordinates view changes
//! (driven by failure-detector suspicions or join requests) through a
//! two-phase prepare/commit exchange led by the deterministically elected
//! coordinator (the lowest node id, exactly as the paper's Core subsystem
//! assumes), and provides the *blocking* primitive the Morpheus
//! reconfiguration procedure relies on: while a channel is blocked,
//! application sends are buffered and re-emitted once the channel resumes, so
//! no application message is lost across a stack replacement.

use std::collections::BTreeSet;

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId};
use morpheus_appia::session::Session;

use crate::events::{
    BlockRequest, FlushAck, JoinRequest, ResumeRequest, Suspect, ViewCommit, ViewInstall,
    ViewPrepare,
};
use crate::view::View;

/// Registered name of the view-synchrony / membership layer.
pub const VSYNC_LAYER: &str = "vsync";

/// The view-synchrony and group membership layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership.
pub struct VsyncLayer;

impl Layer for VsyncLayer {
    fn name(&self) -> &str {
        VSYNC_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<Suspect>(),
            EventSpec::of::<ViewPrepare>(),
            EventSpec::of::<FlushAck>(),
            EventSpec::of::<ViewCommit>(),
            EventSpec::of::<JoinRequest>(),
            EventSpec::of::<BlockRequest>(),
            EventSpec::of::<ResumeRequest>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["ViewPrepare", "FlushAck", "ViewCommit", "ViewInstall"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(VsyncSession {
            view: View::initial(param_node_list(params, "members")),
            blocked: false,
            buffered: Vec::new(),
            proposed: None,
            acks: BTreeSet::new(),
            view_changes: 0,
        })
    }
}

/// Session state of the view-synchrony layer.
#[derive(Debug)]
pub struct VsyncSession {
    view: View,
    blocked: bool,
    buffered: Vec<Event>,
    proposed: Option<View>,
    acks: BTreeSet<NodeId>,
    view_changes: u64,
}

impl VsyncSession {
    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether the channel is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    fn install(&mut self, view: View, ctx: &mut EventContext<'_>) {
        self.view = view.clone();
        self.proposed = None;
        self.acks.clear();
        self.blocked = false;
        self.view_changes += 1;

        ctx.dispatch(Event::down(ViewInstall { view: view.clone() }));
        ctx.deliver(DeliveryKind::ViewChange {
            view_id: view.id,
            members: view.members.clone(),
        });
        self.flush_buffered(ctx);
    }

    fn flush_buffered(&mut self, ctx: &mut EventContext<'_>) {
        for event in std::mem::take(&mut self.buffered) {
            ctx.dispatch(event);
        }
    }

    fn start_view_change(&mut self, new_view: View, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        self.blocked = true;
        self.acks.clear();
        self.acks.insert(local);
        self.proposed = Some(new_view.clone());

        let others = new_view.others(local);
        if others.is_empty() {
            // Degenerate single-member view: install immediately.
            self.install(new_view, ctx);
            return;
        }
        let mut message = Message::new();
        message.push(&new_view);
        ctx.dispatch(Event::down(ViewPrepare::new(
            local,
            Dest::Nodes(others),
            message,
        )));
        self.maybe_commit(ctx);
    }

    fn maybe_commit(&mut self, ctx: &mut EventContext<'_>) {
        let Some(proposed) = self.proposed.clone() else {
            return;
        };
        let everyone_acked = proposed
            .members
            .iter()
            .all(|member| self.acks.contains(member));
        if !everyone_acked {
            return;
        }
        let local = ctx.node_id();
        let others = proposed.others(local);
        if !others.is_empty() {
            let mut message = Message::new();
            message.push(&proposed);
            ctx.dispatch(Event::down(ViewCommit::new(
                local,
                Dest::Nodes(others),
                message,
            )));
        }
        self.install(proposed, ctx);
    }
}

impl Session for VsyncSession {
    fn layer_name(&self) -> &str {
        VSYNC_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();

        if event.is::<ChannelInit>() {
            // Announce the initial view so lower layers learn the membership
            // and the application sees view 0.
            if !self.view.is_empty() {
                ctx.dispatch(Event::down(ViewInstall {
                    view: self.view.clone(),
                }));
                ctx.deliver(DeliveryKind::ViewChange {
                    view_id: self.view.id,
                    members: self.view.members.clone(),
                });
            }
            ctx.forward(event);
            return;
        }

        if event.is::<BlockRequest>() {
            self.blocked = true;
            return;
        }
        if event.is::<ResumeRequest>() {
            self.blocked = false;
            // Prime (possibly freshly installed) lower layers with the
            // current membership before releasing buffered traffic.
            ctx.dispatch(Event::down(ViewInstall {
                view: self.view.clone(),
            }));
            self.flush_buffered(ctx);
            return;
        }

        if let Some(suspect) = event.get::<Suspect>() {
            let node = suspect.node;
            if !self.view.contains(node) || self.proposed.is_some() {
                return;
            }
            let new_view = self.view.without(node);
            if new_view.coordinator() == Some(local) {
                self.start_view_change(new_view, ctx);
            }
            return;
        }

        if event.is::<JoinRequest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(join) = event.get::<JoinRequest>() else {
                return;
            };
            let joiner = join.header.source;
            if self.view.coordinator() == Some(local)
                && !self.view.contains(joiner)
                && self.proposed.is_none()
            {
                let new_view = self.view.with_member(joiner);
                self.start_view_change(new_view, ctx);
            }
            return;
        }

        if event.is::<ViewPrepare>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(prepare) = event.get_mut::<ViewPrepare>() else {
                return;
            };
            let proposer = prepare.header.source;
            let Ok(proposed) = prepare.message.pop::<View>() else {
                return;
            };
            if proposed.id <= self.view.id {
                return;
            }
            self.blocked = true;
            self.proposed = Some(proposed.clone());
            let mut message = Message::new();
            message.push(&proposed.id);
            ctx.dispatch(Event::down(FlushAck::new(
                local,
                Dest::Node(proposer),
                message,
            )));
            return;
        }

        if event.is::<FlushAck>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(ack) = event.get_mut::<FlushAck>() else {
                return;
            };
            let source = ack.header.source;
            let Ok(view_id) = ack.message.pop::<u64>() else {
                return;
            };
            if self.proposed.as_ref().map(|view| view.id) == Some(view_id) {
                self.acks.insert(source);
                self.maybe_commit(ctx);
            }
            return;
        }

        if event.is::<ViewCommit>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(commit) = event.get_mut::<ViewCommit>() else {
                return;
            };
            let Ok(view) = commit.message.pop::<View>() else {
                return;
            };
            if view.id > self.view.id {
                self.install(view, ctx);
            }
            return;
        }

        // Application data.
        match event.direction {
            Direction::Down => {
                if self.blocked {
                    self.buffered.push(event);
                } else {
                    ctx.forward(event);
                }
            }
            Direction::Up => ctx.forward(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn vsync_params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn view_changes(platform: &mut TestPlatform) -> Vec<(u64, Vec<NodeId>)> {
        platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::ViewChange { view_id, members } => Some((view_id, members)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_view_is_announced_on_channel_init() {
        let mut platform = TestPlatform::new(NodeId(1));
        let _vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, 0);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn block_buffers_sends_and_resume_releases_them() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);

        vsync.run_down(Event::down(BlockRequest {}), &mut platform);
        let blocked = vsync.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"x"[..]),
            )),
            &mut platform,
        );
        assert!(
            blocked.iter().all(|event| !event.is::<DataEvent>()),
            "data is held back while blocked"
        );

        let released = vsync.run_down(Event::down(ResumeRequest {}), &mut platform);
        let data: Vec<&Event> = released
            .iter()
            .filter(|event| event.is::<DataEvent>())
            .collect();
        assert_eq!(data.len(), 1, "buffered send released on resume");
        assert!(
            released.iter().any(|event| event.is::<ViewInstall>()),
            "resume re-announces the membership downward"
        );
    }

    #[test]
    fn coordinator_runs_the_two_phase_view_change() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // The failure detector suspects node 3; node 1 is the coordinator.
        let out = vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        assert!(out.is_empty(), "suspicion is absorbed");
        let down = vsync.drain_down();
        let prepares: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ViewPrepare>())
            .collect();
        assert_eq!(prepares.len(), 1);
        assert_eq!(
            prepares[0].get::<ViewPrepare>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2)])
        );

        // Node 2 acknowledges the flush; the coordinator commits and installs.
        let mut ack_message = Message::new();
        ack_message.push(&1u64);
        vsync.run_up(
            Event::up(FlushAck::new(NodeId(2), Dest::Node(NodeId(1)), ack_message)),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(down.iter().any(|event| event.is::<ViewCommit>()));
        assert!(down.iter().any(|event| event.is::<ViewInstall>()));
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn non_coordinator_participates_via_prepare_and_commit() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // The coordinator (node 1) proposes a view without node 3.
        let proposed = View::new(1, vec![NodeId(1), NodeId(2)]);
        let mut message = Message::new();
        message.push(&proposed);
        vsync.run_up(
            Event::up(ViewPrepare::new(NodeId(1), Dest::Node(NodeId(2)), message)),
            &mut platform,
        );
        let down = vsync.drain_down();
        let acks: Vec<&Event> = down.iter().filter(|event| event.is::<FlushAck>()).collect();
        assert_eq!(acks.len(), 1);
        assert_eq!(
            acks[0].get::<FlushAck>().unwrap().header.dest,
            Dest::Node(NodeId(1))
        );

        // While the view change is in progress the channel is blocked.
        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(2), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The commit installs the view and releases the buffered send.
        let mut commit_message = Message::new();
        commit_message.push(&proposed);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                commit_message,
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(
            down.iter().any(|event| event.is::<DataEvent>()),
            "buffered send released"
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn join_requests_grow_the_view() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(7),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let prepare = down
            .iter()
            .find(|event| event.is::<ViewPrepare>())
            .expect("coordinator proposes the larger view");
        assert_eq!(
            prepare.get::<ViewPrepare>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2), NodeId(7)])
        );
    }

    #[test]
    fn stale_commits_and_duplicate_suspicions_are_ignored() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        // A stale commit for view 0 must not reinstall anything.
        let stale = View::new(0, vec![NodeId(1), NodeId(2)]);
        let mut message = Message::new();
        message.push(&stale);
        vsync.run_up(
            Event::up(ViewCommit::new(NodeId(2), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        assert!(view_changes(&mut platform).is_empty());

        // Suspecting an unknown node does nothing.
        vsync.run_up(Event::up(Suspect { node: NodeId(99) }), &mut platform);
        assert!(vsync
            .drain_down()
            .iter()
            .all(|event| !event.is::<ViewPrepare>()));
    }
}
