//! Group membership and view synchrony.
//!
//! The layer maintains the current group [`View`], coordinates view changes
//! (driven by failure-detector suspicions or join requests) through an
//! **epoch-stamped** prepare/flush/commit exchange, and provides the
//! *blocking* primitive the Morpheus reconfiguration procedure relies on:
//! while a channel is blocked, application sends are buffered and re-emitted
//! once the channel resumes, so no application message is lost across a stack
//! replacement.
//!
//! # Failure-tolerant view agreement
//!
//! The original fire-and-forget 2PC wedged permanently on a single lost
//! message. View rounds now mirror the reconfiguration protocol's design:
//!
//! * every round runs under a monotonic **view epoch** with the ballot order
//!   `(epoch, proposer id)` — higher epoch wins, equal epochs are tie-broken
//!   by the *lower* proposer id (consistent with the deterministic
//!   lowest-live-id election), so two proposers racing after a false
//!   suspicion can no longer both win acceptance;
//! * the proposer **retransmits** the prepare to members that have not
//!   flushed, every `retransmit_interval_ms`; participants retransmit their
//!   flush towards the proposer on the same cadence, and a proposer that
//!   already committed answers a straggler's flush with the commit — so any
//!   *single* lost prepare, flush or commit is repaired within one interval;
//! * a round that makes no progress for `round_timeout_ms` is **aborted**:
//!   the round state is cleared (future view changes are never blocked
//!   behind a dead round), the channel resumes in the still-installed view,
//!   and the proposer immediately re-proposes under a fresh epoch while the
//!   membership interest (queued removals/joins) persists;
//! * duplicate prepares are answered with an idempotent re-flush, and
//!   duplicate flushes merge into the round's flush set without side
//!   effects;
//! * at gossip scale (`view len >= gossip_threshold`) flush collection rides
//!   the epidemic plane: participants aggregate the flush sets they hear and
//!   re-gossip the union to the proposer plus `fanout` random peers, instead
//!   of every member unicasting its own ack at the proposer.
//!
//! # Joining mode
//!
//! A restarted node comes up with `joining=true`: an empty view, the channel
//! blocked, and no membership announcements. The recovery layer below drives
//! its re-admission ([`crate::recovery`]); this layer completes it by
//! installing the first view that contains the local node (accepting even an
//! unchanged view id, for the restart-before-expulsion case where the group
//! never removed the node).

use std::collections::BTreeSet;

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId};
use morpheus_appia::session::Session;

use crate::events::{
    Alive, BlockRequest, FlushAck, JoinRequest, Rejoin, ResumeRequest, StaleBallot, Suspect,
    ViewCommit, ViewInstall, ViewPrepare,
};
use crate::gossip::sample_peers;
use crate::headers::FlushBody;
use crate::round::{Ballot, Engine as RoundEngine, Promise, Tick};
use crate::view::View;

/// Registered name of the view-synchrony / membership layer.
pub const VSYNC_LAYER: &str = "vsync";

/// Timer tag of the round retransmit/timeout tick.
const ROUND_TAG: u32 = 1;

pub use crate::round::ballot_beats;

/// The view-synchrony and group membership layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership;
/// * `retransmit_interval_ms` — prepare/flush retransmission cadence
///   (default 500 ms);
/// * `round_timeout_ms` — time budget of one view round before it is aborted
///   and re-proposed under a fresh epoch (default 4000 ms);
/// * `gossip_threshold` — view size at which flush collection switches from
///   participant→proposer unicast to gossip aggregation (default 50);
/// * `fanout` — random peers each aggregated flush set is pushed to in
///   gossip mode (default 3);
/// * `joining` — start with an empty view, blocked, waiting to be admitted
///   (default false; used by restarted nodes, see [`crate::recovery`]).
pub struct VsyncLayer;

impl Layer for VsyncLayer {
    fn name(&self) -> &str {
        VSYNC_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<Suspect>(),
            EventSpec::of::<Alive>(),
            EventSpec::of::<ViewPrepare>(),
            EventSpec::of::<FlushAck>(),
            EventSpec::of::<ViewCommit>(),
            EventSpec::of::<StaleBallot>(),
            EventSpec::of::<JoinRequest>(),
            EventSpec::of::<Rejoin>(),
            EventSpec::of::<BlockRequest>(),
            EventSpec::of::<ResumeRequest>(),
            EventSpec::of::<TimerExpired>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec![
            "ViewPrepare",
            "FlushAck",
            "ViewCommit",
            "StaleBallot",
            "ViewInstall",
        ]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let joining = param_or(params, "joining", false);
        let view = if joining {
            View::new(0, Vec::new())
        } else {
            View::initial(param_node_list(params, "members"))
        };
        Box::new(VsyncSession {
            view,
            joining,
            blocked: joining,
            buffered: Vec::new(),
            // Ballot zero is never a valid round: holder 0 makes every
            // epoch-0 ballot lose the tie-break.
            engine: RoundEngine::new(),
            proposal: None,
            committed: None,
            installed_ballot: Ballot::ZERO,
            pending_removals: BTreeSet::new(),
            pending_joins: BTreeSet::new(),
            view_changes: 0,
            retransmit_interval_ms: param_or(params, "retransmit_interval_ms", 500u64).max(10),
            round_timeout_ms: param_or(params, "round_timeout_ms", 4000u64).max(100),
            gossip_threshold: param_or(params, "gossip_threshold", 50usize).max(2),
            fanout: param_or(params, "fanout", 3usize).max(1),
            round_timer: None,
        })
    }
}

/// Session state of the view-synchrony layer.
#[derive(Debug)]
pub struct VsyncSession {
    view: View,
    /// True until the first view containing the local node installs.
    joining: bool,
    blocked: bool,
    // bound: grows only while the channel is blocked; flushed on every resume or install.
    // never-shed: view-synchrony state is control-plane — dropping a buffered
    // send would break sending-view delivery; overload relief must come from
    // the data-plane caps below (gossip outbox, testbed queue shed).
    buffered: Vec<Event>,
    /// The shared round machinery ([`crate::round`]): ballot monotonicity,
    /// the flush (ack) bookkeeping of the in-flight round, retransmit
    /// counting and the timeout clock. View-round flushes are the engine's
    /// acks; in gossip mode the merged flush sets arrive via
    /// [`RoundEngine::merge_acks`].
    engine: RoundEngine<NodeId>,
    /// The in-flight round's proposed view — the round *payload*; the
    /// ballot and flush bookkeeping live in `engine`. Always `Some` exactly
    /// when the engine has a round in flight.
    proposal: Option<View>,
    /// The last round this node committed as proposer: a straggler that
    /// missed the commit keeps retransmitting its flush and is answered
    /// with the commit.
    committed: Option<(u64, View)>,
    /// Ballot under which the current view was installed. Two rival
    /// proposers racing the same epoch can both assemble a same-id view;
    /// installs at an *equal* view id are therefore ordered by ballot too,
    /// so every member converges on the winning proposer's view instead of
    /// sticking with whichever commit arrived first.
    installed_ballot: Ballot,
    /// Membership changes queued while no round can run them. Cleared only
    /// when an installed view reflects them, so an aborted round re-proposes.
    // bound: subset of the current membership; cleared as installed views absorb it.
    // never-shed: a dropped removal would strand a dead member in the view.
    pending_removals: BTreeSet<NodeId>,
    // bound: <= announced joiners; cleared as installed views absorb it.
    // never-shed: a dropped join would strand a live joiner outside the view.
    pending_joins: BTreeSet<NodeId>,
    view_changes: u64,
    retransmit_interval_ms: u64,
    round_timeout_ms: u64,
    gossip_threshold: usize,
    fanout: usize,
    round_timer: Option<u64>,
}

impl VsyncSession {
    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether the channel is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Whether the node is still waiting to be admitted to a view.
    pub fn is_joining(&self) -> bool {
        self.joining
    }

    /// Completed view changes so far.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    fn arm_round_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.round_timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.round_timer = Some(ctx.set_timer(self.retransmit_interval_ms, ROUND_TAG));
    }

    fn cancel_round_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.round_timer.take() {
            ctx.cancel_timer(timer_id);
        }
    }

    fn flush_buffered(&mut self, ctx: &mut EventContext<'_>) {
        for event in std::mem::take(&mut self.buffered) {
            ctx.dispatch(event);
        }
    }

    fn announce(&mut self, ctx: &mut EventContext<'_>) {
        ctx.dispatch(Event::down(ViewInstall {
            view: self.view.clone(),
        }));
        ctx.deliver(DeliveryKind::ViewChange {
            view_id: self.view.id,
            members: self.view.members.clone(),
        });
    }

    fn install(&mut self, view: View, ballot: Ballot, ctx: &mut EventContext<'_>) {
        if self.joining && view.contains(ctx.node_id()) {
            self.joining = false;
        }
        self.view = view;
        self.installed_ballot = ballot;
        self.engine.complete();
        self.proposal = None;
        self.cancel_round_timer(ctx);
        self.blocked = false;
        self.view_changes += 1;
        // Queued changes an installed view already reflects are done.
        let installed = self.view.clone();
        self.pending_removals
            .retain(|node| installed.contains(*node));
        self.pending_joins.retain(|node| !installed.contains(*node));

        self.announce(ctx);
        self.flush_buffered(ctx);
        self.maybe_start_next_round(ctx);
    }

    /// The member that should lead the next round: the lowest id not queued
    /// for removal. Electing around queued removals is what lets the
    /// next-lowest member take over when the coordinator itself is the one
    /// being removed.
    fn effective_coordinator(&self) -> Option<NodeId> {
        self.view
            .members
            .iter()
            .copied()
            .filter(|member| !self.pending_removals.contains(member))
            .min()
    }

    /// Starts a round for the queued membership changes, when this node is
    /// the effective coordinator and no round is in flight.
    fn maybe_start_next_round(&mut self, ctx: &mut EventContext<'_>) {
        if self.engine.in_flight() || self.joining {
            return;
        }
        if self.pending_removals.is_empty() && self.pending_joins.is_empty() {
            return;
        }
        if self.effective_coordinator() != Some(ctx.node_id()) {
            return;
        }
        let mut members: Vec<NodeId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|member| !self.pending_removals.contains(member))
            .collect();
        members.extend(self.pending_joins.iter().copied());
        let target = View::new(self.view.id + 1, members);
        if target.members == self.view.members {
            self.pending_removals.clear();
            self.pending_joins.clear();
            return;
        }
        self.start_round(target, ctx);
    }

    fn start_round(&mut self, target: View, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        self.blocked = true;
        let ballot = self
            .engine
            .open(local, target.members.iter().copied(), ctx.now_ms());
        // The proposer has trivially flushed its own round.
        self.engine.record_ack(ballot.epoch, local);
        self.proposal = Some(target.clone());
        let others = target.others(local);
        if others.is_empty() {
            // Degenerate single-member view: install immediately.
            self.commit_round(ctx);
            return;
        }
        Self::send_prepare(ballot.epoch, &target, others, ctx);
        self.arm_round_timer(ctx);
    }

    fn send_prepare(epoch: u64, view: &View, targets: Vec<NodeId>, ctx: &mut EventContext<'_>) {
        if targets.is_empty() {
            return;
        }
        let mut message = Message::new();
        message.push(view);
        message.push(&epoch);
        ctx.dispatch(Event::down(ViewPrepare::new(
            ctx.node_id(),
            Dest::Nodes(targets),
            message,
        )));
    }

    /// Sends this participant's flush knowledge towards the proposer — plus,
    /// at gossip scale, to `fanout` random peers so coverage aggregates
    /// epidemically instead of all acks converging on one node.
    fn send_flush(&mut self, ctx: &mut EventContext<'_>) {
        let (Some(round), Some(view)) = (self.engine.round(), self.proposal.as_ref()) else {
            return;
        };
        let local = ctx.node_id();
        let body = FlushBody {
            epoch: round.ballot.epoch,
            proposer: round.ballot.holder,
            flushed: round.acked().iter().copied().collect(),
        };
        let proposer = round.ballot.holder;
        let gossip = view.len() >= self.gossip_threshold;
        let members = view.members.clone();
        let mut targets = vec![proposer];
        if gossip {
            targets.extend(sample_peers(&members, &[local, proposer], self.fanout, ctx));
        }
        let mut message = Message::new();
        message.push(&body);
        ctx.dispatch(Event::down(FlushAck::new(
            local,
            Dest::Nodes(targets),
            message,
        )));
    }

    /// Proposer side: every member of the proposed view has flushed — commit.
    /// (The engine's completion predicate with no exclusions: view synchrony
    /// aborts a round awaiting a suspect rather than committing around it.)
    fn maybe_commit(&mut self, ctx: &mut EventContext<'_>) {
        let complete = self
            .engine
            .round()
            .is_some_and(|round| round.ballot.holder == ctx.node_id())
            && self.engine.completed(&BTreeSet::new());
        if complete {
            self.commit_round(ctx);
        }
    }

    fn commit_round(&mut self, ctx: &mut EventContext<'_>) {
        let Some(round) = self.engine.complete() else {
            return;
        };
        let Some(view) = self.proposal.take() else {
            return;
        };
        let local = ctx.node_id();
        let epoch = round.ballot.epoch;
        let others = view.others(local);
        if !others.is_empty() {
            let mut message = Message::new();
            message.push(&view);
            message.push(&epoch);
            ctx.dispatch(Event::down(ViewCommit::new(
                local,
                Dest::Nodes(others),
                message,
            )));
        }
        self.committed = Some((epoch, view.clone()));
        self.install(view, Ballot::new(epoch, local), ctx);
    }

    /// Abandons the in-flight round: the round state is cleared (so future
    /// view changes are never blocked behind it) and the channel resumes in
    /// the still-installed view, releasing buffered sends.
    fn abort_round(&mut self, ctx: &mut EventContext<'_>) {
        self.engine.abort();
        self.proposal = None;
        self.cancel_round_timer(ctx);
        if !self.joining {
            self.blocked = false;
            self.flush_buffered(ctx);
        }
    }

    fn on_round_timer(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        match self.engine.tick(ctx.now_ms(), self.round_timeout_ms) {
            Tick::Idle => return,
            Tick::TimedOut => {
                // The round is dead (a member crashed without being suspected
                // yet, or the proposer vanished): give up and — on the
                // proposer — immediately re-propose under a fresh epoch,
                // because the queued membership interest is cleared only by
                // an install. A *joiner* that never flushed is the exception:
                // it may have crashed right after its join request and
                // nothing (no Suspect — it is not a view member) would ever
                // clear it, looping the re-proposal forever. Its queued join
                // is dropped; a live joiner re-queues itself with its next
                // JoinRequest retransmission.
                let vanished: Vec<NodeId> = match (self.engine.round(), self.proposal.as_ref()) {
                    (Some(round), Some(view)) => view
                        .members
                        .iter()
                        .copied()
                        .filter(|member| {
                            !self.view.contains(*member) && !round.acked().contains(member)
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                for member in vanished {
                    self.pending_joins.remove(&member);
                }
                self.abort_round(ctx);
                self.maybe_start_next_round(ctx);
                return;
            }
            Tick::Retransmit(missing) => {
                let proposing = self
                    .engine
                    .round()
                    .is_some_and(|round| round.ballot.holder == local);
                if proposing {
                    // Retransmit the prepare to everyone still missing.
                    if !missing.is_empty() {
                        if let (Some(round), Some(view)) =
                            (self.engine.round(), self.proposal.as_ref())
                        {
                            Self::send_prepare(round.ballot.epoch, view, missing, ctx);
                        }
                    }
                } else {
                    // Retransmit the flush towards the proposer: repairs both
                    // a lost flush (the proposer is still collecting) and a
                    // lost commit (the proposer answers with the commit).
                    self.send_flush(ctx);
                }
            }
        }
        self.arm_round_timer(ctx);
    }

    fn on_suspect(&mut self, node: NodeId, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        if node == local || !self.view.contains(node) {
            return;
        }
        self.pending_removals.insert(node);
        // A round awaiting the suspect's flush can never complete: abort it
        // now and re-propose without the suspect instead of burning the
        // whole round timeout.
        let awaited = self.engine.round().is_some_and(|round| {
            round.ballot.holder == local
                && round.participants().contains(&node)
                && !round.acked().contains(&node)
        });
        if awaited {
            self.abort_round(ctx);
        }
        self.maybe_start_next_round(ctx);
    }

    fn on_join_request(&mut self, joiner: NodeId, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        if self.joining || joiner == local {
            return;
        }
        if self.view.contains(joiner) {
            // Restart before expulsion: the group never removed the node, so
            // no view change will run — the effective coordinator re-asserts
            // the current view straight at the joiner, whose joining-mode
            // vsync accepts any view containing it.
            if self.effective_coordinator() == Some(local) {
                let mut message = Message::new();
                message.push(&self.view);
                message.push(&self.engine.epoch());
                ctx.dispatch(Event::down(ViewCommit::new(
                    local,
                    Dest::Node(joiner),
                    message,
                )));
            }
            return;
        }
        // Queued on every member, not only the coordinator: if the
        // coordinator dies before admitting, its successor has the join
        // recorded and runs it.
        self.pending_joins.insert(joiner);
        self.maybe_start_next_round(ctx);
    }

    fn on_prepare(&mut self, epoch: u64, proposer: NodeId, view: View, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let ballot = Ballot::new(epoch, proposer);
        // Duplicate of the round we are already in: idempotent re-flush.
        if self
            .engine
            .round()
            .is_some_and(|round| round.ballot == ballot)
        {
            self.send_flush(ctx);
            return;
        }
        let same_ballot = ballot == self.engine.promised();
        let supersedes = view.id > self.view.id
            || (view.id == self.view.id && ballot.beats(self.installed_ballot))
            || (self.joining && view.contains(local));
        if !supersedes {
            // Already installed this view id under a ballot at least as
            // strong (e.g. the commit arrived before this retransmitted
            // prepare): just re-ack so a proposer whose flush bookkeeping
            // lost our ack can complete.
            if same_ballot {
                let body = FlushBody {
                    epoch,
                    proposer,
                    flushed: vec![local],
                };
                let mut message = Message::new();
                message.push(&body);
                ctx.dispatch(Event::down(FlushAck::new(
                    local,
                    Dest::Node(proposer),
                    message,
                )));
            }
            return;
        }
        match self.engine.try_promise(ballot) {
            Promise::Accepted => {}
            // A same-ballot retransmission while another round is in flight:
            // the duplicate check above already covers the round we are in,
            // so there is nothing to ack here.
            Promise::Duplicate => return,
            Promise::Superseded(promised) => {
                // Stale ballot: old commands can never roll the view back.
                // The promise this prepare lost to is strictly stronger —
                // report it back so the proposer can jump its epoch past the
                // obstruction in one step (see [`StaleBallot`]). A joining
                // node never gets here with a winning promise — `Rejoin`
                // resets its ballot state to zero.
                let mut message = Message::new();
                message.push(&promised.holder);
                message.push(&promised.epoch);
                ctx.dispatch(Event::down(StaleBallot::new(
                    local,
                    Dest::Node(proposer),
                    message,
                )));
                return;
            }
        }
        self.blocked = true;
        self.engine
            .open_at(ballot, view.members.iter().copied(), ctx.now_ms());
        self.engine.record_ack(epoch, local);
        self.proposal = Some(view);
        self.arm_round_timer(ctx);
        self.send_flush(ctx);
    }

    fn on_flush(&mut self, source: NodeId, body: FlushBody, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let ballot = Ballot::new(body.epoch, body.proposer);
        if self
            .engine
            .round()
            .is_some_and(|round| round.ballot == ballot)
        {
            let Some(view) = self.proposal.clone() else {
                return;
            };
            let mut fresh = self.engine.merge_acks(
                body.epoch,
                body.flushed.iter().copied().filter(|m| view.contains(*m)),
            );
            // The sender itself demonstrably flushed (it sent this ack).
            if view.contains(source) {
                fresh += self.engine.merge_acks(body.epoch, [source]);
            }
            let grew = fresh > 0;
            if body.proposer == local {
                if grew {
                    self.maybe_commit(ctx);
                }
            } else if grew && view.len() >= self.gossip_threshold {
                // Aggregation: re-gossip the merged set so coverage
                // converges towards the proposer epidemically.
                self.send_flush(ctx);
            }
            return;
        }
        // A straggler still flushing for a round we already committed missed
        // the commit — answer with it. Only flushes addressed to *this*
        // proposer count: in gossip mode flush sets also reach random peers,
        // and a peer that committed its own same-epoch round must not
        // answer a rival round's flush with its conflicting commit.
        if let Some((epoch, view)) = &self.committed {
            if *epoch == body.epoch && body.proposer == local && view.contains(source) {
                let mut message = Message::new();
                message.push(view);
                message.push(epoch);
                ctx.dispatch(Event::down(ViewCommit::new(
                    local,
                    Dest::Node(source),
                    message,
                )));
            }
        }
        // Flushes from any other epoch are dropped: a stale flush replayed
        // from an aborted round cannot complete a newer round with a
        // different membership.
    }

    /// A participant promised a ballot stronger than our in-flight round
    /// (typically scattered by a falsely self-suspecting rejoiner's
    /// abandoned rounds). Adopt the reported epoch and re-propose now: the
    /// fresh round starts past the obstruction instead of crawling towards
    /// it one epoch per round timeout — under a wedge detector that window
    /// is the difference between recovery and a declared livelock.
    fn on_stale_ballot(&mut self, epoch: u64, holder: NodeId, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        if self.joining {
            return;
        }
        let beaten = self.engine.round().is_some_and(|round| {
            round.ballot.holder == local && Ballot::new(epoch, holder).beats(round.ballot)
        });
        if !beaten {
            return;
        }
        self.engine.fast_forward(epoch);
        self.abort_round(ctx);
        self.maybe_start_next_round(ctx);
    }

    fn on_commit(&mut self, epoch: u64, proposer: NodeId, view: View, ctx: &mut EventContext<'_>) {
        let ballot = Ballot::new(epoch, proposer);
        self.engine.adopt(ballot);
        let local = ctx.node_id();
        let supersedes = view.id > self.view.id
            || (view.id == self.view.id && ballot.beats(self.installed_ballot))
            || (self.joining && view.contains(local));
        if supersedes {
            self.install(view, ballot, ctx);
        }
    }
}

impl Session for VsyncSession {
    fn layer_name(&self) -> &str {
        VSYNC_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            // Announce the initial view so lower layers learn the membership
            // and the application sees view 0. A joining node has no view to
            // announce yet.
            if !self.view.is_empty() && !self.joining {
                self.announce(ctx);
            }
            ctx.forward(event);
            return;
        }

        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == VSYNC_LAYER {
                if timer.tag == ROUND_TAG && self.round_timer == Some(timer.timer_id) {
                    self.round_timer = None;
                    self.on_round_timer(ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }

        if event.is::<BlockRequest>() {
            self.blocked = true;
            return;
        }
        if event.is::<ResumeRequest>() {
            // A joining node stays blocked until it is admitted to a view.
            self.blocked = self.joining;
            // Prime (possibly freshly installed) lower layers with the
            // current membership before releasing buffered traffic.
            if !self.view.is_empty() {
                ctx.dispatch(Event::down(ViewInstall {
                    view: self.view.clone(),
                }));
            }
            if !self.blocked {
                self.flush_buffered(ctx);
            }
            return;
        }

        if let Some(suspect) = event.get::<Suspect>() {
            let node = suspect.node;
            self.on_suspect(node, ctx);
            return;
        }

        if let Some(alive) = event.get::<Alive>() {
            // A false suspicion healed before the removal ran: drop it.
            self.pending_removals.remove(&alive.node);
            return;
        }

        if event.is::<Rejoin>() {
            // The recovery layer detected the local node was expelled while
            // alive: reset into joining mode — empty view, channel blocked,
            // fresh ballot state — exactly how a restarted node boots, so
            // the node re-enters through the same join path. Buffered sends
            // are kept and released when the join view installs.
            self.joining = true;
            self.blocked = true;
            self.engine.reset();
            self.proposal = None;
            self.cancel_round_timer(ctx);
            self.pending_removals.clear();
            self.pending_joins.clear();
            self.committed = None;
            self.installed_ballot = Ballot::ZERO;
            self.view = View::new(0, Vec::new());
            return;
        }

        if event.is::<JoinRequest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(join) = event.get::<JoinRequest>() else {
                return;
            };
            let joiner = join.header.source;
            self.on_join_request(joiner, ctx);
            return;
        }

        if event.is::<ViewPrepare>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(prepare) = event.get_mut::<ViewPrepare>() else {
                return;
            };
            let proposer = prepare.header.source;
            let Ok(epoch) = prepare.message.pop::<u64>() else {
                return;
            };
            let Ok(proposed) = prepare.message.pop::<View>() else {
                return;
            };
            self.on_prepare(epoch, proposer, proposed, ctx);
            return;
        }

        if event.is::<FlushAck>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(ack) = event.get_mut::<FlushAck>() else {
                return;
            };
            let source = ack.header.source;
            let Ok(body) = ack.message.pop::<FlushBody>() else {
                return;
            };
            self.on_flush(source, body, ctx);
            return;
        }

        if event.is::<StaleBallot>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(nack) = event.get_mut::<StaleBallot>() else {
                return;
            };
            let Ok(epoch) = nack.message.pop::<u64>() else {
                return;
            };
            let Ok(holder) = nack.message.pop::<NodeId>() else {
                return;
            };
            self.on_stale_ballot(epoch, holder, ctx);
            return;
        }

        if event.is::<ViewCommit>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(commit) = event.get_mut::<ViewCommit>() else {
                return;
            };
            let proposer = commit.header.source;
            let Ok(epoch) = commit.message.pop::<u64>() else {
                return;
            };
            let Ok(view) = commit.message.pop::<View>() else {
                return;
            };
            self.on_commit(epoch, proposer, view, ctx);
            return;
        }

        // Application data.
        match event.direction {
            Direction::Down => {
                if self.blocked {
                    self.buffered.push(event);
                } else {
                    ctx.forward(event);
                }
            }
            Direction::Up => ctx.forward(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn vsync_params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn view_changes(platform: &mut TestPlatform) -> Vec<(u64, Vec<NodeId>)> {
        platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::ViewChange { view_id, members } => Some((view_id, members)),
                _ => None,
            })
            .collect()
    }

    fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        let cancelled: Vec<_> = std::mem::take(&mut platform.cancelled);
        for (_, key) in timers {
            if !cancelled.contains(&key) {
                harness.fire_timer(key, platform);
            }
        }
    }

    fn flush_message(epoch: u64, proposer: u32, flushed: &[u32]) -> Message {
        let mut message = Message::new();
        message.push(&FlushBody {
            epoch,
            proposer: NodeId(proposer),
            flushed: flushed.iter().copied().map(NodeId).collect(),
        });
        message
    }

    fn round_message(epoch: u64, view: &View) -> Message {
        let mut message = Message::new();
        message.push(view);
        message.push(&epoch);
        message
    }

    fn prepares(events: &[Event]) -> Vec<(u64, View, Dest)> {
        events
            .iter()
            .filter_map(|event| {
                event.get::<ViewPrepare>().map(|prepare| {
                    let mut message = prepare.message.clone();
                    let epoch: u64 = message.pop().unwrap();
                    let view: View = message.pop().unwrap();
                    (epoch, view, prepare.header.dest.clone())
                })
            })
            .collect()
    }

    #[test]
    fn initial_view_is_announced_on_channel_init() {
        let mut platform = TestPlatform::new(NodeId(1));
        let _vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, 0);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn block_buffers_sends_and_resume_releases_them() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);

        vsync.run_down(Event::down(BlockRequest {}), &mut platform);
        let blocked = vsync.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"x"[..]),
            )),
            &mut platform,
        );
        assert!(
            blocked.iter().all(|event| !event.is::<DataEvent>()),
            "data is held back while blocked"
        );

        let released = vsync.run_down(Event::down(ResumeRequest {}), &mut platform);
        let data: Vec<&Event> = released
            .iter()
            .filter(|event| event.is::<DataEvent>())
            .collect();
        assert_eq!(data.len(), 1, "buffered send released on resume");
        assert!(
            released.iter().any(|event| event.is::<ViewInstall>()),
            "resume re-announces the membership downward"
        );
    }

    #[test]
    fn coordinator_runs_the_epoch_stamped_view_change() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // The failure detector suspects node 3; node 1 is the coordinator.
        let out = vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        assert!(out.is_empty(), "suspicion is absorbed");
        let sent = prepares(&vsync.drain_down());
        assert_eq!(sent.len(), 1);
        let (epoch, view, dest) = &sent[0];
        assert_eq!(*epoch, 1, "first round opens view epoch 1");
        assert_eq!(view.members, vec![NodeId(1), NodeId(2)]);
        assert_eq!(*dest, Dest::Nodes(vec![NodeId(2)]));

        // Node 2 acknowledges the flush; the coordinator commits and installs.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(1, 1, &[2]),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(down.iter().any(|event| event.is::<ViewCommit>()));
        assert!(down.iter().any(|event| event.is::<ViewInstall>()));
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn non_coordinator_participates_via_prepare_and_commit() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // The coordinator (node 1) proposes a view without node 3.
        let proposed = View::new(1, vec![NodeId(1), NodeId(2)]);
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(4, &proposed),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let acks: Vec<&Event> = down.iter().filter(|event| event.is::<FlushAck>()).collect();
        assert_eq!(acks.len(), 1);
        let ack = acks[0].get::<FlushAck>().unwrap();
        assert_eq!(ack.header.dest, Dest::Nodes(vec![NodeId(1)]));
        let body = ack.message.clone().pop::<FlushBody>().unwrap();
        assert_eq!(body.epoch, 4);
        assert_eq!(body.proposer, NodeId(1));
        assert_eq!(body.flushed, vec![NodeId(2)]);

        // While the view change is in progress the channel is blocked.
        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(2), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The commit installs the view and releases the buffered send.
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(4, &proposed),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(
            down.iter().any(|event| event.is::<DataEvent>()),
            "buffered send released"
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn a_dropped_prepare_is_retransmitted_until_the_round_completes() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        assert_eq!(prepares(&vsync.drain_down()).len(), 1);

        // Node 2 never saw the prepare (it was dropped). The retransmit tick
        // re-sends it to exactly the unflushed member.
        platform.advance(500);
        fire_pending_timers(&mut vsync, &mut platform);
        let resent = prepares(&vsync.drain_down());
        assert_eq!(resent.len(), 1, "prepare retransmitted");
        assert_eq!(resent[0].2, Dest::Nodes(vec![NodeId(2)]));
        assert_eq!(resent[0].0, 1, "same epoch, same round");

        // The (late) flush completes the round.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(1, 1, &[2]),
            )),
            &mut platform,
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1, "the round completes despite the drop");
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn a_dropped_flush_is_repaired_by_the_participants_retransmission() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        let proposed = View::new(1, vec![NodeId(1), NodeId(2)]);
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(1, &proposed),
            )),
            &mut platform,
        );
        assert_eq!(
            vsync
                .drain_down()
                .iter()
                .filter(|event| event.is::<FlushAck>())
                .count(),
            1
        );

        // The flush was dropped. On the next tick the participant re-sends
        // it towards the proposer without any prompting.
        platform.advance(500);
        fire_pending_timers(&mut vsync, &mut platform);
        let retransmitted: Vec<Event> = vsync.drain_down();
        let acks: Vec<&Event> = retransmitted
            .iter()
            .filter(|event| event.is::<FlushAck>())
            .collect();
        assert_eq!(acks.len(), 1, "flush retransmitted");
        let body = acks[0]
            .get::<FlushAck>()
            .unwrap()
            .message
            .clone()
            .pop::<FlushBody>()
            .unwrap();
        assert_eq!(body.epoch, 1);

        // A duplicate prepare (the proposer retransmitting) is answered
        // idempotently too.
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(1, &proposed),
            )),
            &mut platform,
        );
        assert_eq!(
            vsync
                .drain_down()
                .iter()
                .filter(|event| event.is::<FlushAck>())
                .count(),
            1,
            "duplicate prepare re-acked without re-entering the round"
        );
    }

    #[test]
    fn a_dropped_commit_is_replayed_when_the_straggler_keeps_flushing() {
        // Proposer side: the round commits, but node 2's commit was lost.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(1, 1, &[2]),
            )),
            &mut platform,
        );
        assert_eq!(view_changes(&mut platform).len(), 1, "round committed");
        vsync.drain_down();

        // Node 2 never received the commit, so its retransmit tick re-sends
        // the flush; the proposer answers with the commit.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(1, 1, &[2]),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let commits: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ViewCommit>())
            .collect();
        assert_eq!(commits.len(), 1, "commit replayed to the straggler");
        assert_eq!(
            commits[0].get::<ViewCommit>().unwrap().header.dest,
            Dest::Node(NodeId(2))
        );
    }

    #[test]
    fn a_timed_out_round_is_reproposed_under_a_fresh_epoch() {
        // The wedge regression, upgraded: a fully lost round no longer just
        // unwedges — the proposer retries the same membership change under a
        // higher epoch until it lands.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        let first = prepares(&vsync.drain_down());
        assert_eq!(first[0].0, 1);

        // Nothing ever comes back; past the timeout the round is aborted and
        // immediately re-proposed under epoch 2.
        platform.advance(4000);
        fire_pending_timers(&mut vsync, &mut platform);
        let retried = prepares(&vsync.drain_down());
        assert!(
            retried
                .iter()
                .any(|(epoch, view, _)| *epoch == 2 && view.members == vec![NodeId(1), NodeId(2)]),
            "re-proposed under a fresh epoch (got {retried:?})"
        );

        // The retried round completes normally.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(2, 1, &[2]),
            )),
            &mut platform,
        );
        assert_eq!(view_changes(&mut platform).len(), 1);
    }

    #[test]
    fn a_lost_commit_unblocks_the_participant_after_the_round_timeout() {
        // Regression: a member that flushed for a proposal whose commit was
        // lost stayed blocked forever, holding its buffered sends hostage.
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        let proposed = View::new(1, vec![NodeId(1), NodeId(2)]);
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(1, &proposed),
            )),
            &mut platform,
        );
        vsync.drain_down();

        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(2), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The commit never arrives: past the round timeout the member gives
        // up, resumes in its current view and releases the buffered send.
        platform.advance(4000);
        fire_pending_timers(&mut vsync, &mut platform);
        assert!(vsync
            .drain_down()
            .iter()
            .any(|event| event.is::<DataEvent>()));

        // A retried proposal (same ballot) is accepted afresh.
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(1, &proposed),
            )),
            &mut platform,
        );
        assert!(vsync
            .drain_down()
            .iter()
            .any(|event| event.is::<FlushAck>()));
    }

    #[test]
    fn equal_epochs_are_tie_broken_by_the_lower_proposer_id() {
        let mut platform = TestPlatform::new(NodeId(5));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[0, 1, 5]), &mut platform);
        platform.take_deliveries();

        // Proposer 1's round arrives first...
        let view_a = View::new(1, vec![NodeId(1), NodeId(5)]);
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(5)),
                round_message(2, &view_a),
            )),
            &mut platform,
        );
        vsync.drain_down();

        // ... then proposer 0's same-epoch round: the lower id wins, the
        // participant abandons round A and flushes for round B.
        let view_b = View::new(1, vec![NodeId(0), NodeId(5)]);
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(0),
                Dest::Node(NodeId(5)),
                round_message(2, &view_b),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let ack = down
            .iter()
            .find(|event| event.is::<FlushAck>())
            .expect("flush for the winning ballot");
        let body = ack
            .get::<FlushAck>()
            .unwrap()
            .message
            .clone()
            .pop::<FlushBody>()
            .unwrap();
        assert_eq!(body.proposer, NodeId(0));

        // The deposed proposer's retries are rejected.
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(5)),
                round_message(2, &view_a),
            )),
            &mut platform,
        );
        assert!(vsync
            .drain_down()
            .iter()
            .all(|event| !event.is::<FlushAck>()));
    }

    #[test]
    fn a_stale_flush_from_an_aborted_round_cannot_complete_a_newer_round() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3, 4]), &mut platform);
        platform.take_deliveries();

        // Round under epoch 1 (remove node 4) times out and is re-proposed
        // under epoch 2.
        vsync.run_up(Event::up(Suspect { node: NodeId(4) }), &mut platform);
        vsync.drain_down();
        platform.advance(4000);
        fire_pending_timers(&mut vsync, &mut platform);
        vsync.drain_down();

        // A flush replayed from the aborted epoch-1 round must not count
        // towards the epoch-2 round.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(1, 1, &[2, 3]),
            )),
            &mut platform,
        );
        assert!(
            view_changes(&mut platform).is_empty(),
            "stale-epoch flushes are dropped"
        );

        // The genuine epoch-2 flushes complete it.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(2, 1, &[2]),
            )),
            &mut platform,
        );
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                flush_message(2, 1, &[3]),
            )),
            &mut platform,
        );
        assert_eq!(view_changes(&mut platform).len(), 1);
    }

    #[test]
    fn a_suspected_coordinator_is_removed_by_its_successor() {
        // Node 1 is not the coordinator — until node 0 (the coordinator) is
        // suspected, at which point node 1 leads the removal round itself.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[0, 1, 2]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(Event::up(Suspect { node: NodeId(0) }), &mut platform);
        let sent = prepares(&vsync.drain_down());
        assert_eq!(sent.len(), 1, "the successor proposes the removal");
        assert_eq!(sent[0].1.members, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn a_suspect_queued_mid_round_is_removed_by_the_follow_up_round() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3, 4]), &mut platform);
        platform.take_deliveries();

        // Round 1 removes node 4. While it is in flight node 3 — whose flush
        // the round still awaits — is suspected too: the round can never
        // complete, so it is aborted and re-proposed without node 3.
        vsync.run_up(Event::up(Suspect { node: NodeId(4) }), &mut platform);
        vsync.drain_down();
        vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        let sent = prepares(&vsync.drain_down());
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, 2, "fresh epoch for the follow-up round");
        assert_eq!(sent[0].1.members, vec![NodeId(1), NodeId(2)]);

        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                flush_message(2, 1, &[2]),
            )),
            &mut platform,
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn an_alive_notification_cancels_a_queued_removal() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // Node 2 is not the coordinator, so the suspicion only queues the
        // removal; the Alive heals it before any round runs.
        vsync.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        vsync.run_up(Event::up(Alive { node: NodeId(3) }), &mut platform);

        // When node 1 is later suspected, node 2 becomes the effective
        // coordinator — and proposes a view that still contains node 3.
        vsync.run_up(Event::up(Suspect { node: NodeId(1) }), &mut platform);
        let sent = prepares(&vsync.drain_down());
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].1.members, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn join_requests_grow_the_view() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(7),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        let sent = prepares(&vsync.drain_down());
        assert_eq!(sent.len(), 1, "coordinator proposes the larger view");
        assert_eq!(sent[0].2, Dest::Nodes(vec![NodeId(2), NodeId(7)]));
        assert_eq!(
            sent[0].1.members,
            vec![NodeId(1), NodeId(2), NodeId(7)],
            "the joiner is part of the proposed view"
        );
    }

    #[test]
    fn a_join_request_from_a_current_member_reasserts_the_view() {
        // Restart before expulsion: the joiner is still in the view, so no
        // view change runs — the coordinator re-sends the current view as a
        // targeted commit instead.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(3),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        assert!(down.iter().all(|event| !event.is::<ViewPrepare>()));
        let commit = down
            .iter()
            .find(|event| event.is::<ViewCommit>())
            .expect("current view re-asserted to the joiner");
        assert_eq!(
            commit.get::<ViewCommit>().unwrap().header.dest,
            Dest::Node(NodeId(3))
        );
    }

    #[test]
    fn joining_mode_blocks_until_admitted_and_installs_the_join_view() {
        let mut params = vsync_params(&[1, 2, 3]);
        params.insert("joining".into(), "true".into());
        let mut platform = TestPlatform::new(NodeId(3));
        let mut vsync = Harness::new(VsyncLayer, &params, &mut platform);
        assert!(
            view_changes(&mut platform).is_empty(),
            "a joining node announces no view at init"
        );

        // Sends while joining are buffered.
        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(3), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The group re-asserts its current view (id 0, restart before
        // expulsion): the joiner accepts it although the id did not grow.
        let current = View::new(0, vec![NodeId(1), NodeId(2), NodeId(3)]);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(3)),
                round_message(3, &current),
            )),
            &mut platform,
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2), NodeId(3)]);
        // The buffered send flows once admitted.
        assert!(vsync
            .drain_down()
            .iter()
            .any(|event| event.is::<DataEvent>()));
    }

    #[test]
    fn gossip_mode_aggregates_flush_sets() {
        let mut params = vsync_params(&[0, 1, 2, 3, 4, 5, 6, 7]);
        params.insert("gossip_threshold".into(), "4".into());
        params.insert("fanout".into(), "2".into());
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &params, &mut platform);
        platform.take_deliveries();

        // Node 0 proposes the view without node 7.
        let proposed = View::new(1, (0..7).map(NodeId).collect());
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(0),
                Dest::Node(NodeId(2)),
                round_message(1, &proposed),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let ack = down
            .iter()
            .find(|event| event.is::<FlushAck>())
            .expect("flush sent");
        let Dest::Nodes(targets) = &ack.get::<FlushAck>().unwrap().header.dest else {
            panic!("gossip flush must address a node list");
        };
        assert!(targets.contains(&NodeId(0)), "proposer always included");
        assert_eq!(targets.len(), 3, "proposer + fanout peers");

        // A peer's aggregated set arrives: the union grew, so it is
        // re-gossiped; a duplicate of the same set is not.
        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(4),
                Dest::Node(NodeId(2)),
                flush_message(1, 0, &[4, 5]),
            )),
            &mut platform,
        );
        let down = vsync.drain_down();
        let merged = down
            .iter()
            .find(|event| event.is::<FlushAck>())
            .expect("grown set re-gossiped");
        let body = merged
            .get::<FlushAck>()
            .unwrap()
            .message
            .clone()
            .pop::<FlushBody>()
            .unwrap();
        assert_eq!(body.flushed, vec![NodeId(2), NodeId(4), NodeId(5)]);

        vsync.run_up(
            Event::up(FlushAck::new(
                NodeId(5),
                Dest::Node(NodeId(2)),
                flush_message(1, 0, &[4, 5]),
            )),
            &mut platform,
        );
        assert!(
            vsync
                .drain_down()
                .iter()
                .all(|event| !event.is::<FlushAck>()),
            "an unchanged union is not re-gossiped"
        );
    }

    #[test]
    fn stale_commits_and_duplicate_suspicions_are_ignored() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        // A replayed commit whose ballot does not outrank the installed one
        // must not reinstall anything.
        let stale = View::new(0, vec![NodeId(1), NodeId(2)]);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(2),
                Dest::Node(NodeId(1)),
                round_message(0, &stale),
            )),
            &mut platform,
        );
        assert!(view_changes(&mut platform).is_empty());

        // Suspecting an unknown node does nothing.
        vsync.run_up(Event::up(Suspect { node: NodeId(99) }), &mut platform);
        assert!(vsync
            .drain_down()
            .iter()
            .all(|event| !event.is::<ViewPrepare>()));
    }

    #[test]
    fn rival_same_id_commits_converge_on_the_winning_ballot() {
        // Two proposers raced the same epoch (a false suspicion) and both
        // assembled a view with the same id. Installs at an equal id are
        // ballot-ordered: a member that installed the losing round's view
        // still converges onto the winning (lower proposer id) one, and the
        // losing commit can never displace the winner.
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[0, 1, 2, 3]), &mut platform);
        platform.take_deliveries();

        let losing = View::new(1, vec![NodeId(1), NodeId(2), NodeId(3)]);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(2, &losing),
            )),
            &mut platform,
        );
        assert_eq!(
            view_changes(&mut platform).len(),
            1,
            "losing view installs first"
        );

        let winning = View::new(1, vec![NodeId(0), NodeId(1), NodeId(2)]);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(0),
                Dest::Node(NodeId(2)),
                round_message(2, &winning),
            )),
            &mut platform,
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1, "equal-id winning ballot supersedes");
        assert_eq!(changes[0].1, vec![NodeId(0), NodeId(1), NodeId(2)]);

        // The losing commit replayed afterwards is rejected.
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(2, &losing),
            )),
            &mut platform,
        );
        assert!(view_changes(&mut platform).is_empty());
    }

    #[test]
    fn a_rejoin_reset_reenters_joining_mode() {
        let mut platform = TestPlatform::new(NodeId(3));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // A round is in flight when the reset arrives: all of it is wiped.
        vsync.run_up(Event::up(Suspect { node: NodeId(1) }), &mut platform);
        vsync.run_up(Event::up(Rejoin {}), &mut platform);
        vsync.drain_down();

        // Sends are buffered while re-joining.
        let held = vsync.run_down(
            Event::down(DataEvent::to_group(NodeId(3), Message::new())),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // The group re-admits the node (any ballot: joining mode accepts
        // every view containing the local node); the buffered send flows.
        let readmitted = View::new(4, vec![NodeId(1), NodeId(2), NodeId(3)]);
        vsync.run_up(
            Event::up(ViewCommit::new(
                NodeId(1),
                Dest::Node(NodeId(3)),
                round_message(2, &readmitted),
            )),
            &mut platform,
        );
        let changes = view_changes(&mut platform);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(vsync
            .drain_down()
            .iter()
            .any(|event| event.is::<DataEvent>()));
    }

    #[test]
    fn a_vanished_joiner_does_not_loop_the_join_round_forever() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2]), &mut platform);
        platform.take_deliveries();

        // Node 7 asks to join, then crashes before ever flushing.
        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(7),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        assert_eq!(prepares(&vsync.drain_down()).len(), 1);

        // The round times out; the dead joiner's queued join is dropped, so
        // no fresh round chases it.
        platform.advance(4000);
        fire_pending_timers(&mut vsync, &mut platform);
        assert!(
            prepares(&vsync.drain_down()).is_empty(),
            "no endless re-proposal for a joiner that never flushed"
        );

        // A live joiner simply re-queues itself with its retransmitted
        // request and is admitted normally.
        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(7),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        let retried = prepares(&vsync.drain_down());
        assert_eq!(retried.len(), 1);
        assert_eq!(retried[0].1.members, vec![NodeId(1), NodeId(2), NodeId(7)]);
    }

    #[test]
    fn a_stale_prepare_is_nacked_with_the_promised_ballot() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // A rival proposer (node 3) opened a high-epoch round: node 2 now
        // holds the promise (5, 3).
        let rival = View::new(1, vec![NodeId(1), NodeId(2), NodeId(3)]);
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(3),
                Dest::Node(NodeId(2)),
                round_message(5, &rival),
            )),
            &mut platform,
        );

        // Node 1's prepare under epoch 1 loses to that promise. It must be
        // answered with a StaleBallot naming the stronger ballot — not
        // silently dropped, which would leave node 1 crawling one epoch per
        // round timeout.
        let admitted = View::new(1, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        vsync.drain_down();
        vsync.run_up(
            Event::up(ViewPrepare::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                round_message(1, &admitted),
            )),
            &mut platform,
        );
        let events = vsync.drain_down();
        let nack = events
            .iter()
            .find_map(|event| event.get::<StaleBallot>())
            .expect("stale prepare answered with a StaleBallot");
        assert_eq!(nack.header.dest, Dest::Node(NodeId(1)));
        let mut message = nack.message.clone();
        assert_eq!(message.pop::<u64>().unwrap(), 5);
        assert_eq!(message.pop::<NodeId>().unwrap(), NodeId(3));
    }

    #[test]
    fn a_stale_ballot_nack_jumps_the_proposer_past_the_obstruction() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut vsync = Harness::new(VsyncLayer, &vsync_params(&[1, 2, 3]), &mut platform);
        platform.take_deliveries();

        // Node 4 asks to join: node 1 (the coordinator) opens round e=1.
        vsync.run_up(
            Event::up(JoinRequest::new(
                NodeId(4),
                Dest::Node(NodeId(1)),
                Message::new(),
            )),
            &mut platform,
        );
        let opened = prepares(&vsync.drain_down());
        assert_eq!(opened.len(), 1);
        assert_eq!(opened[0].0, 1);

        // A participant rejects: it promised ballot (5, node 7) to a round
        // the proposer abandoned. The coordinator re-proposes immediately
        // under an epoch beating the reported promise, keeping the queued
        // join alive.
        let mut message = Message::new();
        message.push(&NodeId(7));
        message.push(&5u64);
        vsync.run_up(
            Event::up(StaleBallot::new(NodeId(2), Dest::Node(NodeId(1)), message)),
            &mut platform,
        );
        let reproposed = prepares(&vsync.drain_down());
        assert_eq!(reproposed.len(), 1, "the round is re-proposed immediately");
        assert!(
            ballot_beats(reproposed[0].0, NodeId(1), (5, NodeId(7))),
            "the fresh epoch beats the promised ballot"
        );
        assert!(
            reproposed[0].1.contains(NodeId(4)),
            "the queued join rides the re-proposal"
        );
    }
}
