//! Reusable NACK / anti-entropy repair machinery.
//!
//! Both the epidemic multicast layer ([`crate::gossip`]) and the
//! room-sharded overlay (`morpheus-overlay`) recover from probabilistic
//! push-phase loss the same way: every member keeps a bounded log of
//! recently delivered messages keyed by `(origin, inc, seq)`, advertises
//! the spans it can serve, and answers NACK pulls with the logged
//! originals. This module holds the two data structures that make that
//! safe and bounded, extracted from the gossip layer so the overlay's
//! per-room trees ride the exact same repair log semantics:
//!
//! * [`Delivered`] — the per-stream delivery record (contiguous floor plus
//!   a capped sparse set), the ground truth that keeps repair re-streams
//!   from ever re-delivering.
//! * [`RepairLog`] — the bounded `(cap ring, TTL age)` store of delivered
//!   originals, servable on a pull.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use morpheus_appia::platform::NodeId;

/// A message stream: one `(origin, incarnation)` pair. Sequence numbers
/// are dense within a stream; a node restart opens a fresh incarnation and
/// with it a fresh sequence space.
pub type StreamKey = (NodeId, u64);

/// Sparse-set cap of the per-stream delivery tracker: when more than this
/// many delivered sequence numbers sit above the contiguous floor, the
/// oldest gaps are abandoned (treated as delivered) so the tracker's memory
/// stays bounded even for gaps no repair log can serve any more.
pub const DELIVERED_GAP_CAP: usize = 512;

/// Per-`(origin, inc)` record of delivered sequence numbers: a contiguous
/// floor (everything at or below it was delivered or abandoned) plus a
/// sparse set above it. Sequence numbers are dense within a stream, so the
/// floor advances and the sparse set stays small; unlike a duplicate-
/// suppression seen set this record is never evicted by capacity pressure,
/// which is what makes the repair pass safe against re-delivery.
#[derive(Debug, Default, Clone)]
pub struct Delivered {
    pub(crate) floor: u64,
    // bound: capped at DELIVERED_GAP_CAP entries; overflow folds into the floor.
    pub(crate) above: BTreeSet<u64>,
}

impl Delivered {
    /// Whether `seq` has been delivered (or abandoned past recovery).
    pub fn contains(&self, seq: u64) -> bool {
        seq <= self.floor || self.above.contains(&seq)
    }

    /// The contiguous delivery floor: every sequence number at or below it
    /// was delivered or abandoned.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Records a delivered sequence number; returns `false` when it was
    /// already recorded (a late duplicate).
    pub fn record(&mut self, seq: u64) -> bool {
        if self.contains(seq) {
            return false;
        }
        self.above.insert(seq);
        while self.above.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
        // Bounded memory: when too many delivered seqs sit above the floor,
        // the oldest gaps are abandoned — no repair log still holds them.
        while self.above.len() > DELIVERED_GAP_CAP {
            let Some(lowest) = self.above.iter().next().copied() else {
                break;
            };
            self.floor = lowest;
            while {
                let drained = self.above.remove(&self.floor);
                let next = self.above.remove(&(self.floor + 1));
                if next {
                    self.floor += 1;
                }
                drained || next
            } {}
        }
        true
    }

    /// Abandons every gap at or below `upto`: the span was evicted from all
    /// reachable repair logs (a floor answer) and is being covered by a
    /// snapshot catch-up instead, so NACK repair must stop asking for it
    /// and late copies must not re-deliver.
    pub fn fast_forward(&mut self, upto: u64) {
        if upto <= self.floor {
            return;
        }
        self.floor = upto;
        self.above = self.above.split_off(&(self.floor + 1));
        while self.above.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
    }

    /// Appends the sequence numbers in `[lo, hi]` not yet delivered, up to
    /// `limit` entries.
    pub fn missing_in(&self, lo: u64, hi: u64, limit: usize, out: &mut Vec<u64>) {
        let start = lo.max(self.floor + 1);
        for seq in start..=hi {
            if out.len() >= limit {
                return;
            }
            if !self.above.contains(&seq) {
                out.push(seq);
            }
        }
    }
}

/// The bounded repair log: recently delivered originals keyed by stream
/// and sequence number, servable on a NACK pull. Two independent bounds —
/// an insertion-ordered ring of at most `cap` entries and an age limit of
/// `ttl_ms` — are enforced by the caller passing its knobs to [`store`]
/// and [`evict`], so one log type serves sessions with different budgets.
///
/// [`store`]: RepairLog::store
/// [`evict`]: RepairLog::evict
#[derive(Debug, Default)]
pub struct RepairLog<M> {
    // bound: `cap` ring + `ttl_ms` age passed to store/evict, enforced via `order`.
    streams: HashMap<StreamKey, BTreeMap<u64, M>>,
    // bound: same ring as `streams` -- `cap` entries, `ttl_ms` age.
    order: VecDeque<(StreamKey, u64, u64)>,
}

impl<M> RepairLog<M> {
    /// An empty log.
    pub fn new() -> Self {
        Self {
            streams: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Messages currently held across all streams.
    pub fn len(&self) -> usize {
        self.streams.values().map(BTreeMap::len).sum()
    }

    /// Whether the log holds no messages at all.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The logged messages of one stream, ordered by sequence number.
    pub fn stream(&self, key: &StreamKey) -> Option<&BTreeMap<u64, M>> {
        self.streams.get(key)
    }

    /// One logged original, if still held.
    pub fn get(&self, key: &StreamKey, seq: u64) -> Option<&M> {
        self.streams.get(key).and_then(|stream| stream.get(&seq))
    }

    /// Drops a whole stream (its incarnation went stale). The ring keeps
    /// its now-dangling entries; they are skipped on eviction because the
    /// map lookup fails.
    pub fn drop_stream(&mut self, key: &StreamKey) {
        self.streams.remove(key);
    }

    /// Stores a delivered message, evicting the oldest entries beyond
    /// `cap`. Re-storing an already-held `(key, seq)` replaces the payload
    /// without consuming another ring slot.
    pub fn store(&mut self, key: StreamKey, seq: u64, message: M, now_ms: u64, cap: usize) {
        let stream = self.streams.entry(key).or_default();
        if stream.insert(seq, message).is_none() {
            self.order.push_back((key, seq, now_ms));
        }
        while self.order.len() > cap {
            let Some((old_key, old_seq, _)) = self.order.pop_front() else {
                break;
            };
            if let Some(stream) = self.streams.get_mut(&old_key) {
                stream.remove(&old_seq);
                if stream.is_empty() {
                    self.streams.remove(&old_key);
                }
            }
        }
    }

    /// Drops logged messages older than `ttl_ms`.
    pub fn evict(&mut self, now_ms: u64, ttl_ms: u64) {
        while let Some((key, seq, at)) = self.order.front().copied() {
            if now_ms.saturating_sub(at) < ttl_ms {
                break;
            }
            self.order.pop_front();
            if let Some(stream) = self.streams.get_mut(&key) {
                stream.remove(&seq);
                if stream.is_empty() {
                    self.streams.remove(&key);
                }
            }
        }
    }

    /// The `(stream, lo, hi)` spans the log can currently serve, in
    /// deterministic `(origin, inc)` order — the digest payload.
    pub fn spans(&self) -> Vec<(StreamKey, u64, u64)> {
        let mut entries: Vec<(StreamKey, u64, u64)> = self
            .streams
            .iter()
            .filter_map(|(key, stream)| {
                let lo = *stream.keys().next()?;
                let hi = *stream.keys().next_back()?;
                Some((*key, lo, hi))
            })
            .collect();
        entries.sort_unstable_by_key(|((origin, inc), _, _)| (origin.0, *inc));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivered_floor_folds_contiguous_runs() {
        let mut delivered = Delivered::default();
        assert!(delivered.record(1));
        assert!(delivered.record(2));
        assert_eq!(delivered.floor(), 2);
        assert!(delivered.record(5));
        assert_eq!(delivered.floor(), 2, "gap at 3-4 holds the floor");
        assert!(!delivered.record(5), "late duplicate");
        assert!(delivered.record(3));
        assert!(delivered.record(4));
        assert_eq!(delivered.floor(), 5, "contiguous run folds into the floor");
    }

    #[test]
    fn delivered_fast_forward_abandons_gaps() {
        let mut delivered = Delivered::default();
        delivered.record(1);
        delivered.record(10);
        delivered.fast_forward(9);
        assert_eq!(delivered.floor(), 10, "seq 10 folds in after the jump");
        let mut missing = Vec::new();
        delivered.missing_in(1, 12, 16, &mut missing);
        assert_eq!(missing, vec![11, 12]);
    }

    #[test]
    fn log_ring_and_ttl_bounds_hold() {
        let origin = NodeId(1);
        let mut log: RepairLog<u32> = RepairLog::new();
        for seq in 0..8u64 {
            log.store((origin, 0), seq, seq as u32, seq * 100, 4);
        }
        assert_eq!(log.len(), 4, "ring cap evicts the oldest half");
        assert!(log.get(&(origin, 0), 3).is_none());
        assert_eq!(log.get(&(origin, 0), 7), Some(&7));
        let spans = log.spans();
        assert_eq!(spans, vec![((origin, 0), 4, 7)]);
        log.evict(949, 250);
        assert_eq!(log.spans(), vec![((origin, 0), 7, 7)]);
        log.drop_stream(&(origin, 0));
        assert!(log.is_empty());
        // Ring entries for dropped streams are skipped without panicking.
        log.evict(10_000, 1);
    }
}
