//! The shared round engine.
//!
//! Reconfiguration rounds (`morpheus-core`'s control layer), view-synchrony
//! rounds ([`crate::vsync`]) and state-transfer epochs ([`crate::recovery`])
//! are the same machine: a *proposer* opens a round under a monotonically
//! increasing epoch, ships a proposal to a set of participants, collects acks,
//! retransmits to the missing on a timer, aborts and re-proposes under a fresh
//! epoch on timeout, and fast-forwards its epoch when a participant reports a
//! stronger promise. This module is the one copy of that machinery; the three
//! protocols instantiate it and keep only their wire formats and payloads.
//!
//! * [`Ballot`] — the Paxos-style `(epoch, holder)` ordering: higher epoch
//!   wins, equal epochs tie-break towards the **lower** node id.
//! * [`Engine`] — epoch monotonicity, the in-flight [`Round`], ack
//!   bookkeeping, the retransmit/timeout [`Engine::tick`], abort/re-propose
//!   and StaleBallot [`Engine::fast_forward`].
//! * [`Engine::completed`] — the `AwaitThreshold`-style completion predicate:
//!   every participant outside the caller's exclusion set (suspected members,
//!   typically) has acked.
//!
//! The engine is transport-agnostic: it never touches events, messages or
//! timers. Callers translate its outcomes ([`Promise`], [`AckOutcome`],
//! [`Tick`]) into their own wire traffic.

use std::collections::BTreeSet;

use morpheus_appia::platform::NodeId;

/// Whether ballot `(epoch, holder)` beats the ballot `current`.
///
/// Higher epochs win; at equal epochs the **lower** node id wins, so two
/// concurrent proposers at the same epoch always resolve the same way on
/// every node.
pub fn ballot_beats(epoch: u64, holder: NodeId, current: (u64, NodeId)) -> bool {
    epoch > current.0 || (epoch == current.0 && holder.0 < current.1 .0)
}

/// A Paxos-style ballot: a proposal epoch plus the proposing node.
///
/// The ordering is total: `a > b` exactly when `a` would beat `b` in a
/// promise contest (higher epoch, or equal epoch and lower holder id).
/// [`Ballot::ZERO`] — epoch 0 held by node 0 — is the identity no real
/// proposal can tie with more strongly: every opened round starts at epoch 1
/// or above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ballot {
    /// The proposal epoch.
    pub epoch: u64,
    /// The node that opened (or promised) this epoch.
    pub holder: NodeId,
}

impl Ballot {
    /// The pre-history ballot every engine starts from.
    pub const ZERO: Ballot = Ballot {
        epoch: 0,
        holder: NodeId(0),
    };

    /// A ballot at `epoch` held by `holder`.
    pub fn new(epoch: u64, holder: NodeId) -> Self {
        Self { epoch, holder }
    }

    /// Whether this ballot wins a promise contest against `other`.
    pub fn beats(self, other: Ballot) -> bool {
        ballot_beats(self.epoch, self.holder, (other.epoch, other.holder))
    }
}

impl Ord for Ballot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lower holder id is the *stronger* ballot at equal epochs, hence the
        // reversed holder comparison.
        self.epoch
            .cmp(&other.epoch)
            .then(other.holder.0.cmp(&self.holder.0))
    }
}

impl PartialOrd for Ballot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The outcome of a participant-side promise attempt
/// ([`Engine::try_promise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Promise {
    /// The ballot is the strongest seen (or re-presents the current promise
    /// with no round in flight): accept it and open the round under it.
    Accepted,
    /// The exact promised ballot arrived again while its round is still in
    /// flight — a retransmission; re-ack, do not re-deliver the proposal.
    Duplicate,
    /// A stronger ballot has already been promised. The carried ballot is
    /// what the proposer should be told (the `StaleBallot` NACK payload).
    Superseded(Ballot),
}

/// The outcome of recording a participant's ack ([`Engine::record_ack`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// A fresh ack for the in-flight round: re-check completion.
    Recorded,
    /// Already acked this round — a retransmission, safe to ignore.
    Duplicate,
    /// The ack names a different epoch (or no round is in flight): a replay
    /// from an aborted or completed round. It must never count towards the
    /// current round's completion.
    Stale,
}

/// What a timer tick asks the caller to do ([`Engine::tick`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tick<P> {
    /// No round is in flight; nothing to do.
    Idle,
    /// The round outlived the timeout: abort it and re-propose under a fresh
    /// epoch (the engine does *not* abort on its own — callers own the
    /// re-propose policy).
    TimedOut,
    /// The round is still young: retransmit the proposal to these
    /// participants (the ones that have not acked yet; empty when everyone
    /// acked but completion is blocked on an exclusion).
    Retransmit(Vec<P>),
}

/// One in-flight round: the proposal's ballot, who must ack, who has.
#[derive(Debug, Clone)]
pub struct Round<P: Ord + Copy> {
    /// The ballot the round runs under.
    pub ballot: Ballot,
    // bound: frozen at open (grown only by extend_participants when a
    // transfer learns its chunk count); one entry per round participant,
    // cleared with the round on abort/complete.
    participants: BTreeSet<P>,
    // bound: subset of `participants` plus stray acks from members that
    // joined mid-round; cleared with the round on abort/complete.
    acked: BTreeSet<P>,
    /// When the round was opened (or last made progress, if the caller
    /// refreshes via [`Engine::note_progress`]).
    pub started_at_ms: u64,
    /// How many retransmission ticks the round has survived.
    pub retransmits: u64,
}

impl<P: Ord + Copy> Round<P> {
    /// The participants the round was opened over.
    pub fn participants(&self) -> &BTreeSet<P> {
        &self.participants
    }

    /// The participants whose acks have been recorded.
    pub fn acked(&self) -> &BTreeSet<P> {
        &self.acked
    }
}

/// The reusable round engine: epoch monotonicity, ballot ordering, ack
/// bookkeeping, retransmit/timeout ticks and stale-ballot fast-forward.
///
/// `P` is the participant key — `NodeId` for membership rounds, a chunk
/// index for state transfers. The engine holds at most one round in flight;
/// epochs only move forward (abort preserves the epoch, [`Engine::reset`] is
/// the single deliberate exception for a node restarting from scratch).
#[derive(Debug, Clone)]
pub struct Engine<P: Ord + Copy> {
    /// The strongest ballot seen: the highest epoch this engine opened
    /// itself or promised to another proposer.
    promised: Ballot,
    /// The in-flight round, if any.
    round: Option<Round<P>>,
    /// Rounds opened over the engine's lifetime.
    pub opened: u64,
    /// Rounds aborted (timeout, suspicion, or a stronger ballot).
    pub aborted: u64,
}

impl<P: Ord + Copy> Default for Engine<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Ord + Copy> Engine<P> {
    /// A fresh engine at [`Ballot::ZERO`] with no round in flight.
    pub fn new() -> Self {
        Self {
            promised: Ballot::ZERO,
            round: None,
            opened: 0,
            aborted: 0,
        }
    }

    /// The current epoch (never decreases except across [`Engine::reset`]).
    pub fn epoch(&self) -> u64 {
        self.promised.epoch
    }

    /// The strongest ballot seen so far.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The in-flight round, if any.
    pub fn round(&self) -> Option<&Round<P>> {
        self.round.as_ref()
    }

    /// Whether a round is in flight.
    pub fn in_flight(&self) -> bool {
        self.round.is_some()
    }

    /// The in-flight round's epoch, if any.
    pub fn round_epoch(&self) -> Option<u64> {
        self.round.as_ref().map(|round| round.ballot.epoch)
    }

    /// Opens a proposer-side round under a fresh epoch (`epoch() + 1`) held
    /// by `holder`, over `participants`. Returns the new ballot.
    pub fn open(
        &mut self,
        holder: NodeId,
        participants: impl IntoIterator<Item = P>,
        now_ms: u64,
    ) -> Ballot {
        let ballot = Ballot::new(self.promised.epoch + 1, holder);
        self.open_at(ballot, participants, now_ms);
        ballot
    }

    /// Opens a round under an exact ballot: the participant side joining a
    /// promised proposal, or a proposer working in a reserved epoch
    /// namespace (catch-up transfers). The promised epoch only moves
    /// forward — an `open_at` below the current promise opens the round but
    /// cannot regress the epoch.
    pub fn open_at(
        &mut self,
        ballot: Ballot,
        participants: impl IntoIterator<Item = P>,
        now_ms: u64,
    ) {
        if ballot.beats(self.promised) {
            self.promised = ballot;
        }
        self.round = Some(Round {
            ballot,
            participants: participants.into_iter().collect(),
            acked: BTreeSet::new(),
            started_at_ms: now_ms,
            retransmits: 0,
        });
        self.opened += 1;
    }

    /// Adopts `ballot` as the strongest seen if it beats the current
    /// promise. Returns whether it did. (A committed decision observed from
    /// another proposer, for example.)
    pub fn adopt(&mut self, ballot: Ballot) -> bool {
        if ballot.beats(self.promised) {
            self.promised = ballot;
            true
        } else {
            false
        }
    }

    /// Participant-side promise: decides whether a proposal's ballot should
    /// be accepted, re-acked, or NACKed with the stronger promise.
    pub fn try_promise(&mut self, ballot: Ballot) -> Promise {
        if ballot.beats(self.promised) {
            self.promised = ballot;
            return Promise::Accepted;
        }
        if ballot == self.promised {
            return if self.round.is_none() {
                // The promised round was aborted locally (timeout,
                // suspicion): re-presenting the same ballot re-opens it.
                Promise::Accepted
            } else {
                Promise::Duplicate
            };
        }
        Promise::Superseded(self.promised)
    }

    /// Fast-forwards the epoch past `epoch` (a `StaleBallot` NACK citing a
    /// stronger promise): the next [`Engine::open`] proposes above it
    /// instead of crawling there one timeout at a time.
    pub fn fast_forward(&mut self, epoch: u64) {
        self.promised.epoch = self.promised.epoch.max(epoch);
    }

    /// Aborts the in-flight round, preserving the epoch (monotonicity: the
    /// re-propose opens above it). Returns the aborted round.
    pub fn abort(&mut self) -> Option<Round<P>> {
        let round = self.round.take();
        if round.is_some() {
            self.aborted += 1;
        }
        round
    }

    /// Completes (takes) the in-flight round on commit.
    pub fn complete(&mut self) -> Option<Round<P>> {
        self.round.take()
    }

    /// Forgets everything — ballot back to [`Ballot::ZERO`], no round. Only
    /// for a node deliberately restarting from scratch (rejoin): epochs are
    /// otherwise monotonic for the engine's lifetime.
    pub fn reset(&mut self) {
        self.promised = Ballot::ZERO;
        self.round = None;
    }

    /// Records `from`'s ack for round `epoch`.
    pub fn record_ack(&mut self, epoch: u64, from: P) -> AckOutcome {
        match &mut self.round {
            Some(round) if round.ballot.epoch == epoch => {
                if round.acked.insert(from) {
                    AckOutcome::Recorded
                } else {
                    AckOutcome::Duplicate
                }
            }
            _ => AckOutcome::Stale,
        }
    }

    /// Records a batch of acks for round `epoch` (a gossiped flush set),
    /// returning how many were new. Stale epochs record nothing.
    pub fn merge_acks(&mut self, epoch: u64, from: impl IntoIterator<Item = P>) -> usize {
        match &mut self.round {
            Some(round) if round.ballot.epoch == epoch => from
                .into_iter()
                .filter(|participant| round.acked.insert(*participant))
                .count(),
            _ => 0,
        }
    }

    /// Whether `participant` has acked the in-flight round.
    pub fn has_acked(&self, participant: P) -> bool {
        self.round
            .as_ref()
            .is_some_and(|round| round.acked.contains(&participant))
    }

    /// Replaces the in-flight round's participant set (a view installed
    /// mid-round changes who must ack a reconfiguration).
    pub fn set_participants(&mut self, participants: impl IntoIterator<Item = P>) {
        if let Some(round) = &mut self.round {
            round.participants = participants.into_iter().collect();
        }
    }

    /// Grows the in-flight round's participant set (a transfer learning its
    /// chunk count from the first chunk).
    pub fn extend_participants(&mut self, participants: impl IntoIterator<Item = P>) {
        if let Some(round) = &mut self.round {
            round.participants.extend(participants);
        }
    }

    /// The `AwaitThreshold` completion predicate: a round is in flight and
    /// every participant outside `excluded` (suspected members, typically)
    /// has acked.
    pub fn completed(&self, excluded: &BTreeSet<P>) -> bool {
        self.round.as_ref().is_some_and(|round| {
            round.participants.iter().all(|participant| {
                excluded.contains(participant) || round.acked.contains(participant)
            })
        })
    }

    /// The participants that have not acked the in-flight round yet — the
    /// retransmission targets. Empty when no round is in flight.
    pub fn missing(&self) -> Vec<P> {
        match &self.round {
            Some(round) => round
                .participants
                .iter()
                .filter(|participant| !round.acked.contains(participant))
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Refreshes the round's progress clock (state transfers time out on
    /// *stalls*, not on total round age).
    pub fn note_progress(&mut self, now_ms: u64) {
        if let Some(round) = &mut self.round {
            round.started_at_ms = now_ms;
        }
    }

    /// One retransmission-interval tick: decides between timeout (abort +
    /// re-propose, owned by the caller) and retransmission to the missing
    /// participants. Counts a retransmission when there is anyone to
    /// retransmit to.
    pub fn tick(&mut self, now_ms: u64, timeout_ms: u64) -> Tick<P> {
        let Some(round) = &mut self.round else {
            return Tick::Idle;
        };
        if now_ms.saturating_sub(round.started_at_ms) >= timeout_ms {
            return Tick::TimedOut;
        }
        let missing: Vec<P> = round
            .participants
            .iter()
            .filter(|participant| !round.acked.contains(participant))
            .copied()
            .collect();
        if !missing.is_empty() {
            round.retransmits += 1;
        }
        Tick::Retransmit(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32) -> NodeId {
        NodeId(id)
    }

    #[test]
    fn ballot_order_prefers_higher_epoch_then_lower_id() {
        let a = Ballot::new(2, node(5));
        let b = Ballot::new(1, node(0));
        assert!(a.beats(b) && a > b);
        let c = Ballot::new(2, node(3));
        assert!(c.beats(a) && c > a, "lower id wins the tie-break");
        assert!(!a.beats(a));
        assert!(Ballot::new(1, node(1)).beats(Ballot::ZERO));
    }

    #[test]
    fn open_bumps_the_epoch_and_freezes_participants() {
        let mut engine: Engine<NodeId> = Engine::new();
        let ballot = engine.open(node(0), [node(1), node(2)], 100);
        assert_eq!(ballot, Ballot::new(1, node(0)));
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.round().unwrap().participants().len(), 2);
        assert_eq!(engine.missing(), vec![node(1), node(2)]);
    }

    #[test]
    fn completion_requires_every_unexcluded_participant() {
        let mut engine: Engine<NodeId> = Engine::new();
        engine.open(node(0), [node(1), node(2), node(3)], 0);
        assert_eq!(engine.record_ack(1, node(1)), AckOutcome::Recorded);
        assert_eq!(engine.record_ack(1, node(1)), AckOutcome::Duplicate);
        let none = BTreeSet::new();
        assert!(!engine.completed(&none));
        // Excluding the suspects lowers the threshold to the live set.
        let suspects: BTreeSet<NodeId> = [node(2), node(3)].into();
        assert!(engine.completed(&suspects));
        engine.record_ack(1, node(2));
        engine.record_ack(1, node(3));
        assert!(engine.completed(&none));
        assert!(engine.missing().is_empty());
    }

    #[test]
    fn stale_acks_never_count() {
        let mut engine: Engine<NodeId> = Engine::new();
        engine.open(node(0), [node(1)], 0);
        assert_eq!(engine.record_ack(7, node(1)), AckOutcome::Stale);
        engine.abort();
        // A replay of a current-epoch ack after the abort is stale too.
        assert_eq!(engine.record_ack(1, node(1)), AckOutcome::Stale);
        // Re-proposing opens a fresh epoch; the old epoch's acks stay stale.
        engine.open(node(0), [node(1)], 10);
        assert_eq!(engine.round_epoch(), Some(2));
        assert_eq!(engine.record_ack(1, node(1)), AckOutcome::Stale);
        assert!(!engine.completed(&BTreeSet::new()));
    }

    #[test]
    fn tick_retransmits_young_rounds_and_times_out_old_ones() {
        let mut engine: Engine<NodeId> = Engine::new();
        engine.open(node(0), [node(1), node(2)], 1_000);
        engine.record_ack(1, node(1));
        assert_eq!(engine.tick(1_500, 4_000), Tick::Retransmit(vec![node(2)]));
        assert_eq!(engine.round().unwrap().retransmits, 1);
        assert_eq!(engine.tick(5_000, 4_000), Tick::TimedOut);
        // Timeout does not abort by itself: the caller owns re-propose.
        assert!(engine.in_flight());
        engine.abort();
        assert_eq!(engine.tick(5_000, 4_000), Tick::Idle);
        assert_eq!(engine.aborted, 1);
    }

    #[test]
    fn promises_accept_stronger_ballots_and_nack_weaker_ones() {
        let mut engine: Engine<NodeId> = Engine::new();
        assert_eq!(
            engine.try_promise(Ballot::new(3, node(2))),
            Promise::Accepted
        );
        engine.open_at(Ballot::new(3, node(2)), [node(0)], 0);
        // The same ballot while its round is in flight is a retransmission.
        assert_eq!(
            engine.try_promise(Ballot::new(3, node(2))),
            Promise::Duplicate
        );
        // A lower id at the same epoch supersedes; a higher id is NACKed.
        assert_eq!(
            engine.try_promise(Ballot::new(3, node(1))),
            Promise::Accepted
        );
        assert_eq!(
            engine.try_promise(Ballot::new(3, node(2))),
            Promise::Superseded(Ballot::new(3, node(1)))
        );
        // After a local abort, re-presenting the promised ballot re-opens it.
        engine.abort();
        engine.round = None;
        assert_eq!(
            engine.try_promise(Ballot::new(3, node(1))),
            Promise::Accepted
        );
    }

    #[test]
    fn epochs_survive_abort_and_only_reset_on_rejoin() {
        let mut engine: Engine<NodeId> = Engine::new();
        engine.open(node(0), [node(1)], 0);
        engine.abort();
        assert_eq!(engine.epoch(), 1, "abort keeps the epoch");
        engine.open(node(0), [node(1)], 10);
        assert_eq!(engine.round_epoch(), Some(2));
        engine.reset();
        assert_eq!(engine.epoch(), 0);
        assert!(!engine.in_flight());
    }

    /// Pins the PR 6 StaleBallot-cascade livelock (fault-explorer seeds 8
    /// and 9, churn+corrupt) at the engine level. A rejoiner that crashed
    /// mid-proposal leaves a trail of abandoned high-epoch promises on the
    /// survivors (epochs 5..=9 here). Without the fast-forward, the live
    /// proposer at epoch 1 re-proposes at 2, 3, 4, … — one *timeout* per
    /// epoch — and the group livelocks behind the trail. With it, every
    /// NACK jumps the proposer straight past the cited promise, so the
    /// cascade costs one re-propose per distinct promise, not one per epoch.
    #[test]
    fn stale_ballot_cascade_fast_forwards_past_abandoned_promises() {
        let mut proposer: Engine<NodeId> = Engine::new();
        let mut survivor: Engine<NodeId> = Engine::new();
        // The rejoiner's abandoned rounds scattered promises at 5..=9.
        for epoch in 5..=9u64 {
            survivor.adopt(Ballot::new(epoch, node(7)));
        }

        let mut proposals = 0;
        loop {
            let ballot = proposer.open(node(1), [node(2)], proposals * 100);
            proposals += 1;
            assert!(proposals <= 2, "fast-forward must not crawl epoch by epoch");
            match survivor.try_promise(ballot) {
                Promise::Accepted => break,
                Promise::Superseded(promised) => {
                    proposer.fast_forward(promised.epoch);
                    proposer.abort();
                }
                Promise::Duplicate => unreachable!("no round in flight on the survivor"),
            }
        }
        // One NACK (citing epoch 9), one fast-forwarded re-propose at 10.
        assert_eq!(proposals, 2);
        assert_eq!(proposer.round_epoch(), Some(10));
        assert!(proposer.epoch() > 9);
    }

    #[test]
    fn merge_acks_counts_only_fresh_entries_for_the_exact_epoch() {
        let mut engine: Engine<NodeId> = Engine::new();
        engine.open(node(0), [node(1), node(2), node(3)], 0);
        assert_eq!(engine.merge_acks(1, [node(1), node(2)]), 2);
        assert_eq!(engine.merge_acks(1, [node(2), node(3)]), 1);
        assert_eq!(
            engine.merge_acks(2, [node(3)]),
            0,
            "stale epoch merges nothing"
        );
        assert!(engine.completed(&BTreeSet::new()));
    }

    #[test]
    fn chunk_index_rounds_learn_their_participants_late() {
        // The recovery instantiation: participants are chunk indices, the
        // total is only known once the first chunk arrives.
        let mut engine: Engine<u32> = Engine::new();
        engine.open_at(Ballot::new(1, node(0)), [], 0);
        engine.extend_participants(0..3);
        engine.record_ack(1, 0);
        engine.record_ack(1, 2);
        assert_eq!(engine.missing(), vec![1]);
        engine.note_progress(500);
        assert_eq!(engine.tick(600, 4_000), Tick::Retransmit(vec![1]));
        engine.record_ack(1, 1);
        assert!(engine.completed(&BTreeSet::new()));
    }

    #[test]
    fn open_at_cannot_regress_the_promised_epoch() {
        let mut engine: Engine<u32> = Engine::new();
        engine.fast_forward(50);
        engine.open_at(Ballot::new(10, node(0)), [], 0);
        assert_eq!(engine.epoch(), 50, "promise is monotonic");
        assert_eq!(engine.round_epoch(), Some(10), "the round still opens");
    }
}
